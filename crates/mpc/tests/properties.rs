//! Property-based tests of the §2.1 primitives: every primitive is
//! checked against its sequential specification over random inputs and
//! cluster sizes, and the simulator's conservation invariants hold.

use mpcjoin_mpc::primitives::reduce::{count_by_key, global_max, global_sum, reduce_by_key};
use mpcjoin_mpc::primitives::scan::{parallel_packing, prefix_sums, segmented_prefix_sums};
use mpcjoin_mpc::primitives::search::{lookup_exact, multi_search};
use mpcjoin_mpc::primitives::sort::{is_globally_sorted, sort_by_key};
use mpcjoin_mpc::Cluster;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sorting produces a globally sorted permutation of the input.
    #[test]
    fn sort_is_a_sorted_permutation(
        items in proptest::collection::vec(any::<u32>(), 0..400),
        p in 1usize..12,
    ) {
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(items.clone());
        let sorted = sort_by_key(&mut c, data, |x| *x);
        prop_assert!(is_globally_sorted(&sorted, |x| *x));
        let mut got = sorted.collect_all();
        let mut expect = items;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Reduce-by-key equals the sequential fold.
    #[test]
    fn reduce_matches_hashmap(
        pairs in proptest::collection::vec((0u64..50, 1u64..100), 0..300),
        p in 1usize..10,
    ) {
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for (k, v) in &pairs {
            *expect.entry(*k).or_insert(0) += v;
        }
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(pairs);
        let reduced = reduce_by_key(&mut c, data, |a, b| *a += b);
        let got: HashMap<u64, u64> = reduced.collect_all().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// count_by_key equals multiplicity counting.
    #[test]
    fn count_matches_multiplicities(
        keys in proptest::collection::vec(0u64..30, 0..200),
        p in 1usize..8,
    ) {
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for k in &keys {
            *expect.entry(*k).or_insert(0) += 1;
        }
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(keys);
        let got: HashMap<u64, u64> = count_by_key(&mut c, data).collect_all().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// Global sum / max agree with the sequential reductions.
    #[test]
    fn global_aggregates(
        values in proptest::collection::vec(0u64..1_000_000, 0..200),
        p in 1usize..10,
    ) {
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(values.clone());
        prop_assert_eq!(global_sum(&mut c, data), values.iter().sum::<u64>());
        let mut c2 = Cluster::new(p);
        let data2 = c2.scatter_initial(values.clone());
        prop_assert_eq!(global_max(&mut c2, data2), values.iter().copied().max().unwrap_or(0));
    }

    /// Multi-search finds exactly the predecessor-or-equal.
    #[test]
    fn multi_search_matches_binary_search(
        mut catalog in proptest::collection::btree_set(0u64..1000, 0..60),
        queries in proptest::collection::vec(0u64..1000, 0..120),
        p in 1usize..10,
    ) {
        let cat: Vec<(u64, u64)> = catalog.iter().map(|&k| (k, k * 2)).collect();
        let mut c = Cluster::new(p);
        let catalog_d = c.scatter_initial(cat.clone());
        let queries_d = c.scatter_initial(queries);
        let results = multi_search(&mut c, queries_d, |q| *q, catalog_d);
        for (q, hit) in results.collect_all() {
            let expect = catalog.range(..=q).next_back().map(|&k| (k, k * 2));
            prop_assert_eq!(hit, expect, "query {}", q);
        }
        catalog.clear();
    }

    /// lookup_exact is semantically a hash-map get.
    #[test]
    fn lookup_exact_matches_map(
        entries in proptest::collection::btree_map(0u64..200, 0u64..1000, 0..50),
        queries in proptest::collection::vec(0u64..250, 0..100),
        p in 1usize..8,
    ) {
        let mut c = Cluster::new(p);
        let catalog = c.scatter_initial(entries.clone().into_iter().collect::<Vec<_>>());
        let queries_d = c.scatter_initial(queries);
        let results = lookup_exact(&mut c, queries_d, |q| *q, catalog);
        for (q, hit) in results.collect_all() {
            prop_assert_eq!(hit, entries.get(&q).copied());
        }
    }

    /// Prefix sums assign each item a distinct offset consistent with
    /// total weight.
    #[test]
    fn prefix_sums_consistent(
        weights in proptest::collection::vec(1u64..20, 0..150),
        p in 1usize..8,
    ) {
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(weights.clone());
        let prefixed = prefix_sums(&mut c, data, |w| *w);
        let total: u64 = weights.iter().sum();
        let mut seen: Vec<(u64, u64)> = prefixed
            .collect_all()
            .into_iter()
            .map(|(w, s)| (s, w))
            .collect();
        seen.sort_unstable();
        // Offsets tile [0, total) without gaps or overlaps.
        let mut cursor = 0u64;
        for (offset, w) in seen {
            prop_assert_eq!(offset, cursor);
            cursor += w;
        }
        prop_assert_eq!(cursor, total);
    }

    /// Segmented prefix sums restart exactly at segment boundaries.
    #[test]
    fn segmented_prefix_tiles_each_segment(
        spec in proptest::collection::vec((0u64..6, 1u64..8), 0..120),
        p in 1usize..8,
    ) {
        // Group-contiguous layout: sort by segment first.
        let mut items = spec;
        items.sort_unstable();
        let n = items.len().max(1);
        let mut c = Cluster::new(p);
        let placed = c.place_initial(
            items
                .iter()
                .copied()
                .enumerate()
                .map(|(pos, it)| (pos * p / n, it))
                .collect(),
        );
        let prefixed = segmented_prefix_sums(&mut c, placed, |(seg, _)| *seg, |(_, w)| *w);
        let mut by_segment: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for ((seg, w), s) in prefixed.collect_all() {
            by_segment.entry(seg).or_default().push((s, w));
        }
        for (seg, mut offsets) in by_segment {
            offsets.sort_unstable();
            let mut cursor = 0u64;
            for (offset, w) in offsets {
                prop_assert_eq!(offset, cursor, "segment {}", seg);
                cursor += w;
            }
        }
    }

    /// Packing postconditions: every group within capacity, group ids
    /// dense-ish, and the group count near-optimal.
    #[test]
    fn packing_postconditions(
        weights in proptest::collection::vec(1u64..=10, 0..150),
        p in 1usize..8,
    ) {
        let cap = 10u64;
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(weights.clone());
        let packing = parallel_packing(&mut c, data, |w| *w, cap);
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for (w, gid) in packing.assigned.collect_all() {
            prop_assert!(gid < packing.groups);
            *sums.entry(gid).or_insert(0) += w;
        }
        for (&gid, &sum) in &sums {
            prop_assert!(sum <= cap, "group {} overfull: {}", gid, sum);
        }
        let total: u64 = weights.iter().sum();
        prop_assert!(packing.groups <= 2 + 4 * total / cap);
    }

    /// Conservation: the load is at least the per-round average, and the
    /// ledger total is stable across reads.
    #[test]
    fn ledger_conservation(
        items in proptest::collection::vec(any::<u16>(), 1..300),
        p in 2usize..10,
    ) {
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(items);
        let _ = sort_by_key(&mut c, data, |x| *x);
        let r = c.report();
        prop_assert!(r.load >= r.total_units / (p as u64 * r.rounds.max(1)));
        prop_assert_eq!(c.report(), r);
    }
}

//! Randomized property tests of the §2.1 primitives: every primitive is
//! checked against its sequential specification over random inputs and
//! cluster sizes, and the simulator's conservation invariants hold.
//!
//! Inputs come from the in-tree deterministic generator ([`DetRng`]) with
//! fixed seeds, so every run checks the identical case set — failures are
//! reproducible by construction and the suite works offline.

use mpcjoin_mpc::primitives::reduce::{count_by_key, global_max, global_sum, reduce_by_key};
use mpcjoin_mpc::primitives::scan::{parallel_packing, prefix_sums, segmented_prefix_sums};
use mpcjoin_mpc::primitives::search::{lookup_exact, multi_search};
use mpcjoin_mpc::primitives::sort::{is_globally_sorted, sort_by_key};
use mpcjoin_mpc::{Cluster, DetRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};

const CASES: u64 = 48;

fn vec_of(rng: &mut DetRng, max_len: usize, max_val: u64) -> Vec<u64> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0..max_val)).collect()
}

/// Sorting produces a globally sorted permutation of the input.
#[test]
fn sort_is_a_sorted_permutation() {
    let mut rng = DetRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let items = vec_of(&mut rng, 400, u64::from(u32::MAX));
        let p = rng.gen_range(1usize..12);
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(items.clone());
        let sorted = sort_by_key(&mut c, data, |x| *x);
        assert!(is_globally_sorted(&sorted, |x| *x));
        let mut got = sorted.collect_all();
        let mut expect = items;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// Reduce-by-key equals the sequential fold.
#[test]
fn reduce_matches_hashmap() {
    let mut rng = DetRng::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..300);
        let pairs: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.gen_range(0u64..50), rng.gen_range(1u64..100)))
            .collect();
        let p = rng.gen_range(1usize..10);
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for (k, v) in &pairs {
            *expect.entry(*k).or_insert(0) += v;
        }
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(pairs);
        let reduced = reduce_by_key(&mut c, data, |a, b| *a += b);
        let got: HashMap<u64, u64> = reduced.collect_all().into_iter().collect();
        assert_eq!(got, expect);
    }
}

/// count_by_key equals multiplicity counting.
#[test]
fn count_matches_multiplicities() {
    let mut rng = DetRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let keys = vec_of(&mut rng, 200, 30);
        let p = rng.gen_range(1usize..8);
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for k in &keys {
            *expect.entry(*k).or_insert(0) += 1;
        }
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(keys);
        let got: HashMap<u64, u64> = count_by_key(&mut c, data)
            .collect_all()
            .into_iter()
            .collect();
        assert_eq!(got, expect);
    }
}

/// Global sum / max agree with the sequential reductions.
#[test]
fn global_aggregates() {
    let mut rng = DetRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let values = vec_of(&mut rng, 200, 1_000_000);
        let p = rng.gen_range(1usize..10);
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(values.clone());
        assert_eq!(global_sum(&mut c, data), values.iter().sum::<u64>());
        let mut c2 = Cluster::new(p);
        let data2 = c2.scatter_initial(values.clone());
        assert_eq!(
            global_max(&mut c2, data2),
            values.iter().copied().max().unwrap_or(0)
        );
    }
}

/// Multi-search finds exactly the predecessor-or-equal.
#[test]
fn multi_search_matches_binary_search() {
    let mut rng = DetRng::seed_from_u64(0xA005);
    for _ in 0..CASES {
        let catalog: BTreeSet<u64> = vec_of(&mut rng, 60, 1000).into_iter().collect();
        let queries = vec_of(&mut rng, 120, 1000);
        let p = rng.gen_range(1usize..10);
        let cat: Vec<(u64, u64)> = catalog.iter().map(|&k| (k, k * 2)).collect();
        let mut c = Cluster::new(p);
        let catalog_d = c.scatter_initial(cat);
        let queries_d = c.scatter_initial(queries);
        let results = multi_search(&mut c, queries_d, |q| *q, catalog_d);
        for (q, hit) in results.collect_all() {
            let expect = catalog.range(..=q).next_back().map(|&k| (k, k * 2));
            assert_eq!(hit, expect, "query {q}");
        }
    }
}

/// lookup_exact is semantically a hash-map get.
#[test]
fn lookup_exact_matches_map() {
    let mut rng = DetRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..50);
        let entries: BTreeMap<u64, u64> = (0..n)
            .map(|_| (rng.gen_range(0u64..200), rng.gen_range(0u64..1000)))
            .collect();
        let queries = vec_of(&mut rng, 100, 250);
        let p = rng.gen_range(1usize..8);
        let mut c = Cluster::new(p);
        let catalog = c.scatter_initial(entries.clone().into_iter().collect::<Vec<_>>());
        let queries_d = c.scatter_initial(queries);
        let results = lookup_exact(&mut c, queries_d, |q| *q, catalog);
        for (q, hit) in results.collect_all() {
            assert_eq!(hit, entries.get(&q).copied());
        }
    }
}

/// Prefix sums assign each item a distinct offset consistent with total
/// weight.
#[test]
fn prefix_sums_consistent() {
    let mut rng = DetRng::seed_from_u64(0xA007);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..150);
        let weights: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..20)).collect();
        let p = rng.gen_range(1usize..8);
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(weights.clone());
        let prefixed = prefix_sums(&mut c, data, |w| *w);
        let total: u64 = weights.iter().sum();
        let mut seen: Vec<(u64, u64)> = prefixed
            .collect_all()
            .into_iter()
            .map(|(w, s)| (s, w))
            .collect();
        seen.sort_unstable();
        // Offsets tile [0, total) without gaps or overlaps.
        let mut cursor = 0u64;
        for (offset, w) in seen {
            assert_eq!(offset, cursor);
            cursor += w;
        }
        assert_eq!(cursor, total);
    }
}

/// Segmented prefix sums restart exactly at segment boundaries.
#[test]
fn segmented_prefix_tiles_each_segment() {
    let mut rng = DetRng::seed_from_u64(0xA008);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..120);
        let mut items: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.gen_range(0u64..6), rng.gen_range(1u64..8)))
            .collect();
        let p = rng.gen_range(1usize..8);
        // Group-contiguous layout: sort by segment first.
        items.sort_unstable();
        let n = items.len().max(1);
        let mut c = Cluster::new(p);
        let placed = c.place_initial(
            items
                .iter()
                .copied()
                .enumerate()
                .map(|(pos, it)| (pos * p / n, it))
                .collect(),
        );
        let prefixed = segmented_prefix_sums(&mut c, placed, |(seg, _)| *seg, |(_, w)| *w);
        let mut by_segment: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for ((seg, w), s) in prefixed.collect_all() {
            by_segment.entry(seg).or_default().push((s, w));
        }
        for (seg, mut offsets) in by_segment {
            offsets.sort_unstable();
            let mut cursor = 0u64;
            for (offset, w) in offsets {
                assert_eq!(offset, cursor, "segment {seg}");
                cursor += w;
            }
        }
    }
}

/// Packing postconditions: every group within capacity, group ids
/// dense-ish, and the group count near-optimal.
#[test]
fn packing_postconditions() {
    let mut rng = DetRng::seed_from_u64(0xA009);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..150);
        let weights: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..11)).collect();
        let p = rng.gen_range(1usize..8);
        let cap = 10u64;
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(weights.clone());
        let packing = parallel_packing(&mut c, data, |w| *w, cap);
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for (w, gid) in packing.assigned.collect_all() {
            assert!(gid < packing.groups);
            *sums.entry(gid).or_insert(0) += w;
        }
        for (&gid, &sum) in &sums {
            assert!(sum <= cap, "group {gid} overfull: {sum}");
        }
        let total: u64 = weights.iter().sum();
        assert!(packing.groups <= 2 + 4 * total / cap);
    }
}

/// Conservation: the load is at least the per-round average, and the
/// ledger total is stable across reads.
#[test]
fn ledger_conservation() {
    let mut rng = DetRng::seed_from_u64(0xA00A);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..300);
        let items: Vec<u64> = (0..len)
            .map(|_| rng.gen_range(0u64..u64::from(u16::MAX)))
            .collect();
        let p = rng.gen_range(2usize..10);
        let mut c = Cluster::new(p);
        let data = c.scatter_initial(items);
        let _ = sort_by_key(&mut c, data, |x| *x);
        let r = c.report();
        assert!(r.load >= r.total_units / (p as u64 * r.rounds.max(1)));
        assert_eq!(c.report(), r);
    }
}

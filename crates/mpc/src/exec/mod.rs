//! The execution backend: how the simulator spends *wall-clock* time.
//!
//! The MPC model (§1.3) assumes all `p` servers compute simultaneously;
//! the simulator's cost ledger already accounts loads that way, but the
//! per-server local computation itself historically ran serially, so
//! wall-clock time scaled with `p · local-work`. This module abstracts
//! "run one closure per server" behind [`ExecBackend`] with two
//! implementations:
//!
//! * [`SerialBackend`] — runs tasks `0, 1, …, n-1` in order on the calling
//!   thread (the historical behavior, bit-for-bit),
//! * [`ThreadPoolBackend`] — fans tasks out over scoped `std` threads.
//!
//! **Determinism contract.** Backends only ever execute *pure local
//! computation*: closures over one server's local data that never touch
//! the cluster, its round cursor, or the cost ledger (all exchanges stay
//! on the driver thread). Results are written into per-index slots and
//! merged in server order, so the output — and therefore every downstream
//! routing decision and the measured `(load, rounds, total_units)` — is
//! identical across backends and thread counts. Only the new wall-clock
//! `elapsed` measurement changes.
//!
//! The backend has no access to randomness and takes no scheduling-order-
//! dependent decisions; `ThreadPoolBackend` merely changes *when* each
//! server's closure runs, never *what* it computes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Strategy for running `n` independent per-server tasks.
///
/// Implementations must call `task(i)` exactly once for every
/// `i ∈ 0..n`, in any order, on any thread. They must not return before
/// all calls completed.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Number of worker threads this backend uses (1 for serial).
    fn threads(&self) -> usize;

    /// Run `task(0), …, task(n-1)`, returning once all have completed.
    fn execute(&self, n: usize, task: &(dyn Fn(usize) + Sync));
}

/// Runs every task on the calling thread, in index order — the
/// historical simulator behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBackend;

impl ExecBackend for SerialBackend {
    fn threads(&self) -> usize {
        1
    }

    fn execute(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            task(i);
        }
    }
}

/// Fans tasks out over `threads` scoped `std::thread`s; workers pull the
/// next index from a shared atomic counter (work stealing by contention).
///
/// Built on [`std::thread::scope`] — no external dependencies — so
/// borrowed per-server data can cross into workers safely.
#[derive(Clone, Debug)]
pub struct ThreadPoolBackend {
    threads: usize,
}

impl ThreadPoolBackend {
    /// A pool of `threads ≥ 1` workers.
    pub fn new(threads: usize) -> Self {
        ThreadPoolBackend {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine ([`std::thread::available_parallelism`]).
    pub fn auto() -> Self {
        ThreadPoolBackend::new(available_threads())
    }
}

impl ExecBackend for ThreadPoolBackend {
    fn threads(&self) -> usize {
        self.threads
    }

    fn execute(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    task(i);
                });
            }
        });
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A backend for `threads` workers: serial for 1, thread pool otherwise.
pub fn backend_for_threads(threads: usize) -> Arc<dyn ExecBackend> {
    if threads <= 1 {
        Arc::new(SerialBackend)
    } else {
        Arc::new(ThreadPoolBackend::new(threads))
    }
}

/// Process-wide default thread count used by [`crate::Cluster::new`].
/// Defaults to 1 (serial) so library users and tests see the historical
/// behavior; binaries opt in via [`set_default_threads`] (`--threads`).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the default thread count for subsequently created clusters.
/// Intended for binary startup (`--threads N`); tests wanting an explicit
/// backend should use [`crate::Cluster::with_threads`] instead.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The current default thread count (see [`set_default_threads`]).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// The backend [`crate::Cluster::new`] uses: sized by [`default_threads`].
pub fn default_backend() -> Arc<dyn ExecBackend> {
    backend_for_threads(default_threads())
}

/// Lock a slot mutex, tolerating poison: slots are write-once cells, so
/// a panic in some *other* task cannot have left this slot's value torn —
/// the stored data is valid whether or not the lock is poisoned. Treating
/// poison as fatal would escalate one server's panic (already unwinding)
/// into an abort of the whole driver.
fn lock_slot<T>(slot: &Mutex<T>) -> MutexGuard<'_, T> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run `task(i)` for `i ∈ 0..n` on `backend` and collect the results **in
/// index order**, regardless of scheduling.
pub fn par_run<R, F>(backend: &dyn ExecBackend, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    backend.execute(n, &|i| {
        let r = task(i);
        *lock_slot(&slots[i]) = Some(r);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("backend skipped a task index")
        })
        .collect()
}

/// Consume per-server vectors through `f` on `backend`: result slot `i`
/// is `f(i, parts[i])`, merged in index order. Each part is *moved* into
/// its task, so `T` only needs `Send`, not `Sync`.
pub fn par_consume_parts<T, R, F>(backend: &dyn ExecBackend, parts: Vec<Vec<T>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, Vec<T>) -> R + Sync,
{
    let inputs: Vec<Mutex<Option<Vec<T>>>> =
        parts.into_iter().map(|v| Mutex::new(Some(v))).collect();
    par_run(backend, inputs.len(), |i| {
        let local = lock_slot(&inputs[i])
            .take()
            .expect("input slot consumed twice");
        f(i, local)
    })
}

/// Map per-server vectors through `f` on `backend`; output slot `i` is
/// `f(i, parts[i])`, in order — the parallel version of
/// [`crate::Distributed`]'s `map_local`.
pub fn par_map_parts<T, U, F>(backend: &dyn ExecBackend, parts: Vec<Vec<T>>, f: F) -> Vec<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(usize, Vec<T>) -> Vec<U> + Sync,
{
    par_consume_parts(backend, parts, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runs_in_order() {
        let order = Mutex::new(Vec::new());
        SerialBackend.execute(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_run_results_in_index_order_on_every_backend() {
        let backends: Vec<Arc<dyn ExecBackend>> = vec![
            Arc::new(SerialBackend),
            Arc::new(ThreadPoolBackend::new(2)),
            Arc::new(ThreadPoolBackend::new(8)),
        ];
        for backend in backends {
            let out = par_run(backend.as_ref(), 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_parts_preserves_slots() {
        let parts: Vec<Vec<u64>> = (0..16).map(|i| vec![i, i + 1]).collect();
        let pool = ThreadPoolBackend::new(4);
        let doubled = par_map_parts(&pool, parts, |server, local| {
            local.into_iter().map(|v| v * 2 + server as u64).collect()
        });
        for (i, local) in doubled.iter().enumerate() {
            let i = i as u64;
            assert_eq!(local, &vec![3 * i, 3 * i + 2]);
        }
    }

    #[test]
    fn thread_pool_handles_empty_and_tiny() {
        let pool = ThreadPoolBackend::new(8);
        let none: Vec<u64> = par_run(&pool, 0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(par_run(&pool, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn backend_for_threads_picks_serial_for_one() {
        assert_eq!(backend_for_threads(1).threads(), 1);
        assert_eq!(backend_for_threads(0).threads(), 1);
        assert_eq!(backend_for_threads(6).threads(), 6);
    }
}

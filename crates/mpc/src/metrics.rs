//! Lightweight metrics registry: counters, gauges, and log-scale
//! histograms recorded alongside the cost ledger.
//!
//! Where [`crate::trace`] keeps every event (full traffic matrices, one
//! record per exchange), metrics keep *aggregates*: how many tuples each
//! primitive moved in total, the distribution of per-event volumes on a
//! log₂ scale, the per-server received-load footprint (with p50/p95/max
//! and a skew ratio), and per-phase wall-clock. The registry is therefore
//! cheap enough to leave on for large runs where a full trace would not
//! fit in memory.
//!
//! Metrics are **off by default** ([`crate::Cluster::enable_metrics`]
//! turns them on) and never perturb the ledger: the instrumented exchange
//! path accumulates per-destination unit counts and credits their sums,
//! which by commutativity of `u64` addition produces bit-identical
//! `(load, rounds, total_units)` to the uninstrumented path. Tests pin
//! this across execution backends.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// A histogram with logarithmic (power-of-two) buckets.
///
/// Bucket `0` holds exactly the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. Exact `count`/`sum`/`min`/`max` are kept alongside
/// the buckets, so coarse bucketing never loses the headline numbers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sparse bucket counts: `buckets[b]` = number of observations in
    /// bucket `b`.
    pub buckets: BTreeMap<u32, u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl LogHistogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += value;
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> u32 {
        64 - value.leading_zeros()
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `b`.
    pub fn bucket_range(b: u32) -> (u64, u64) {
        if b == 0 {
            (0, 1)
        } else {
            (1u64 << (b - 1), 1u64 << b)
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile from the bucket counts:
    /// the exclusive upper edge of the first bucket whose cumulative
    /// count reaches `q·count`, clamped to the exact `max`. Exact for
    /// `min`/`max`; within one power of two elsewhere — good enough for
    /// latency dashboards, never for ledger accounting.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(b);
                return (hi - 1).min(self.max);
            }
        }
        self.max
    }

    /// Serialize as the shared histogram JSON shape used by
    /// `mpcjoin-metrics-v1` and the serving layer's
    /// `mpcjoin-serverstats-v1`: exact `count`/`sum`/`min`/`max` plus
    /// `[lo, hi, n]` bucket triples.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            ("min".into(), Json::Num(self.min as f64)),
            ("max".into(), Json::Num(self.max as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&b, &n)| {
                            let (lo, hi) = LogHistogram::bucket_range(b);
                            Json::Arr(vec![
                                Json::Num(lo as f64),
                                Json::Num(hi as f64),
                                Json::Num(n as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Exact distribution summary of the per-server received totals.
///
/// Computed from the full per-server vector (not from histogram buckets),
/// so the percentiles are exact. `skew = max / mean`; `1.0` means the
/// received load is perfectly balanced.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadSummary {
    /// Median per-server received total (lower-rounded percentile).
    pub p50: u64,
    /// 95th-percentile per-server received total.
    pub p95: u64,
    /// Largest per-server received total.
    pub max: u64,
    /// Mean per-server received total.
    pub mean: f64,
    /// `max / mean` (1.0 when there was no traffic).
    pub skew: f64,
}

impl LoadSummary {
    /// Summarize a per-server totals vector.
    pub fn of(per_server: &[u64]) -> LoadSummary {
        if per_server.is_empty() {
            return LoadSummary {
                skew: 1.0,
                ..LoadSummary::default()
            };
        }
        let mut sorted = per_server.to_vec();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            // Nearest-rank on the sorted vector (lower-rounded index).
            let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
            sorted[idx]
        };
        let max = sorted.last().copied().unwrap_or(0);
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        let skew = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        LoadSummary {
            p50: pct(0.50),
            p95: pct(0.95),
            max,
            mean,
            skew,
        }
    }
}

/// The in-flight registry, owned by [`crate::CostTracker`] while metrics
/// collection is enabled. `Clone` so round-boundary checkpoints (see
/// [`crate::Cluster::checkpoint`]) can snapshot and restore it.
#[derive(Clone, Debug, Default)]
pub(crate) struct MetricsLog {
    /// Physical-server dimension of `per_server`.
    pub(crate) servers: usize,
    /// Monotone event counters (`events.exchange`, `events.broadcast`,
    /// `compute.spans`, `compute.tasks`, …).
    pub(crate) counters: BTreeMap<String, u64>,
    /// Log₂ distribution of per-event delivered units, keyed by the
    /// operation-scope path that issued the event ("(unlabeled)" outside
    /// any scope).
    pub(crate) per_primitive: BTreeMap<String, LogHistogram>,
    /// Log₂ distribution of per-event delivered units, all events.
    pub(crate) event_units: LogHistogram,
    /// Units received per physical server, summed over all rounds.
    pub(crate) per_server: Vec<u64>,
}

impl MetricsLog {
    pub(crate) fn new(servers: usize) -> Self {
        MetricsLog {
            servers,
            per_server: vec![0; servers],
            ..MetricsLog::default()
        }
    }

    pub(crate) fn bump(&mut self, counter: &str, by: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += by;
    }

    /// Record one communication event: `received[s]` units arrived at
    /// physical server `s`, issued under operation-scope `label`.
    pub(crate) fn record_event(&mut self, counter: &str, label: &str, received: &[u64]) {
        let units: u64 = received.iter().sum();
        if units == 0 {
            return;
        }
        self.bump(counter, 1);
        self.event_units.observe(units);
        self.per_primitive
            .entry(label.to_string())
            .or_default()
            .observe(units);
        for (s, &u) in received.iter().enumerate() {
            if s < self.per_server.len() {
                self.per_server[s] += u;
            }
        }
    }
}

/// A finalized, immutable snapshot of the metrics registry (see
/// [`crate::Cluster::take_metrics`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Physical server count.
    pub servers: usize,
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges sampled from the ledger at snapshot time
    /// (`load`, `rounds`, `total_units`, `elapsed_ns`), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Per-primitive distributions of per-event delivered units.
    pub per_primitive: Vec<(String, LogHistogram)>,
    /// Distribution of per-event delivered units across all events.
    pub event_units: LogHistogram,
    /// Units received per physical server, summed over all rounds.
    pub per_server: Vec<u64>,
    /// Exact summary of `per_server` (p50 / p95 / max / mean / skew).
    pub received: LoadSummary,
    /// Per-phase wall-clock durations, in phase order.
    pub phase_wall: Vec<(String, Duration)>,
}

impl MetricsSnapshot {
    /// Serialize as a self-contained JSON document
    /// (schema `mpcjoin-metrics-v1`).
    pub fn to_json(&self) -> String {
        let histogram_json = LogHistogram::to_json;
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("mpcjoin-metrics-v1".into())),
            ("servers".into(), Json::Num(self.servers as f64)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "per_primitive".into(),
                Json::Obj(
                    self.per_primitive
                        .iter()
                        .map(|(k, h)| (k.clone(), histogram_json(h)))
                        .collect(),
                ),
            ),
            ("event_units".into(), histogram_json(&self.event_units)),
            (
                "per_server".into(),
                Json::Arr(
                    self.per_server
                        .iter()
                        .map(|&u| Json::Num(u as f64))
                        .collect(),
                ),
            ),
            (
                "received".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::Num(self.received.p50 as f64)),
                    ("p95".into(), Json::Num(self.received.p95 as f64)),
                    ("max".into(), Json::Num(self.received.max as f64)),
                    ("mean".into(), Json::Num(self.received.mean)),
                    ("skew".into(), Json::Num(self.received.skew)),
                ]),
            ),
            (
                "phases".into(),
                Json::Arr(
                    self.phase_wall
                        .iter()
                        .map(|(label, wall)| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(label.clone())),
                                ("wall_ns".into(), Json::Num(wall.as_nanos() as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        // Counters/histograms are u64 casts; `mean`/`skew` are finite by
        // construction (guarded divisions) — but emit through the total
        // sanitizing printer anyway so a bad gauge can never abort a run.
        doc.to_string_sanitized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_range(0), (0, 1));
        assert_eq!(LogHistogram::bucket_range(3), (4, 8));
        // Every value lies inside its own bucket's range.
        for v in [0u64, 1, 2, 5, 17, 1 << 20, u64::MAX / 2] {
            let (lo, hi) = LogHistogram::bucket_range(LogHistogram::bucket_of(v));
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn histogram_tracks_exact_extrema() {
        let mut h = LogHistogram::default();
        for v in [7u64, 3, 900, 0, 12] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 922);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 900);
        assert_eq!(h.buckets.values().sum::<u64>(), 5);
        assert!((h.mean() - 184.4).abs() < 1e-9);
    }

    #[test]
    fn quantile_upper_brackets_the_true_quantile() {
        let mut h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // The estimate is an upper bound within one power of two.
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (1.0, 1000)] {
            let est = h.quantile_upper(q);
            assert!(est >= exact, "q={q}: {est} < {exact}");
            assert!(est < exact.next_power_of_two().max(2) * 2, "q={q}: {est}");
        }
        assert_eq!(h.quantile_upper(1.0), 1000, "max is exact");
        assert_eq!(LogHistogram::default().quantile_upper(0.5), 0);
        let mut single = LogHistogram::default();
        single.observe(42);
        assert_eq!(single.quantile_upper(0.5), 42);
    }

    #[test]
    fn histogram_json_shape_is_shared() {
        let mut h = LogHistogram::default();
        h.observe(3);
        h.observe(900);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("sum").and_then(Json::as_u64), Some(903));
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        // Each triple is [lo, hi, n] with lo <= value < hi.
        let first = buckets[0].as_arr().unwrap();
        assert_eq!(first[0].as_u64(), Some(2));
        assert_eq!(first[1].as_u64(), Some(4));
        assert_eq!(first[2].as_u64(), Some(1));
    }

    #[test]
    fn load_summary_percentiles_are_exact() {
        let totals: Vec<u64> = (1..=100).collect();
        let s = LoadSummary::of(&totals);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.skew - 100.0 / 50.5).abs() < 1e-9);
    }

    #[test]
    fn load_summary_degenerate_inputs() {
        assert_eq!(LoadSummary::of(&[]).skew, 1.0);
        let zeros = LoadSummary::of(&[0, 0, 0]);
        assert_eq!(zeros.max, 0);
        assert_eq!(zeros.skew, 1.0);
        let one = LoadSummary::of(&[42]);
        assert_eq!((one.p50, one.p95, one.max), (42, 42, 42));
        assert!((one.skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let mut log = MetricsLog::new(2);
        log.record_event("events.exchange", "sort", &[3, 5]);
        log.record_event("events.exchange", "sort", &[0, 2]);
        log.record_event("events.broadcast", "(unlabeled)", &[4, 4]);
        let snap = MetricsSnapshot {
            servers: log.servers,
            counters: log.counters.clone().into_iter().collect(),
            gauges: vec![("load".into(), 9.0)],
            per_primitive: log.per_primitive.clone().into_iter().collect(),
            event_units: log.event_units.clone(),
            per_server: log.per_server.clone(),
            received: LoadSummary::of(&log.per_server),
            phase_wall: vec![("join".into(), Duration::from_nanos(1500))],
        };
        let doc = Json::parse(&snap.to_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mpcjoin-metrics-v1")
        );
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("events.exchange").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            counters.get("events.broadcast").and_then(Json::as_u64),
            Some(1)
        );
        let per_server: Vec<u64> = doc
            .get("per_server")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(per_server, vec![7, 11]);
        let sort = doc.get("per_primitive").unwrap().get("sort").unwrap();
        assert_eq!(sort.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(sort.get("sum").and_then(Json::as_u64), Some(10));
        assert_eq!(
            doc.get("received")
                .unwrap()
                .get("max")
                .and_then(Json::as_u64),
            Some(11)
        );
    }
}

//! A small deterministic PRNG for workload generation and randomized
//! tests.
//!
//! The repository builds offline, so it cannot depend on the `rand`
//! crate; this module provides the slice of functionality the workload
//! generators and tests actually use. [`DetRng`] is xoshiro256** seeded
//! through splitmix64 (Blackman & Vigna), the same construction `rand`'s
//! small RNGs use — fast, full 64-bit output, and fully reproducible
//! from a `u64` seed across platforms and runs.
//!
//! Not cryptographically secure; experiment seeding only.

use std::ops::Range;

/// splitmix64 step: seed expander and standalone mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// A generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from a half-open range, e.g. `rng.gen_range(0..dom)`.
    ///
    /// Uses rejection sampling (Lemire-style threshold on the modulus) so
    /// the draw is exactly uniform. Panics on an empty range.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of randomness).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject draws from the final partial copy of [0, bound) so every
        // residue is equally likely.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % bound;
            }
        }
    }
}

/// Integer types [`DetRng::gen_range`] can sample.
pub trait SampleRange: Sized {
    fn sample(rng: &mut DetRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for $ty {
            fn sample(rng: &mut DetRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.next_below(span) as Self
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));

        for _ in 0..1000 {
            let y = rng.gen_range(100u64..107);
            assert!((100..107).contains(&y));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn known_vector_is_stable() {
        // Pins the stream so refactors cannot silently change every
        // generated workload.
        let mut rng = DetRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768
            ]
        );
    }
}

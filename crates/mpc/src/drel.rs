//! Distributed annotated relations: [`crate::Distributed`] data with a
//! [`Schema`], plus the relational operations the paper's algorithms build
//! from (§2.1 primitives lifted to relations).

use crate::cluster::{Cluster, Distributed};
use crate::error::MpcError;
use crate::primitives::reduce::reduce_by_key;
use crate::primitives::search::lookup_exact;
use crate::primitives::sort::sort_by_key;
use mpcjoin_relation::{Attr, Relation, Row, Schema, Value};
use mpcjoin_semiring::Semiring;

/// An annotated relation partitioned across the servers of a [`Cluster`].
#[derive(Clone, Debug)]
pub struct DistRelation<S: Semiring> {
    schema: Schema,
    data: Distributed<(Row, S)>,
}

impl<S: Semiring> DistRelation<S> {
    /// Place a relation on the cluster in the model's initial state:
    /// round-robin, `⌈N/p⌉` entries per server, uncosted (§1.3).
    pub fn scatter(cluster: &Cluster, rel: &Relation<S>) -> Self {
        DistRelation {
            schema: rel.schema().clone(),
            data: cluster.scatter_initial(rel.entries().to_vec()),
        }
    }

    /// Wrap already-distributed entries.
    pub fn from_distributed(schema: Schema, data: Distributed<(Row, S)>) -> Self {
        DistRelation { schema, data }
    }

    /// An empty distributed relation.
    pub fn empty(cluster: &Cluster, schema: Schema) -> Self {
        DistRelation {
            schema,
            data: Distributed::empty(cluster.p()),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying distributed entries.
    pub fn data(&self) -> &Distributed<(Row, S)> {
        &self.data
    }

    /// Consume into the underlying distributed entries.
    pub fn into_data(self) -> Distributed<(Row, S)> {
        self.data
    }

    /// Total entries across servers.
    pub fn total_len(&self) -> usize {
        self.data.total_len()
    }

    /// Whether no server holds any entry.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Collect to a local [`Relation`] — **inspection only**, uncosted;
    /// used by experiments and tests to read off results.
    pub fn gather(&self) -> Relation<S> {
        Relation::from_entries(self.schema.clone(), self.data.clone().collect_all())
    }

    /// Filter entries locally (free).
    pub fn filter_local(self, mut pred: impl FnMut(&Row) -> bool) -> Self {
        let schema = self.schema.clone();
        let data = self
            .data
            .map_local(|_, items| items.into_iter().filter(|(r, _)| pred(r)).collect());
        DistRelation { schema, data }
    }

    /// [`DistRelation::filter_local`] on the cluster's execution backend:
    /// per-server filtering runs concurrently, same output.
    pub fn par_filter_local(self, cluster: &Cluster, pred: impl Fn(&Row) -> bool + Sync) -> Self {
        let schema = self.schema.clone();
        let data = self.data.par_map_local(cluster, |_, items| {
            items.into_iter().filter(|(r, _)| pred(r)).collect()
        });
        DistRelation { schema, data }
    }

    /// Positions of `attrs` in this relation's schema, or
    /// [`MpcError::MissingAttr`] for the first attribute not present.
    /// Algorithm internals that project onto attributes they constructed
    /// use the panicking [`Schema::positions_of`] instead (a miss there is
    /// a bug, not an input error).
    pub fn positions_of(&self, attrs: &[Attr]) -> Result<Vec<usize>, MpcError> {
        self.schema
            .try_positions_of(attrs)
            .map_err(|attr| MpcError::MissingAttr {
                attr,
                schema: self.schema.to_string(),
            })
    }

    /// Project each entry onto `attrs` and ⊕-combine duplicates via
    /// reduce-by-key: the distributed `∑_{ȳ}` (1 round, linear load in the
    /// input plus output).
    pub fn project_aggregate(&self, cluster: &mut Cluster, attrs: &[Attr]) -> DistRelation<S> {
        let _op = cluster.op("project-aggregate");
        let pos = self.schema.positions_of(attrs);
        let pairs = self.data.clone().map(|(row, s)| (project(&row, &pos), s));
        let reduced = reduce_by_key(cluster, pairs, |acc: &mut S, v| acc.add_assign(&v));
        let data = reduced.par_map_local(cluster, |_, items| {
            items
                .into_iter()
                .filter(|(_, s)| !s.is_zero())
                .collect::<Vec<_>>()
        });
        DistRelation {
            schema: Schema::new(attrs.to_vec()),
            data,
        }
    }

    /// ⊕-combine entries with identical rows (distributed coalesce).
    pub fn coalesce(&self, cluster: &mut Cluster) -> DistRelation<S> {
        let attrs = self.schema.attrs().to_vec();
        self.project_aggregate(cluster, &attrs)
    }

    /// Distinct projections onto `attrs` (annotations ignored).
    pub fn distinct(&self, cluster: &mut Cluster, attrs: &[Attr]) -> Distributed<(Row, ())> {
        let _op = cluster.op("distinct");
        let pos = self.schema.positions_of(attrs);
        let keys = self.data.clone().map(|(row, _)| (project(&row, &pos), ()));
        reduce_by_key(cluster, keys, |_, _| {})
    }

    /// Degree of every value of `attr`: `value → |σ_{attr=v} R|`.
    pub fn degrees(&self, cluster: &mut Cluster, attr: Attr) -> Distributed<(Value, u64)> {
        let _op = cluster.op("degrees");
        let pos = self.schema.positions_of(&[attr])[0];
        let keys = self.data.clone().map(move |(row, _)| (row[pos], 1u64));
        reduce_by_key(cluster, keys, |acc, v| *acc += v)
    }

    /// Semijoin `self ⋉ other` on their common attributes, via
    /// distinct-keys + multi-search (skew-proof; §2.1 "a semijoin can be
    /// computed by a multi-search"). Output is redistributed by the
    /// internal sort. Annotations untouched.
    pub fn semijoin(&self, cluster: &mut Cluster, other: &DistRelation<S>) -> DistRelation<S> {
        let common = self.schema.common(&other.schema);
        assert!(
            !common.is_empty(),
            "distributed semijoin requires shared attributes"
        );
        let _op = cluster.op("semijoin");
        let keys = other.distinct(cluster, &common);
        let pos = self.schema.positions_of(&common);
        let probed = lookup_exact(
            cluster,
            self.data.clone(),
            move |(row, _): &(Row, S)| project(row, &pos),
            keys,
        );
        let data = probed.par_map_local(cluster, |_, items| {
            items
                .into_iter()
                .filter_map(|(entry, hit)| hit.map(|()| entry))
                .collect::<Vec<_>>()
        });
        DistRelation {
            schema: self.schema.clone(),
            data,
        }
    }

    /// Attach a per-key statistic to every entry: entry with key
    /// `π_{attrs}(row)` receives `stats[key]` (or `None`). Skew-proof
    /// (multi-search underneath).
    pub fn attach_stat<U: Clone + Send + 'static>(
        &self,
        cluster: &mut Cluster,
        attrs: &[Attr],
        stats: Distributed<(Row, U)>,
    ) -> Distributed<((Row, S), Option<U>)> {
        let _op = cluster.op("attach-stat");
        let pos = self.schema.positions_of(attrs);
        lookup_exact(
            cluster,
            self.data.clone(),
            move |(row, _): &(Row, S)| project(row, &pos),
            stats,
        )
    }

    /// Sort entries by their projection onto `attrs`; equal keys land on
    /// the same or consecutive servers (3 rounds, linear load).
    pub fn sort_by_attrs(&self, cluster: &mut Cluster, attrs: &[Attr]) -> DistRelation<S> {
        let pos = self.schema.positions_of(attrs);
        let data = sort_by_key(cluster, self.data.clone(), |(row, _): &(Row, S)| {
            project(row, &pos)
        });
        DistRelation {
            schema: self.schema.clone(),
            data,
        }
    }

    /// One costed round that re-spreads entries round-robin — used after
    /// heavy filtering so later steps see balanced `N/p` inputs.
    pub fn rebalance(&self, cluster: &mut Cluster) -> DistRelation<S> {
        let _op = cluster.op("rebalance");
        let p = cluster.p();
        let mut next = 0usize;
        let outboxes: Vec<Vec<(usize, (Row, S))>> = self
            .data
            .iter()
            .map(|(_, local)| {
                local
                    .iter()
                    .map(|entry| {
                        let dest = next % p;
                        next += 1;
                        (dest, entry.clone())
                    })
                    .collect()
            })
            .collect();
        let data = cluster.exchange(outboxes);
        DistRelation {
            schema: self.schema.clone(),
            data,
        }
    }

    /// Broadcast the whole relation to every server (cost `total_len` per
    /// server; the paper's move for `N_1 = 1`-style tiny sides).
    pub fn broadcast(&self, cluster: &mut Cluster) -> DistRelation<S> {
        DistRelation {
            schema: self.schema.clone(),
            data: cluster.broadcast(&self.data),
        }
    }
}

/// Project `row` onto the positions `pos`.
pub fn project(row: &[Value], pos: &[usize]) -> Row {
    pos.iter().map(|&i| row[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn rel(pairs: &[(u64, u64, u64)]) -> Relation<Count> {
        Relation::from_entries(
            Schema::binary(A, B),
            pairs
                .iter()
                .map(|&(a, b, w)| (vec![a, b], Count(w)))
                .collect(),
        )
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let c = Cluster::new(4);
        let r = rel(&[(1, 2, 3), (4, 5, 6), (7, 8, 9)]);
        let d = DistRelation::scatter(&c, &r);
        assert!(d.gather().semantically_eq(&r));
        assert_eq!(c.report().total_units, 0);
    }

    #[test]
    fn project_aggregate_matches_local() {
        let mut c = Cluster::new(4);
        let r = rel(&[(1, 2, 3), (1, 3, 4), (2, 2, 5)]);
        let d = DistRelation::scatter(&c, &r);
        let agg = d.project_aggregate(&mut c, &[A]);
        assert!(agg.gather().semantically_eq(&r.project_aggregate(&[A])));
    }

    #[test]
    fn semijoin_matches_local() {
        let mut c = Cluster::new(4);
        let r1 = rel(&[(1, 10, 1), (2, 11, 1), (3, 12, 1)]);
        let r2 = Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![10, 0], Count(1)), (vec![12, 0], Count(1))],
        );
        let d1 = DistRelation::scatter(&c, &r1);
        let d2 = DistRelation::scatter(&c, &r2);
        let sj = d1.semijoin(&mut c, &d2);
        assert!(sj.gather().semantically_eq(&r1.semijoin(&r2)));
    }

    #[test]
    fn degrees_match_local() {
        let mut c = Cluster::new(4);
        let r = rel(&[(1, 2, 1), (1, 3, 1), (2, 2, 1)]);
        let d = DistRelation::scatter(&c, &r);
        let mut degs = d.degrees(&mut c, A).collect_all();
        degs.sort();
        assert_eq!(degs, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn attach_stat_joins_stats() {
        let mut c = Cluster::new(4);
        let r = rel(&[(1, 2, 1), (2, 3, 1)]);
        let d = DistRelation::scatter(&c, &r);
        let stats = c.scatter_initial(vec![(vec![1u64], 100u64)]);
        let attached = d.attach_stat(&mut c, &[A], stats);
        let mut got: Vec<(u64, Option<u64>)> = attached
            .collect_all()
            .into_iter()
            .map(|((row, _), stat)| (row[0], stat))
            .collect();
        got.sort();
        assert_eq!(got, vec![(1, Some(100)), (2, None)]);
    }

    #[test]
    fn sort_groups_equal_keys_contiguously() {
        let mut c = Cluster::new(4);
        let r = rel(&[(3, 0, 1), (1, 0, 1), (2, 0, 1), (1, 1, 1)]);
        let d = DistRelation::scatter(&c, &r);
        let sorted = d.sort_by_attrs(&mut c, &[A]);
        let keys: Vec<u64> = sorted
            .data()
            .clone()
            .collect_all()
            .into_iter()
            .map(|(row, _)| row[0])
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn positions_of_reports_missing_attr() {
        let c = Cluster::new(2);
        let d = DistRelation::scatter(&c, &rel(&[(1, 2, 3)]));
        assert_eq!(d.positions_of(&[B, A]), Ok(vec![1, 0]));
        let err = d.positions_of(&[A, C]).unwrap_err();
        assert_eq!(
            err,
            MpcError::MissingAttr {
                attr: C,
                schema: "(x0, x1)".to_string(),
            }
        );
    }

    #[test]
    fn rebalance_levels_storage() {
        let mut c = Cluster::new(4);
        let r = rel(&[(1, 1, 1); 8]);
        // Adversarial placement: everything on server 0.
        let data = c.place_initial(r.entries().iter().map(|e| (0usize, e.clone())).collect());
        let d = DistRelation::from_distributed(r.schema().clone(), data);
        let balanced = d.rebalance(&mut c);
        assert_eq!(balanced.data().max_local_len(), 2);
    }
}

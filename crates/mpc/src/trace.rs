//! Round-level execution tracing: *where* did the load come from?
//!
//! [`crate::CostReport`] answers "how much": the scalar load `L`, round
//! count, and total traffic of §1.3. This module answers "where": an
//! opt-in event log capturing, for every costed communication step, the
//! global round, the primitive/phase that issued it (sort, multi-search,
//! semijoin, broadcast, twig-combine, …), the per-server received-unit
//! vector, and the full sender→receiver traffic matrix — plus wall-clock
//! spans of the per-server local computation executed by the
//! [`crate::exec`] backend.
//!
//! Tracing is **off by default and zero-cost when disabled**: with tracing
//! off, the simulator takes the exact code paths it always took and the
//! measured `(load, rounds, total_units)` is bit-identical across
//! backends and thread counts. With tracing on (see
//! [`crate::Cluster::enable_tracing`]), the same quantities are measured
//! *and* every unit is attributable: the per-label and per-phase
//! breakdowns of [`TraceReport`] sum to the ledger totals, and
//! [`Trace::critical_round`] names the `(server, round, label)` cell that
//! defines the load.
//!
//! ## Labeling contract
//!
//! * Primitives and relational operators open an *operation scope*
//!   ([`crate::Cluster::op`]); scopes nest, and an event's `label` is the
//!   scope path at record time (e.g. `"semijoin/multi-search/sort"`).
//! * Algorithms mark coarse *phases* ([`crate::Cluster::mark_phase`]); an
//!   event's `phase` is the innermost mark preceding it on the round
//!   timeline (`"(preamble)"` before the first mark).
//!
//! New algorithms should mark a phase per paper-level step and rely on
//! the primitives' scopes for fine-grained labels.

use crate::cost::CostReport;
use crate::fault::{RecoveryEvent, RecoveryReport};
use crate::json::Json;
use std::collections::HashMap;
use std::time::Duration;

/// Which cluster operation produced a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-to-point [`crate::Cluster::exchange`].
    Exchange,
    /// A [`crate::Cluster::broadcast`] (every server receives everything).
    Broadcast,
}

impl EventKind {
    /// Stable lowercase name (used in the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Exchange => "exchange",
            EventKind::Broadcast => "broadcast",
        }
    }
}

/// One costed communication step. Equality ignores the wall-clock `at`
/// field, so traces from different execution backends compare equal —
/// the backend may change *when* things ran, never *what* was sent.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global round the exchange consumed.
    pub round: u64,
    /// Exchange or broadcast.
    pub kind: EventKind,
    /// Operation-scope path at record time (`"(unlabeled)"` outside any
    /// scope), e.g. `"semijoin/multi-search/sort"`.
    pub label: String,
    /// Innermost phase mark preceding this event (`"(preamble)"` before
    /// the first mark).
    pub phase: String,
    /// Units received per *physical* server in this event (index =
    /// physical server id).
    pub received: Vec<u64>,
    /// `traffic[src][dst]` = units sent from physical server `src` to
    /// physical server `dst` in this event.
    pub traffic: Vec<Vec<u64>>,
    /// Wall clock at record time, relative to trace start —
    /// instrumentation only, excluded from equality.
    pub at: Duration,
}

impl PartialEq for TraceEvent {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.kind == other.kind
            && self.label == other.label
            && self.phase == other.phase
            && self.received == other.received
            && self.traffic == other.traffic
    }
}

impl Eq for TraceEvent {}

/// A timed span of per-server local computation run by the
/// [`crate::exec`] backend. Equality ignores the wall-clock fields.
#[derive(Clone, Debug)]
pub struct ComputeSpan {
    /// Operation-scope path at record time.
    pub label: String,
    /// Innermost phase mark at record time.
    pub phase: String,
    /// Round cursor when the computation ran.
    pub round: u64,
    /// Number of per-server tasks executed.
    pub tasks: usize,
    /// Wall-clock duration of the whole span — instrumentation only,
    /// excluded from equality.
    pub elapsed: Duration,
}

impl PartialEq for ComputeSpan {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.phase == other.phase
            && self.round == other.round
            && self.tasks == other.tasks
    }
}

impl Eq for ComputeSpan {}

/// The in-flight recording state, owned by [`crate::CostTracker`] while
/// tracing is enabled.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    pub(crate) servers: usize,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) compute: Vec<ComputeSpan>,
}

impl TraceLog {
    pub(crate) fn new(servers: usize) -> Self {
        TraceLog {
            servers,
            events: Vec::new(),
            compute: Vec::new(),
        }
    }
}

/// A finalized execution trace (see [`crate::Cluster::take_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Number of physical servers (the dimension of `received` vectors
    /// and `traffic` matrices).
    pub servers: usize,
    /// Ledger totals at finalization — the same `(load, rounds,
    /// total_units)` as [`crate::CostReport`].
    pub cost: CostReport,
    /// Phase marks: `(first round of the phase, label)`.
    pub phases: Vec<(u64, String)>,
    /// Every costed communication step, in simulation order.
    pub events: Vec<TraceEvent>,
    /// Wall-clock spans of backend-executed local computation.
    pub compute: Vec<ComputeSpan>,
    /// Recovery actions taken by an installed fault plane, in simulation
    /// order, attributed to the phase/label active when they happened
    /// (empty when no plane was installed — the common case). See
    /// [`crate::fault`].
    pub recovery: Vec<RecoveryEvent>,
}

/// Per-label (or per-phase) slice of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceBreakdown {
    /// The operation-scope path or phase label.
    pub label: String,
    /// Max units any server received in any single round under this
    /// label alone.
    pub load: u64,
    /// Number of distinct rounds with traffic under this label.
    pub rounds: u64,
    /// Total units delivered under this label.
    pub total_units: u64,
    /// Number of events.
    pub events: usize,
    /// Wall clock spent in backend local computation under this label.
    pub elapsed: Duration,
}

/// The `(server, round)` cell that defines the load, and the label that
/// contributed the most units to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalCell {
    /// Physical server of the peak cell.
    pub server: usize,
    /// Round of the peak cell.
    pub round: u64,
    /// Units received in the cell — equals [`CostReport::load`] when the
    /// trace covers the whole run.
    pub units: u64,
    /// Label contributing the most units to the cell.
    pub label: String,
}

/// Structured summary of a [`Trace`]: per-primitive and per-phase
/// breakdowns, a per-server footprint histogram, and the critical cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceReport {
    /// Physical server count.
    pub servers: usize,
    /// Ledger totals (see [`Trace::cost`]).
    pub cost: CostReport,
    /// Breakdown by operation-scope path, in first-appearance order.
    pub per_label: Vec<TraceBreakdown>,
    /// Breakdown by phase mark, in first-appearance order.
    pub per_phase: Vec<TraceBreakdown>,
    /// Units received per physical server, summed over all rounds.
    pub per_server: Vec<u64>,
    /// The load-defining cell (`None` for a traffic-free trace).
    pub critical: Option<CriticalCell>,
}

impl Trace {
    /// Compute the structured summary.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            servers: self.servers,
            cost: self.cost,
            per_label: self.breakdown(|e| e.label.clone(), |c| c.label.clone()),
            per_phase: self.breakdown(|e| e.phase.clone(), |c| c.phase.clone()),
            per_server: self.per_server(),
            critical: self.critical_round(),
        }
    }

    /// Units received per physical server, summed over all rounds.
    pub fn per_server(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.servers];
        for e in &self.events {
            for (s, u) in e.received.iter().enumerate() {
                totals[s] += u;
            }
        }
        totals
    }

    /// The `(server, round, label)` cell defining the load: the maximum
    /// per-round received volume across the whole trace. Ties break
    /// toward the earliest round, then the lowest server id, so the
    /// answer is deterministic.
    pub fn critical_round(&self) -> Option<CriticalCell> {
        // (server, round) -> total units, and -> per-label units.
        let mut cells: HashMap<(usize, u64), u64> = HashMap::new();
        let mut by_label: HashMap<(usize, u64), Vec<(String, u64)>> = HashMap::new();
        for e in &self.events {
            for (s, &u) in e.received.iter().enumerate() {
                if u == 0 {
                    continue;
                }
                *cells.entry((s, e.round)).or_insert(0) += u;
                let labels = by_label.entry((s, e.round)).or_default();
                match labels.iter_mut().find(|(l, _)| *l == e.label) {
                    Some((_, total)) => *total += u,
                    None => labels.push((e.label.clone(), u)),
                }
            }
        }
        let (&(server, round), &units) = cells
            .iter()
            .max_by_key(|(&(s, r), &u)| (u, std::cmp::Reverse(r), std::cmp::Reverse(s)))?;
        let label = by_label[&(server, round)]
            .iter()
            .max_by(|(la, ua), (lb, ub)| ua.cmp(ub).then(lb.cmp(la)))
            .map(|(l, _)| l.clone())
            .unwrap_or_default();
        Some(CriticalCell {
            server,
            round,
            units,
            label,
        })
    }

    fn breakdown(
        &self,
        event_key: impl Fn(&TraceEvent) -> String,
        span_key: impl Fn(&ComputeSpan) -> String,
    ) -> Vec<TraceBreakdown> {
        // First-appearance order.
        let mut order: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut idx_of = |key: String, order: &mut Vec<String>| -> usize {
            *index.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                order.len() - 1
            })
        };
        struct Acc {
            cells: HashMap<(usize, u64), u64>,
            rounds: std::collections::BTreeSet<u64>,
            total: u64,
            events: usize,
            elapsed: Duration,
        }
        let mut accs: Vec<Acc> = Vec::new();
        let acc_at = |i: usize, accs: &mut Vec<Acc>| {
            while accs.len() <= i {
                accs.push(Acc {
                    cells: HashMap::new(),
                    rounds: std::collections::BTreeSet::new(),
                    total: 0,
                    events: 0,
                    elapsed: Duration::ZERO,
                });
            }
        };
        for e in &self.events {
            let i = idx_of(event_key(e), &mut order);
            acc_at(i, &mut accs);
            let acc = &mut accs[i];
            acc.events += 1;
            acc.rounds.insert(e.round);
            for (s, &u) in e.received.iter().enumerate() {
                if u > 0 {
                    *acc.cells.entry((s, e.round)).or_insert(0) += u;
                    acc.total += u;
                }
            }
        }
        for span in &self.compute {
            let i = idx_of(span_key(span), &mut order);
            acc_at(i, &mut accs);
            accs[i].elapsed += span.elapsed;
        }
        order
            .into_iter()
            .zip(accs)
            .map(|(label, acc)| TraceBreakdown {
                label,
                load: acc.cells.values().copied().max().unwrap_or(0),
                rounds: acc.rounds.len() as u64,
                total_units: acc.total,
                events: acc.events,
                elapsed: acc.elapsed,
            })
            .collect()
    }

    /// Serialize the full trace (events, compute spans, phases, and the
    /// structured report) as a self-contained JSON document
    /// (schema `mpcjoin-trace-v3`; the `audit` and `recovery_report`
    /// members are `null`).
    pub fn to_json(&self) -> String {
        self.to_json_with(None, None)
    }

    /// [`Trace::to_json`] with optional `audit` and `recovery_report`
    /// members: callers that know the theoretical bound of the plan that
    /// ran (see `mpcjoin::core::audit`) attach its verdict, and callers
    /// that ran under a fault plane attach the aggregated
    /// [`RecoveryReport`], so the exported document is self-contained for
    /// both bound-violation and recovery triage.
    ///
    /// Schema history: `mpcjoin-trace-v1` lacked the `audit` member;
    /// `mpcjoin-trace-v2` added it (possibly `null`); `mpcjoin-trace-v3`
    /// adds the per-event `recovery` array and the `recovery_report`
    /// member (possibly `null`). Readers should accept all three (the
    /// `trace_check` tool does).
    pub fn to_json_with(&self, audit: Option<&Json>, recovery: Option<&RecoveryReport>) -> String {
        self.to_json_tagged(audit, recovery, None)
    }

    /// [`Trace::to_json_with`] plus an optional `request` member: the
    /// serving layer attaches `{rid, id, session}` here so a per-query
    /// trace artifact links back to the request-scoped span in the
    /// operational log (`mpcjoin-log-v1`) that produced it — the span's
    /// `engine_ns` wall-clock envelopes exactly these round events.
    /// `request` is `null` for library/CLI callers; readers (including
    /// `trace_check`) ignore it.
    pub fn to_json_tagged(
        &self,
        audit: Option<&Json>,
        recovery: Option<&RecoveryReport>,
        request: Option<&Json>,
    ) -> String {
        let report = self.report();
        let breakdown_json = |b: &TraceBreakdown| {
            Json::Obj(vec![
                ("label".into(), Json::Str(b.label.clone())),
                ("load".into(), Json::Num(b.load as f64)),
                ("rounds".into(), Json::Num(b.rounds as f64)),
                ("total_units".into(), Json::Num(b.total_units as f64)),
                ("events".into(), Json::Num(b.events as f64)),
                ("elapsed_ns".into(), Json::Num(b.elapsed.as_nanos() as f64)),
            ])
        };
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("round".into(), Json::Num(e.round as f64)),
                    ("kind".into(), Json::Str(e.kind.name().into())),
                    ("label".into(), Json::Str(e.label.clone())),
                    ("phase".into(), Json::Str(e.phase.clone())),
                    (
                        "received".into(),
                        Json::Arr(e.received.iter().map(|&u| Json::Num(u as f64)).collect()),
                    ),
                    (
                        "traffic".into(),
                        Json::Arr(
                            e.traffic
                                .iter()
                                .map(|row| {
                                    Json::Arr(row.iter().map(|&u| Json::Num(u as f64)).collect())
                                })
                                .collect(),
                        ),
                    ),
                    ("at_ns".into(), Json::Num(e.at.as_nanos() as f64)),
                ])
            })
            .collect();
        let compute = self
            .compute
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(c.label.clone())),
                    ("phase".into(), Json::Str(c.phase.clone())),
                    ("round".into(), Json::Num(c.round as f64)),
                    ("tasks".into(), Json::Num(c.tasks as f64)),
                    ("elapsed_ns".into(), Json::Num(c.elapsed.as_nanos() as f64)),
                ])
            })
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|(round, label)| {
                Json::Obj(vec![
                    ("round".into(), Json::Num(*round as f64)),
                    ("label".into(), Json::Str(label.clone())),
                ])
            })
            .collect();
        let critical = match &report.critical {
            Some(c) => Json::Obj(vec![
                ("server".into(), Json::Num(c.server as f64)),
                ("round".into(), Json::Num(c.round as f64)),
                ("units".into(), Json::Num(c.units as f64)),
                ("label".into(), Json::Str(c.label.clone())),
            ]),
            None => Json::Null,
        };
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("mpcjoin-trace-v3".into())),
            ("request".into(), request.cloned().unwrap_or(Json::Null)),
            ("audit".into(), audit.cloned().unwrap_or(Json::Null)),
            (
                "recovery_report".into(),
                recovery.map_or(Json::Null, RecoveryReport::to_json),
            ),
            (
                "recovery".into(),
                Json::Arr(self.recovery.iter().map(RecoveryEvent::to_json).collect()),
            ),
            ("servers".into(), Json::Num(self.servers as f64)),
            ("load".into(), Json::Num(self.cost.load as f64)),
            ("rounds".into(), Json::Num(self.cost.rounds as f64)),
            (
                "total_units".into(),
                Json::Num(self.cost.total_units as f64),
            ),
            (
                "elapsed_ns".into(),
                Json::Num(self.cost.elapsed.as_nanos() as f64),
            ),
            ("phases".into(), Json::Arr(phases)),
            ("events".into(), Json::Arr(events)),
            ("compute".into(), Json::Arr(compute)),
            (
                "report".into(),
                Json::Obj(vec![
                    (
                        "per_label".into(),
                        Json::Arr(report.per_label.iter().map(breakdown_json).collect()),
                    ),
                    (
                        "per_phase".into(),
                        Json::Arr(report.per_phase.iter().map(breakdown_json).collect()),
                    ),
                    (
                        "per_server".into(),
                        Json::Arr(
                            report
                                .per_server
                                .iter()
                                .map(|&u| Json::Num(u as f64))
                                .collect(),
                        ),
                    ),
                    ("critical".into(), critical),
                ]),
            ),
        ]);
        // Every number here is a u64 cast or a Duration in nanoseconds —
        // always finite — but an embedded `audit` comes from outside this
        // module, so emit through the total sanitizing printer (non-finite
        // numbers become `null`) instead of panicking on a bad guest.
        doc.to_string_sanitized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64, label: &str, phase: &str, traffic: Vec<Vec<u64>>) -> TraceEvent {
        let servers = traffic.len();
        let received = (0..servers)
            .map(|d| traffic.iter().map(|row| row[d]).sum())
            .collect();
        TraceEvent {
            round,
            kind: EventKind::Exchange,
            label: label.into(),
            phase: phase.into(),
            received,
            traffic,
            at: Duration::ZERO,
        }
    }

    fn two_label_trace() -> Trace {
        Trace {
            servers: 2,
            cost: CostReport {
                load: 7,
                rounds: 2,
                total_units: 15,
                elapsed: Duration::ZERO,
            },
            phases: vec![(0, "build".into()), (1, "probe".into())],
            events: vec![
                event(0, "sort", "build", vec![vec![0, 3], vec![2, 0]]),
                event(0, "scan", "build", vec![vec![0, 4], vec![0, 0]]),
                event(1, "join", "probe", vec![vec![1, 0], vec![5, 0]]),
            ],
            compute: vec![ComputeSpan {
                label: "sort".into(),
                phase: "build".into(),
                round: 0,
                tasks: 2,
                elapsed: Duration::from_nanos(500),
            }],
            recovery: Vec::new(),
        }
    }

    #[test]
    fn breakdowns_sum_to_totals() {
        let t = two_label_trace();
        let r = t.report();
        let label_sum: u64 = r.per_label.iter().map(|b| b.total_units).sum();
        let phase_sum: u64 = r.per_phase.iter().map(|b| b.total_units).sum();
        let server_sum: u64 = r.per_server.iter().sum();
        assert_eq!(label_sum, t.cost.total_units);
        assert_eq!(phase_sum, t.cost.total_units);
        assert_eq!(server_sum, t.cost.total_units);
    }

    #[test]
    fn critical_cell_matches_load() {
        let t = two_label_trace();
        // Cell (server 1, round 0) receives 3 (sort) + 4 (scan) = 7.
        let c = t.critical_round().expect("has traffic");
        assert_eq!(c.units, t.cost.load);
        assert_eq!((c.server, c.round), (1, 0));
        assert_eq!(c.label, "scan"); // 4 of the 7 units
    }

    #[test]
    fn per_label_load_is_within_label() {
        let t = two_label_trace();
        let r = t.report();
        let sort = r.per_label.iter().find(|b| b.label == "sort").unwrap();
        assert_eq!(sort.load, 3);
        assert_eq!(sort.total_units, 5);
        assert_eq!(sort.rounds, 1);
        assert_eq!(sort.elapsed, Duration::from_nanos(500));
        let join = r.per_label.iter().find(|b| b.label == "join").unwrap();
        assert_eq!(join.load, 6); // server 0 receives 1 + 5 in round 1
    }

    #[test]
    fn json_roundtrip_preserves_totals() {
        let t = two_label_trace();
        let doc = crate::json::Json::parse(&t.to_json()).expect("valid json");
        assert_eq!(doc.get("load").and_then(crate::json::Json::as_u64), Some(7));
        assert_eq!(
            doc.get("total_units").and_then(crate::json::Json::as_u64),
            Some(15)
        );
        let events = doc
            .get("events")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        assert_eq!(events.len(), 3);
        let units: u64 = events
            .iter()
            .flat_map(|e| {
                e.get("received")
                    .and_then(crate::json::Json::as_arr)
                    .unwrap()
            })
            .map(|u| u.as_u64().unwrap())
            .sum();
        assert_eq!(units, 15);
    }

    #[test]
    fn json_schema_is_v3_with_audit_and_recovery_slots() {
        let t = two_label_trace();
        let doc = Json::parse(&t.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mpcjoin-trace-v3")
        );
        assert_eq!(doc.get("audit"), Some(&Json::Null));
        assert_eq!(doc.get("recovery_report"), Some(&Json::Null));
        assert_eq!(
            doc.get("recovery")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        let audit = Json::Obj(vec![("within".into(), Json::Bool(true))]);
        let doc2 = Json::parse(&t.to_json_with(Some(&audit), None)).unwrap();
        assert_eq!(
            doc2.get("audit").and_then(|a| a.get("within")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn json_embeds_recovery_events_and_report() {
        use crate::fault::{RecoveryKind, RecoveryReport};
        let mut t = two_label_trace();
        t.recovery.push(RecoveryEvent {
            round: 1,
            attempt: 1,
            kind: RecoveryKind::Retransmit,
            phase: "probe".into(),
            label: "join".into(),
            server: None,
            units: 4,
            delay: Duration::from_micros(10),
        });
        let report = RecoveryReport {
            faults_injected: 1,
            retries: 1,
            messages_dropped: 4,
            retransmitted_units: 4,
            events: t.recovery.clone(),
            ..RecoveryReport::default()
        };
        let doc = Json::parse(&t.to_json_with(None, Some(&report))).unwrap();
        let events = doc.get("recovery").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(Json::as_str),
            Some("retransmit")
        );
        assert_eq!(events[0].get("phase").and_then(Json::as_str), Some("probe"));
        let rr = doc.get("recovery_report").unwrap();
        assert_eq!(rr.get("recovered"), Some(&Json::Bool(true)));
        assert_eq!(rr.get("retries").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn non_finite_audit_guest_is_sanitized_not_fatal() {
        let t = two_label_trace();
        let audit = Json::Obj(vec![("ratio".into(), Json::Num(f64::NAN))]);
        let doc = Json::parse(&t.to_json_with(Some(&audit), None)).unwrap();
        assert_eq!(
            doc.get("audit").and_then(|a| a.get("ratio")),
            Some(&Json::Null)
        );
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let a = two_label_trace();
        let mut b = two_label_trace();
        b.events[0].at = Duration::from_secs(5);
        b.compute[0].elapsed = Duration::from_secs(5);
        assert_eq!(a, b);
    }
}

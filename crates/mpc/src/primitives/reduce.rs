//! Reduce-by-key (§2.1), the MPC aggregation workhorse.
//!
//! Local pre-aggregation followed by a hash repartition and a final local
//! aggregation. Pre-aggregation caps the per-key fan-in at `p` (each server
//! contributes at most one partial per key), so the received volume per
//! server is `O(K/p + p)` in expectation for `K` distinct keys — linear
//! load under the standing `N ≥ p^{1+ϵ}` assumption even under heavy value
//! skew.

use crate::cluster::{Cluster, Distributed};
use crate::hash::partition_of;
use std::collections::HashMap;
use std::hash::Hash;

/// Combine all values sharing a key with `combine`; afterwards each key
/// appears on exactly one server, exactly once. Output is locally sorted by
/// key for determinism. Uses 1 round.
pub fn reduce_by_key<K, V, F>(
    cluster: &mut Cluster,
    pairs: Distributed<(K, V)>,
    combine: F,
) -> Distributed<(K, V)>
where
    K: Ord + Hash + Clone + Send,
    V: Clone + Send,
    F: Fn(&mut V, V) + Copy + Sync,
{
    let _op = cluster.op("reduce-by-key");
    let p = cluster.p();

    // Local pre-aggregation (on the exec backend); emit partials routed
    // by key hash.
    let outboxes: Vec<Vec<(usize, (K, V))>> =
        cluster.par_map_parts(pairs.into_parts(), |_, items| {
            let mut partial: HashMap<K, V> = HashMap::with_capacity(items.len());
            for (k, v) in items {
                match partial.get_mut(&k) {
                    Some(acc) => combine(acc, v),
                    None => {
                        partial.insert(k, v);
                    }
                }
            }
            let mut out: Vec<(usize, (K, V))> = partial
                .into_iter()
                .map(|(k, v)| (partition_of(&k, p), (k, v)))
                .collect();
            // Deterministic emission order (HashMap iteration order isn't).
            out.sort_by(|a, b| (a.0, &a.1 .0).cmp(&(b.0, &b.1 .0)));
            out
        });

    let routed = cluster.exchange(outboxes);

    routed.par_map_local(cluster, |_, items| {
        let mut acc: HashMap<K, V> = HashMap::with_capacity(items.len());
        for (k, v) in items {
            match acc.get_mut(&k) {
                Some(a) => combine(a, v),
                None => {
                    acc.insert(k, v);
                }
            }
        }
        let mut out: Vec<(K, V)> = acc.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    })
}

/// Count occurrences per key — the degree-statistics pattern the paper uses
/// everywhere ("each tuple has key `π_v t` and value 1").
pub fn count_by_key<K>(cluster: &mut Cluster, keys: Distributed<K>) -> Distributed<(K, u64)>
where
    K: Ord + Hash + Clone + Send,
{
    let pairs = keys.map(|k| (k, 1u64));
    reduce_by_key(cluster, pairs, |acc, v| *acc += v)
}

/// Maximum over all `u64`s on the cluster (0 when empty), as
/// coordinator-known value; same communication shape as [`global_sum`].
pub fn global_max(cluster: &mut Cluster, values: Distributed<u64>) -> u64 {
    let _op = cluster.op("global-max");
    let outboxes: Vec<Vec<(usize, u64)>> = values
        .into_parts()
        .into_iter()
        .map(|items| vec![(0usize, items.into_iter().max().unwrap_or(0))])
        .collect();
    let at_zero = cluster.exchange(outboxes);
    at_zero.local(0).iter().copied().max().unwrap_or(0)
}

/// Sum all `u64`s on the cluster to a single coordinator-known value.
///
/// Each server sends one partial to server 0 (`p` units in one round); the
/// return value models coordinator knowledge, which the paper's algorithms
/// use freely for sizing decisions.
pub fn global_sum(cluster: &mut Cluster, values: Distributed<u64>) -> u64 {
    let _op = cluster.op("global-sum");
    let outboxes: Vec<Vec<(usize, u64)>> = values
        .into_parts()
        .into_iter()
        .map(|items| vec![(0usize, items.into_iter().sum::<u64>())])
        .collect();
    let at_zero = cluster.exchange(outboxes);
    at_zero.local(0).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_one_entry_per_key() {
        let mut c = Cluster::new(4);
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        let data = c.scatter_initial(pairs);
        let reduced = reduce_by_key(&mut c, data, |a, b| *a += b);
        let mut all = reduced.collect_all();
        all.sort();
        assert_eq!(all.len(), 10);
        assert!(all.iter().all(|&(_, v)| v == 100));
        assert_eq!(c.report().rounds, 1);
    }

    #[test]
    fn skewed_key_does_not_blow_load() {
        let mut c = Cluster::new(8);
        let n = 8000u64;
        // All items share a single key: pre-aggregation must keep the
        // receiving server's load at ~p units, not n.
        let data = c.scatter_initial((0..n).map(|_| (7u64, 1u64)).collect::<Vec<_>>());
        let reduced = reduce_by_key(&mut c, data, |a, b| *a += b);
        assert_eq!(reduced.collect_all(), vec![(7, n)]);
        assert!(c.report().load <= 8);
    }

    #[test]
    fn count_by_key_counts() {
        let mut c = Cluster::new(3);
        let data = c.scatter_initial(vec![1u64, 2, 1, 1, 3, 2]);
        let counts = count_by_key(&mut c, data);
        let mut all = counts.collect_all();
        all.sort();
        assert_eq!(all, vec![(1, 3), (2, 2), (3, 1)]);
    }

    #[test]
    fn global_sum_sums() {
        let mut c = Cluster::new(5);
        let data = c.scatter_initial((1..=100u64).collect::<Vec<_>>());
        assert_eq!(global_sum(&mut c, data), 5050);
        assert_eq!(c.report().load, 5);
    }

    #[test]
    fn empty_input() {
        let mut c = Cluster::new(3);
        let data: Distributed<(u64, u64)> = c.scatter_initial(vec![]);
        let reduced = reduce_by_key(&mut c, data, |a, b| *a += b);
        assert_eq!(reduced.total_len(), 0);
    }
}

//! Prefix sums and parallel-packing (§2.1).

use crate::cluster::{Cluster, Distributed};

/// Annotate every item with the exclusive prefix sum of `weight` over the
/// current global item order (server 0's items first, in local order, then
/// server 1's, …). 2 rounds, load `O(n/p + p)`.
pub fn prefix_sums<T, F>(
    cluster: &mut Cluster,
    data: Distributed<T>,
    weight: F,
) -> Distributed<(T, u64)>
where
    T: Clone + Send,
    F: Fn(&T) -> u64 + Sync,
{
    let _op = cluster.op("prefix-sums");
    let p = cluster.p();

    // Round 1: local totals to the coordinator.
    let totals_out: Vec<Vec<(usize, (usize, u64))>> = data
        .iter()
        .map(|(src, local)| {
            let total: u64 = local.iter().map(&weight).sum();
            vec![(0usize, (src, total))]
        })
        .collect();
    let gathered = cluster.exchange(totals_out);

    // Coordinator computes per-server offsets.
    let mut offsets = vec![0u64; p];
    {
        let mut totals = gathered.local(0).clone();
        totals.sort_by_key(|(src, _)| *src);
        let mut running = 0u64;
        for (src, total) in totals {
            offsets[src] = running;
            running += total;
        }
    }

    // Round 2: scatter offsets.
    let scatter_out: Vec<Vec<(usize, u64)>> = (0..p)
        .map(|src| {
            if src == 0 {
                offsets.iter().copied().enumerate().collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let offset_at = cluster.exchange(scatter_out);

    // Local exclusive prefix (per-server work on the exec backend; the
    // closure only reads its own server's offset).
    data.par_map_local(cluster, |server, local| {
        let mut acc = offset_at.local(server).first().copied().unwrap_or(0);
        local
            .into_iter()
            .map(|item| {
                let w = weight(&item);
                let entry = (item, acc);
                acc += w;
                entry
            })
            .collect()
    })
}

/// Exclusive prefix sums *restarting at every segment boundary*.
///
/// Items must already be globally sorted (or at least grouped) by
/// `segment`: all items of one segment contiguous in the global order.
/// Each item receives the exclusive prefix sum of `weight` *within its
/// segment*. 2 rounds, load `O(n/p + p)` — the per-server boundary carry
/// is one `(segment, partial)` pair through the coordinator.
///
/// This is the workhorse behind per-group packing in §3.2 step 4, where
/// each row-group `A_i` packs its light columns independently.
pub fn segmented_prefix_sums<T, K, FS, FW>(
    cluster: &mut Cluster,
    data: Distributed<T>,
    segment: FS,
    weight: FW,
) -> Distributed<(T, u64)>
where
    T: Clone + Send,
    K: Ord + Clone + Send + Sync,
    FS: Fn(&T) -> K + Sync,
    FW: Fn(&T) -> u64 + Sync,
{
    let _op = cluster.op("segmented-prefix-sums");
    let p = cluster.p();

    // Round 1: each server reports (first segment, last segment, total
    // weight in the last segment) to the coordinator; only the tail
    // segment can carry over into the next server.
    #[derive(Clone)]
    struct Tail<K> {
        last_segment: Option<K>,
        tail_weight: u64,
    }
    let tails: Vec<Tail<K>> = data
        .iter()
        .map(|(_, local)| {
            let last_segment = local.last().map(&segment);
            let tail_weight = match &last_segment {
                None => 0,
                Some(k) => local
                    .iter()
                    .rev()
                    .take_while(|t| segment(t) == *k)
                    .map(&weight)
                    .sum(),
            };
            Tail {
                last_segment,
                tail_weight,
            }
        })
        .collect();
    let gather_out: Vec<Vec<(usize, (usize, Option<K>, u64))>> = tails
        .iter()
        .enumerate()
        .map(|(src, t)| vec![(0usize, (src, t.last_segment.clone(), t.tail_weight))])
        .collect();
    let gathered = cluster.exchange(gather_out);

    // Coordinator: carry-in for server i is the accumulated tail weight of
    // the maximal run of earlier servers whose last segment equals server
    // i's first... since the layout is segment-grouped, the carry for a
    // server is simply the running tail of the previous servers while the
    // segment continues.
    let mut carries: Vec<(Option<K>, u64)> = vec![(None, 0); p];
    {
        let mut info = gathered.local(0).clone();
        info.sort_by_key(|(src, _, _)| *src);
        let mut run_segment: Option<K> = None;
        let mut run_weight = 0u64;
        for (src, last_segment, tail_weight) in info {
            carries[src] = (run_segment.clone(), run_weight);
            match last_segment {
                None => {} // empty server: carry passes through unchanged
                Some(k) => {
                    if run_segment.as_ref() == Some(&k) {
                        run_weight += tail_weight;
                    } else {
                        run_segment = Some(k);
                        run_weight = tail_weight;
                    }
                }
            }
        }
    }

    // Round 2: scatter carries.
    let scatter_out: Vec<Vec<(usize, (Option<K>, u64))>> = (0..p)
        .map(|src| {
            if src == 0 {
                carries.iter().cloned().enumerate().collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let carry_at = cluster.exchange(scatter_out);

    data.par_map_local(cluster, |server, local| {
        let (carry_seg, carry_w) = carry_at.local(server).first().cloned().unwrap_or((None, 0));
        let mut cur_seg: Option<K> = carry_seg;
        let mut acc = carry_w;
        local
            .into_iter()
            .map(|item| {
                let k = segment(&item);
                if cur_seg.as_ref() != Some(&k) {
                    cur_seg = Some(k);
                    acc = 0;
                }
                let w = weight(&item);
                let entry = (item, acc);
                acc += w;
                entry
            })
            .collect()
    })
}

/// Result of [`parallel_packing`].
#[derive(Debug)]
pub struct Packing<T> {
    /// Each item paired with its group id in `0..groups`.
    pub assigned: Distributed<(T, u64)>,
    /// Total number of groups.
    pub groups: u64,
}

/// Parallel-packing (§2.1, after Hu & Yi'19): group weighted items so that
/// every group's total weight is at most `capacity`, using
/// `O(1 + Σw/capacity)` groups.
///
/// Items heavier than `capacity/2` become singleton groups; lighter items
/// are assigned by exclusive prefix sum into windows of width
/// `capacity/2`, so a window's items plus the one item straddling its left
/// edge total at most `capacity`. This realizes the paper's guarantee up
/// to a constant factor: all but a constant fraction of groups carry at
/// least `capacity/2` weight. Panics if any single weight exceeds
/// `capacity` (the paper's precondition `0 < x_i ≤ 1`).
///
/// 4 rounds, load `O(n/p + p)`.
pub fn parallel_packing<T, F>(
    cluster: &mut Cluster,
    items: Distributed<T>,
    weight: F,
    capacity: u64,
) -> Packing<T>
where
    T: Clone + Send,
    F: Fn(&T) -> u64 + Copy + Sync,
{
    assert!(capacity >= 1, "capacity must be positive");
    let _op = cluster.op("parallel-packing");
    let half = (capacity / 2).max(1);

    // Weigh each item as (small-weight, large-count); prefix both at once.
    let weighted = items.map(|t| {
        let w = weight(&t);
        assert!(w <= capacity, "item weight {w} exceeds capacity {capacity}");
        (t, w)
    });
    // Pack both prefix dimensions into one u64 pair scan by running two
    // prefix passes would double rounds; instead scan a combined weight
    // where small items contribute w and large items contribute nothing,
    // then a second combined scan for large counts — but both scans can
    // share the same 2 rounds by scanning the pair lexicographically.
    // Simpler: one prefix pass over (small_w << 32 | large_count) is unsafe
    // for big inputs, so run the generic pass over a 2-component weight
    // encoded as two separate prefix_sums calls folded into one exchange
    // via tupled totals.
    let p = cluster.p();
    let totals_out: Vec<Vec<(usize, (usize, u64, u64))>> = weighted
        .iter()
        .map(|(src, local)| {
            let mut sw = 0u64;
            let mut lc = 0u64;
            for (_, w) in local {
                if *w > half {
                    lc += 1;
                } else {
                    sw += *w;
                }
            }
            vec![(0usize, (src, sw, lc))]
        })
        .collect();
    let gathered = cluster.exchange(totals_out);

    let mut offsets = vec![(0u64, 0u64); p];
    let (total_small, _total_large) = {
        let mut totals = gathered.local(0).clone();
        totals.sort_by_key(|(src, _, _)| *src);
        let mut run_sw = 0u64;
        let mut run_lc = 0u64;
        for (src, sw, lc) in totals {
            offsets[src] = (run_sw, run_lc);
            run_sw += sw;
            run_lc += lc;
        }
        (run_sw, run_lc)
    };
    let small_groups = total_small / half + 1;

    let scatter_out: Vec<Vec<(usize, (u64, u64, u64))>> = (0..p)
        .map(|src| {
            if src == 0 {
                offsets
                    .iter()
                    .enumerate()
                    .map(|(dest, &(sw, lc))| (dest, (sw, lc, small_groups)))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let offset_at = cluster.exchange(scatter_out);

    // Per-server assignment on the exec backend. Each server returns its
    // local max group id alongside its assignments; the global max is a
    // deterministic fold over the server-ordered results (the closure must
    // not mutate shared state, so the max cannot live in a capture).
    let per_server: Vec<(Vec<(T, u64)>, u64)> =
        cluster.par_consume(weighted.into_parts(), |server, local| {
            let (mut sw, mut lc, small_groups) = offset_at
                .local(server)
                .first()
                .copied()
                .unwrap_or((0, 0, 1));
            let mut local_max = 0u64;
            let out: Vec<(T, u64)> = local
                .into_iter()
                .map(|(t, w)| {
                    let gid = if w > half {
                        let g = small_groups + lc;
                        lc += 1;
                        g
                    } else {
                        let g = sw / half;
                        sw += w;
                        g
                    };
                    local_max = local_max.max(gid);
                    (t, gid)
                })
                .collect();
            (out, local_max)
        });
    let max_gid = per_server.iter().map(|(_, m)| *m).max().unwrap_or(0);
    let assigned = Distributed::from_parts(per_server.into_iter().map(|(out, _)| out).collect());

    Packing {
        assigned,
        groups: max_gid + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn prefix_sums_are_exclusive_and_global() {
        let mut c = Cluster::new(4);
        let data = c.scatter_initial(vec![1u64; 20]);
        let prefixed = prefix_sums(&mut c, data, |_| 1);
        let mut seen: Vec<u64> = prefixed.collect_all().into_iter().map(|(_, s)| s).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        assert_eq!(c.report().rounds, 2);
    }

    #[test]
    fn packing_respects_capacity() {
        let mut c = Cluster::new(4);
        let weights: Vec<u64> = vec![3, 9, 1, 1, 1, 10, 2, 2, 5, 4, 1, 7];
        let cap = 10u64;
        let data = c.scatter_initial(weights.clone());
        let packing = parallel_packing(&mut c, data, |w| *w, cap);
        let mut group_sum: HashMap<u64, u64> = HashMap::new();
        for (w, gid) in packing.assigned.collect_all() {
            assert!(gid < packing.groups);
            *group_sum.entry(gid).or_insert(0) += w;
        }
        for (&gid, &sum) in &group_sum {
            assert!(sum <= cap, "group {gid} overfull: {sum}");
        }
        // Group count O(1 + total/cap): total=46, cap=10 → expect ≤ ~11.
        let total: u64 = weights.iter().sum();
        assert!(packing.groups <= 2 + 4 * total / cap);
    }

    #[test]
    fn packing_singletons_for_heavy_items() {
        let mut c = Cluster::new(2);
        let data = c.scatter_initial(vec![10u64, 10, 10]);
        let packing = parallel_packing(&mut c, data, |w| *w, 10);
        let gids: std::collections::HashSet<u64> = packing
            .assigned
            .collect_all()
            .into_iter()
            .map(|(_, g)| g)
            .collect();
        assert_eq!(gids.len(), 3, "each heavy item in its own group");
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn packing_rejects_oversize_items() {
        let mut c = Cluster::new(2);
        let data = c.scatter_initial(vec![11u64]);
        let _ = parallel_packing(&mut c, data, |w| *w, 10);
    }

    #[test]
    fn segmented_prefix_restarts_per_segment() {
        let mut c = Cluster::new(4);
        // Grouped by segment: 5 items of segment 0, 7 of segment 1, 3 of 2.
        let items: Vec<(u64, u64)> = (0..5)
            .map(|i| (0u64, i))
            .chain((0..7).map(|i| (1u64, i)))
            .chain((0..3).map(|i| (2u64, i)))
            .collect();
        // scatter_initial is round-robin and would interleave segments, so
        // place contiguously: server = position * 4 / total.
        let n = items.len();
        let placed = c.place_initial(
            items
                .into_iter()
                .enumerate()
                .map(|(pos, it)| (pos * 4 / n, it))
                .collect(),
        );
        let prefixed = segmented_prefix_sums(&mut c, placed, |(seg, _)| *seg, |_| 1);
        let mut by_segment: HashMap<u64, Vec<u64>> = HashMap::new();
        for ((seg, _), prefix) in prefixed.collect_all() {
            by_segment.entry(seg).or_default().push(prefix);
        }
        for (seg, mut prefixes) in by_segment {
            prefixes.sort_unstable();
            let expect: Vec<u64> = (0..prefixes.len() as u64).collect();
            assert_eq!(prefixes, expect, "segment {seg}");
        }
    }

    #[test]
    fn segmented_prefix_single_segment_spanning_servers() {
        let mut c = Cluster::new(4);
        let placed = c.place_initial((0..20usize).map(|pos| (pos / 5, ())).collect());
        let prefixed = segmented_prefix_sums(&mut c, placed, |_| 0u64, |_| 2);
        let mut prefixes: Vec<u64> = prefixed.collect_all().into_iter().map(|(_, s)| s).collect();
        prefixes.sort_unstable();
        assert_eq!(prefixes, (0..20).map(|i| 2 * i).collect::<Vec<u64>>());
    }

    #[test]
    fn packing_of_nothing() {
        let mut c = Cluster::new(2);
        let data: Distributed<u64> = c.scatter_initial(vec![]);
        let packing = parallel_packing(&mut c, data, |w| *w, 10);
        assert_eq!(packing.assigned.total_len(), 0);
        assert!(packing.groups >= 1);
    }
}

//! Distributed sorting (§2.1 "Sorting", after Goodrich et al.).
//!
//! Sample sort: local sort → a hash-sampled `Θ(p·log p)` subset of all
//! items goes to a coordinator → the coordinator broadcasts `p−1`
//! splitters → route by splitter interval → local sort. The coordinator
//! receives `O(p·log p)` units (not the `p²` of per-server regular
//! sampling), so sorting stays within the paper's `O(N/p)` load bound for
//! every `N ≥ p^{1+ϵ}`, and the output partition sizes are `O(N/p)`
//! w.h.p. over the (deterministic, position-hashed) sample.
//!
//! Ties are broken by the item's pre-sort position, so duplicate keys
//! spread evenly across consecutive servers instead of piling onto one —
//! exactly the behaviour the paper's algorithms rely on when they sort by
//! an attribute and then say "tuples with the same value land on the same
//! or two consecutive servers".

use crate::cluster::{Cluster, Distributed};
use crate::hash::seeded_hash;

/// Seed for the sampling hash (arbitrary constant; determinism matters,
/// the value does not).
const SAMPLE_SEED: u64 = 0x5057_2053_4f52_5421;

/// Globally sort `data` by `key`: afterwards every item on server `i`
/// compares `≤` every item on server `j > i`, and each server's local
/// vector is sorted. Uses 4 rounds.
pub fn sort_by_key<T, K, F>(cluster: &mut Cluster, data: Distributed<T>, key: F) -> Distributed<T>
where
    T: Clone + Send,
    K: Ord + Clone + Send,
    F: Fn(&T) -> K + Sync,
{
    let _op = cluster.op("sort");
    let p = cluster.p();
    if p == 1 {
        let mut parts = data.into_parts();
        parts[0].sort_by_key(|a| key(a));
        // Keep the round structure identical to the multi-server path so
        // that round counts don't depend on p.
        cluster.skip_rounds(4);
        return Distributed::from_parts(parts);
    }

    // Tag each item with a unique (server, index) tiebreaker and sort
    // locally by (key, tiebreak) — per-server work on the exec backend.
    let mut tagged: Vec<Vec<(K, (usize, usize), T)>> =
        cluster.par_map_parts(data.into_parts(), |src, items| {
            let mut v: Vec<(K, (usize, usize), T)> = items
                .into_iter()
                .enumerate()
                .map(|(idx, item)| (key(&item), (src, idx), item))
                .collect();
            v.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
            v
        });

    // Round 1: global size to the coordinator, setting the sample rate.
    let count_out: Vec<Vec<(usize, u64)>> = tagged
        .iter()
        .map(|local| vec![(0usize, local.len() as u64)])
        .collect();
    let counts = cluster.exchange(count_out);
    let n_total: u64 = counts.local(0).iter().sum();
    // Θ(p·log p) samples in expectation; the rate is driver knowledge
    // (derived from n_total), as the paper's algorithms assume throughout.
    let target = (4 * p as u64 * (usize::BITS - p.leading_zeros()) as u64).max(16);
    let threshold = if n_total == 0 {
        0
    } else {
        ((target as u128 * u128::from(u64::MAX)) / u128::from(n_total.max(target)))
            .min(u128::from(u64::MAX)) as u64
    };

    // Round 2: hash-sampled items to the coordinator.
    let sample_out: Vec<Vec<(usize, (K, (usize, usize)))>> = tagged
        .iter()
        .map(|local| {
            local
                .iter()
                .filter(|(_, tb, _)| seeded_hash(SAMPLE_SEED, tb) <= threshold)
                .map(|(k, tb, _)| (0usize, (k.clone(), *tb)))
                .collect()
        })
        .collect();
    let samples = cluster.exchange(sample_out);

    // Coordinator picks p−1 splitters from the pooled samples.
    let mut pooled: Vec<(K, (usize, usize))> = samples.local(0).clone();
    pooled.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    let splitters: Vec<(K, (usize, usize))> = (1..p)
        .filter_map(|i| {
            if pooled.is_empty() {
                None
            } else {
                Some(pooled[(i * pooled.len() / p).min(pooled.len() - 1)].clone())
            }
        })
        .collect();

    // Round 3: broadcast splitters from the coordinator.
    let bcast_out: Vec<Vec<(usize, (K, (usize, usize)))>> = (0..p)
        .map(|src| {
            if src == 0 {
                (0..p)
                    .flat_map(|dest| splitters.iter().map(move |s| (dest, s.clone())))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let splitters_everywhere = cluster.exchange(bcast_out);

    // Round 4: route each item to its splitter interval.
    let route_out: Vec<Vec<(usize, (K, (usize, usize), T))>> = tagged
        .drain(..)
        .enumerate()
        .map(|(src, local)| {
            let my_splitters = splitters_everywhere.local(src);
            local
                .into_iter()
                .map(|(k, tb, item)| {
                    let dest = my_splitters.partition_point(|(sk, stb)| (sk, *stb) <= (&k, tb));
                    (dest, (k, tb, item))
                })
                .collect()
        })
        .collect();
    let routed = cluster.exchange(route_out);

    // Final local sort, then strip tags.
    routed.par_map_local(cluster, |_, mut items| {
        items.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        items.into_iter().map(|(_, _, item)| item).collect()
    })
}

/// Check the global sortedness invariant (test helper).
pub fn is_globally_sorted<T, K: Ord, F: Fn(&T) -> K>(data: &Distributed<T>, key: F) -> bool {
    let mut last: Option<K> = None;
    for (_, local) in data.iter() {
        for item in local {
            let k = key(item);
            if let Some(prev) = &last {
                if *prev > k {
                    return false;
                }
            }
            last = Some(k);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_globally_and_stays_balanced() {
        let mut c = Cluster::new(8);
        let n = 4096usize;
        // Adversarial-ish input: reversed with stride mixing.
        let items: Vec<u64> = (0..n as u64).map(|i| (n as u64 - i) * 7 % 1000).collect();
        let data = c.scatter_initial(items.clone());
        let sorted = sort_by_key(&mut c, data, |x| *x);
        assert!(is_globally_sorted(&sorted, |x| *x));
        assert_eq!(sorted.total_len(), n);
        // Sample-sort balance: O(N/p) w.h.p. (deterministic hash).
        assert!(sorted.max_local_len() <= 3 * n / 8 + 16);
        // Linear-ish load: N/p plus the sample/splitter terms.
        assert!(c.report().load <= 2 * (n as u64) / 8 + 1024);
        assert_eq!(c.report().rounds, 4);
    }

    #[test]
    fn heavy_duplicates_spread_over_servers() {
        let mut c = Cluster::new(8);
        let n = 2048usize;
        // Every key identical: must still balance thanks to tiebreakers.
        let data = c.scatter_initial(vec![42u64; n]);
        let sorted = sort_by_key(&mut c, data, |x| *x);
        assert!(sorted.max_local_len() <= 3 * n / 8 + 16);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut c = Cluster::new(4);
        let data: Distributed<u64> = c.scatter_initial(vec![]);
        let sorted = sort_by_key(&mut c, data, |x| *x);
        assert_eq!(sorted.total_len(), 0);

        let mut c2 = Cluster::new(4);
        let data2 = c2.scatter_initial(vec![3u64, 1, 2]);
        let sorted2 = sort_by_key(&mut c2, data2, |x| *x);
        assert_eq!(sorted2.collect_all(), vec![1, 2, 3]);
    }

    #[test]
    fn single_server_cluster() {
        let mut c = Cluster::new(1);
        let data = c.scatter_initial(vec![5u64, 4, 9, 1]);
        let sorted = sort_by_key(&mut c, data, |x| *x);
        assert_eq!(sorted.collect_all(), vec![1, 4, 5, 9]);
    }

    #[test]
    fn rounds_independent_of_input_size() {
        let mut rounds = Vec::new();
        for n in [256usize, 1024, 4096] {
            let mut c = Cluster::new(8);
            let data = c.scatter_initial((0..n as u64).rev().collect::<Vec<_>>());
            let _ = sort_by_key(&mut c, data, |x| *x);
            rounds.push(c.report().rounds);
        }
        assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    }
}

//! Multi-search (§2.1): batched predecessor queries.
//!
//! Given a catalog `Y` of `(key, value)` pairs and a set of query items,
//! find for every query the catalog entry with the largest key `≤` the
//! query's key. The paper uses this for semijoins and for attaching
//! per-value statistics (degrees, OUT-estimates) to tuples, in situations
//! where hash-partitioning by key would be skew-prone: a sorted layout
//! spreads a hot key across consecutive servers while a carry pass still
//! resolves every query.
//!
//! Implementation: jointly sort catalog and queries by `(key, kind)` with
//! catalog entries ordered before queries of the same key; resolve queries
//! locally against the last catalog entry seen; fix server boundaries with
//! a gather/scatter of one carry per server through the coordinator.
//! 6 rounds total, load `O((|X|+|Y|)/p + p·log p)`.

use crate::cluster::{Cluster, Distributed};
use crate::primitives::sort::sort_by_key;

/// Joint sort element.
#[derive(Clone, Debug)]
enum Entry<T, K, V> {
    Cat(K, V),
    Query(K, T),
}

impl<T, K: Clone, V> Entry<T, K, V> {
    fn key(&self) -> (K, u8) {
        match self {
            Entry::Cat(k, _) => (k.clone(), 0),
            Entry::Query(k, _) => (k.clone(), 1),
        }
    }
}

/// For each query item, the catalog pair with the greatest key `≤` the
/// query key (`None` if no such pair exists). The output distribution
/// follows the joint sort order.
pub fn multi_search<T, K, V, F>(
    cluster: &mut Cluster,
    queries: Distributed<T>,
    qkey: F,
    catalog: Distributed<(K, V)>,
) -> Distributed<(T, Option<(K, V)>)>
where
    T: Clone + Send,
    K: Ord + Clone + Send,
    V: Clone + Send,
    F: Fn(&T) -> K + Sync,
{
    let _op = cluster.op("multi-search");
    let p = cluster.p();

    // Merge both inputs into one distributed collection (local relabeling —
    // both already live on the same cluster).
    let mut merged: Vec<Vec<Entry<T, K, V>>> = (0..p).map(|_| Vec::new()).collect();
    for (i, local) in catalog.into_parts().into_iter().enumerate() {
        merged[i].extend(local.into_iter().map(|(k, v)| Entry::Cat(k, v)));
    }
    for (i, local) in queries.into_parts().into_iter().enumerate() {
        merged[i].extend(local.into_iter().map(|t| {
            let k = qkey(&t);
            Entry::Query(k, t)
        }));
    }

    let sorted = sort_by_key(cluster, Distributed::from_parts(merged), Entry::key);

    // Local resolution on the exec backend; remember each server's last
    // catalog entry. Results merge in server order (deterministic).
    type Resolution<T, K, V> = (Option<(K, V)>, Vec<(T, Option<(K, V)>)>, Vec<usize>);
    let resolutions: Vec<Resolution<T, K, V>> =
        cluster.par_consume(sorted.into_parts(), |_, local| {
            let mut last: Option<(K, V)> = None;
            let mut out = Vec::new();
            let mut pending = Vec::new(); // indices needing carry
            for entry in local {
                match entry {
                    Entry::Cat(k, v) => last = Some((k, v)),
                    Entry::Query(_, t) => {
                        if last.is_none() {
                            pending.push(out.len());
                        }
                        out.push((t, last.clone()));
                    }
                }
            }
            (last, out, pending)
        });
    let mut last_cat_per_server: Vec<Option<(K, V)>> = Vec::with_capacity(p);
    let mut resolved: Vec<Vec<(T, Option<(K, V)>)>> = Vec::with_capacity(p);
    let mut unresolved: Vec<Vec<usize>> = Vec::with_capacity(p);
    for (last, out, pending) in resolutions {
        last_cat_per_server.push(last);
        resolved.push(out);
        unresolved.push(pending);
    }

    // Round: each server ships its last catalog entry to the coordinator.
    let carry_out: Vec<Vec<(usize, (usize, Option<(K, V)>))>> = last_cat_per_server
        .iter()
        .enumerate()
        .map(|(src, last)| vec![(0usize, (src, last.clone()))])
        .collect();
    let gathered = cluster.exchange(carry_out);

    // Coordinator computes, for each server, the last catalog entry on any
    // strictly earlier server.
    let mut by_server: Vec<Option<(K, V)>> = vec![None; p];
    {
        let mut entries = gathered.local(0).clone();
        entries.sort_by_key(|(src, _)| *src);
        let mut running: Option<(K, V)> = None;
        for (src, last) in entries {
            by_server[src] = running.clone();
            if last.is_some() {
                running = last;
            }
        }
    }

    // Round: scatter each server its carry-in.
    let scatter_out: Vec<Vec<(usize, Option<(K, V)>)>> = (0..p)
        .map(|src| {
            if src == 0 {
                by_server
                    .iter()
                    .cloned()
                    .enumerate()
                    .collect::<Vec<(usize, Option<(K, V)>)>>()
            } else {
                Vec::new()
            }
        })
        .collect();
    let carries = cluster.exchange(scatter_out);

    // Patch unresolved queries with the carry-in.
    for (server, pending) in unresolved.into_iter().enumerate() {
        let carry = carries.local(server).first().cloned().flatten();
        for idx in pending {
            resolved[server][idx].1 = carry.clone();
        }
    }

    Distributed::from_parts(resolved)
}

/// Exact-key lookup on top of [`multi_search`]: each query gets `Some(v)`
/// iff the catalog contains its exact key.
pub fn lookup_exact<T, K, V, F>(
    cluster: &mut Cluster,
    queries: Distributed<T>,
    qkey: F,
    catalog: Distributed<(K, V)>,
) -> Distributed<(T, Option<V>)>
where
    T: Clone + Send,
    K: Ord + Clone + Send,
    V: Clone + Send,
    F: Fn(&T) -> K + Sync,
{
    let _op = cluster.op("lookup-exact");
    let found = multi_search(cluster, queries, &qkey, catalog);
    found.map(move |(t, pred)| {
        let hit = pred.and_then(|(k, v)| (k == qkey(&t)).then_some(v));
        (t, hit)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_predecessors_across_servers() {
        let mut c = Cluster::new(4);
        let catalog: Vec<(u64, &str)> = vec![(10, "ten"), (20, "twenty"), (30, "thirty")];
        let queries: Vec<u64> = vec![5, 10, 15, 25, 35];
        let cat = c.scatter_initial(catalog);
        let qs = c.scatter_initial(queries);
        let mut results = multi_search(&mut c, qs, |q| *q, cat).collect_all();
        results.sort_by_key(|(q, _)| *q);
        let expect = vec![
            (5u64, None),
            (10, Some((10u64, "ten"))),
            (15, Some((10, "ten"))),
            (25, Some((20, "twenty"))),
            (35, Some((30, "thirty"))),
        ];
        assert_eq!(results, expect);
    }

    #[test]
    fn lookup_exact_requires_equality() {
        let mut c = Cluster::new(4);
        let cat = c.scatter_initial(vec![(10u64, 100u64), (20, 200)]);
        let qs = c.scatter_initial(vec![10u64, 15, 20, 21]);
        let mut results = lookup_exact(&mut c, qs, |q| *q, cat).collect_all();
        results.sort_by_key(|(q, _)| *q);
        assert_eq!(
            results,
            vec![(10, Some(100)), (15, None), (20, Some(200)), (21, None)]
        );
    }

    #[test]
    fn large_batch_linear_load_and_constant_rounds() {
        let n = 4000u64;
        let mut c = Cluster::new(8);
        let cat = c.scatter_initial((0..n).step_by(2).map(|k| (k, k)).collect::<Vec<_>>());
        let qs = c.scatter_initial((0..n).collect::<Vec<_>>());
        let results = multi_search(&mut c, qs, |q| *q, cat);
        for (q, hit) in results.collect_all() {
            let expect = q - (q % 2);
            assert_eq!(hit, Some((expect, expect)), "query {q}");
        }
        let r = c.report();
        assert_eq!(r.rounds, 6);
        // ~ (|X|+|Y|)/p plus sampling terms.
        assert!(r.load <= 2 * (n + n / 2) / 8 + 100);
    }

    #[test]
    fn empty_catalog_gives_none() {
        let mut c = Cluster::new(2);
        let cat: Distributed<(u64, u64)> = c.scatter_initial(vec![]);
        let qs = c.scatter_initial(vec![1u64, 2]);
        let results = multi_search(&mut c, qs, |q| *q, cat);
        assert!(results.collect_all().iter().all(|(_, h)| h.is_none()));
    }
}

//! The deterministic MPC primitives of §2.1, all `O(1)` rounds and
//! `O(N/p)`-load under the standing assumption `N ≥ p^{1+ϵ}`:
//!
//! * [`sort::sort_by_key`] — global sort (sorting, after Goodrich et al.),
//! * [`reduce::reduce_by_key`] — keyed aggregation / degree statistics,
//! * [`search::multi_search`] — batched predecessor search; semijoins and
//!   statistic-attachment are built on it,
//! * [`scan::prefix_sums`] / [`scan::parallel_packing`] — weighted
//!   grouping into `O(1 + Σw/capacity)` bins.
//!
//! Dangling-tuple removal (§2.1 "Remove dangling tuples") is a query-tree
//! traversal of distributed semijoins and lives with the Yannakakis code in
//! `mpcjoin-yannakakis`, which knows about query structure.

pub mod reduce;
pub mod scan;
pub mod search;
pub mod sort;

//! Deterministic fault plane: seeded fault injection, recovery
//! simulation, and recovery reporting for the MPC simulator.
//!
//! The MPC model of §1.3 assumes fail-free servers; a production cluster
//! does not get that luxury. This module adds an opt-in *fault plane*
//! underneath [`crate::Cluster::exchange`] — the simulator's single
//! data-movement operation — that models the reliable-delivery layer a
//! real deployment would run on lossy hardware:
//!
//! * every message in a round carries a **sequence number**; receivers
//!   acknowledge, deduplicate, and resequence by it,
//! * **dropped** messages are detected (missing acks) and selectively
//!   retransmitted under a bounded [`RetryPolicy`] with backoff,
//! * **duplicated** deliveries are discarded by the dedup buffer,
//! * **reordered** deliveries are corrected by the resequencing buffer,
//! * a **crash-stop** server failure at a round boundary voids the
//!   in-flight round; the round is *replayed* from the round-boundary
//!   checkpoint (see [`crate::Cluster::checkpoint`]) and the lost
//!   physical server's slots are deterministically rehashed onto the
//!   surviving `p − f` servers,
//! * **stragglers** delay a round's completion — visible in wall-clock
//!   spans only, never in the cost ledger,
//! * transient **local-compute faults** are retried by the same policy.
//!
//! Faults are scheduled by a [`FaultPlan`]: a small DSL of fault specs
//! (kind + round window + parameters) plus a `u64` seed driving a
//! dedicated [`DetRng`] stream, so every fault schedule — and every
//! recovery action it forces — is exactly reproducible.
//!
//! ## Why the cost ledger is fault-invariant
//!
//! The ledger measures the *algorithm* in the MPC model: the load `L` of
//! §1.3 is a property of what the algorithm communicates, not of how
//! many times the transport had to resend it. The fault plane therefore
//! never touches the ledger: recovery overhead (retransmitted units,
//! replayed rounds, retries, dedup discards) is accounted separately in
//! the [`RecoveryReport`], and delays surface in wall-clock spans. A
//! recovered run's output *and* ledger are bit-identical to the
//! fault-free run — pinned by the recovery-equivalence suite and the
//! `chaos` harness — because the reliable-delivery layer, when it
//! succeeds, delivers exactly the faithful message sequence.
//!
//! When recovery is impossible within the retry budget (e.g. a plan that
//! drops every retransmission), the plane marks the run *unrecoverable*;
//! the simulator finishes the computation (to keep library invariants)
//! and the engine boundary surfaces [`crate::MpcError::Unrecoverable`]
//! instead of a result — never a panic.

use crate::json::Json;
use crate::rng::DetRng;
use crate::MpcError;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// Bounded retry/backoff policy for transient faults (dropped messages,
/// failing local-compute tasks).
///
/// Attempt `k` (1-based) waits `backoff · k` before retransmitting —
/// linear backoff, deterministic, and visible only in wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt; a round whose messages
    /// are still missing after this many retransmissions is
    /// unrecoverable.
    pub max_retries: u32,
    /// Base backoff delay; attempt `k` sleeps `backoff · k`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// What kind of fault a [`FaultSpec`] injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash-stop failure of a physical server at the round boundary:
    /// the in-flight round is voided and replayed from the checkpoint,
    /// and the server's logical slots are rehashed onto survivors.
    /// Ignored when it would leave no survivor (a 1-server cluster).
    Crash {
        /// Physical server that fails.
        server: usize,
    },
    /// Each in-flight message is independently dropped with probability
    /// `prob` (per delivery attempt, redrawn on retransmission).
    Drop {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// Each delivered message is independently duplicated with
    /// probability `prob`; duplicates are discarded by sequence-number
    /// dedup.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// The round's delivery order is shuffled; the resequencing buffer
    /// restores `(src, position)` order.
    Reorder,
    /// A straggling server delays the round by `delay` (wall clock
    /// only).
    Straggle {
        /// The slow physical server.
        server: usize,
        /// How long it lags the round barrier.
        delay: Duration,
    },
    /// A local-compute task fails transiently `failures` times before
    /// succeeding; each failure costs one retry under the
    /// [`RetryPolicy`]. More failures than `max_retries` is
    /// unrecoverable.
    ComputeFault {
        /// Number of consecutive transient failures.
        failures: u32,
    },
}

impl FaultKind {
    /// Stable lowercase name (used in the JSON plan format).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Drop { .. } => "drop",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Straggle { .. } => "straggle",
            FaultKind::ComputeFault { .. } => "compute",
        }
    }
}

/// One scheduled fault: a kind active over a half-open global-round
/// window `[from, to)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// First round the fault is active in.
    pub from: u64,
    /// First round the fault is no longer active in.
    pub to: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl FaultSpec {
    fn active(&self, round: u64) -> bool {
        self.from <= round && round < self.to
    }
}

/// A deterministic, seeded schedule of faults — the fault plane's DSL.
///
/// Build one with the chainable constructors and install it with
/// `QueryEngine::faults` (or [`crate::Cluster::install_faults`] when
/// driving a cluster directly):
///
/// ```
/// use mpcjoin_mpc::fault::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new(42)
///     .drop_window(0, 8, 0.2)            // 20% loss in rounds 0..8
///     .duplicate(3, 0.5)                 // duplications in round 3
///     .reorder(2)                        // shuffled delivery in round 2
///     .crash(4, 1)                       // server 1 dies at round 4
///     .straggle(1, 0, Duration::from_micros(50))
///     .retries(4);
/// assert_eq!(plan.specs().len(), 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    policy: RetryPolicy,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan whose fault draws are driven by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            policy: RetryPolicy::default(),
            faults: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replace the seed (the CLI's `--fault-seed` override).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The retry/backoff policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Set the maximum transient-fault retries.
    #[must_use]
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.policy.max_retries = max_retries;
        self
    }

    /// Set the base backoff delay (attempt `k` sleeps `backoff · k`).
    #[must_use]
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.policy.backoff = backoff;
        self
    }

    /// The scheduled fault specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedule a fault over the round window `[from, to)`.
    #[must_use]
    pub fn spec(mut self, from: u64, to: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { from, to, kind });
        self
    }

    /// Crash-stop physical server `server` at the boundary of `round`.
    #[must_use]
    pub fn crash(self, round: u64, server: usize) -> Self {
        self.spec(round, round + 1, FaultKind::Crash { server })
    }

    /// Drop each message of `round` with probability `prob`.
    #[must_use]
    pub fn drop(self, round: u64, prob: f64) -> Self {
        self.drop_window(round, round + 1, prob)
    }

    /// Drop each message of rounds `[from, to)` with probability `prob`.
    #[must_use]
    pub fn drop_window(self, from: u64, to: u64, prob: f64) -> Self {
        self.spec(from, to, FaultKind::Drop { prob })
    }

    /// Duplicate each delivered message of `round` with probability
    /// `prob`.
    #[must_use]
    pub fn duplicate(self, round: u64, prob: f64) -> Self {
        self.spec(round, round + 1, FaultKind::Duplicate { prob })
    }

    /// Shuffle the delivery order of `round`.
    #[must_use]
    pub fn reorder(self, round: u64) -> Self {
        self.spec(round, round + 1, FaultKind::Reorder)
    }

    /// Delay `round` by `delay` on behalf of straggling `server`.
    #[must_use]
    pub fn straggle(self, round: u64, server: usize, delay: Duration) -> Self {
        self.spec(round, round + 1, FaultKind::Straggle { server, delay })
    }

    /// Fail the next local-compute span at `round` transiently,
    /// `failures` times.
    #[must_use]
    pub fn compute_fault(self, round: u64, failures: u32) -> Self {
        self.spec(round, round + 1, FaultKind::ComputeFault { failures })
    }

    /// Serialize the plan (schema `mpcjoin-faultplan-v1`).
    pub fn to_json(&self) -> Json {
        let faults = self
            .faults
            .iter()
            .map(|s| {
                let mut members = vec![
                    ("kind".to_string(), Json::Str(s.kind.name().into())),
                    ("from".to_string(), Json::Num(s.from as f64)),
                    ("to".to_string(), Json::Num(s.to as f64)),
                ];
                match s.kind {
                    FaultKind::Crash { server } | FaultKind::Straggle { server, .. } => {
                        members.push(("server".into(), Json::Num(server as f64)));
                    }
                    _ => {}
                }
                match s.kind {
                    FaultKind::Drop { prob } | FaultKind::Duplicate { prob } => {
                        members.push(("prob".into(), Json::Num(prob)));
                    }
                    FaultKind::Straggle { delay, .. } => {
                        members.push(("delay_us".into(), Json::Num(delay.as_micros() as f64)));
                    }
                    FaultKind::ComputeFault { failures } => {
                        members.push(("failures".into(), Json::Num(failures as f64)));
                    }
                    _ => {}
                }
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("mpcjoin-faultplan-v1".into())),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "max_retries".into(),
                Json::Num(self.policy.max_retries as f64),
            ),
            (
                "backoff_us".into(),
                Json::Num(self.policy.backoff.as_micros() as f64),
            ),
            ("faults".into(), Json::Arr(faults)),
        ])
    }

    /// Parse a plan from its JSON form (see [`FaultPlan::to_json`]).
    /// Errors with [`MpcError::InvalidFaultPlan`] on malformed input.
    pub fn from_json(text: &str) -> Result<FaultPlan, MpcError> {
        let bad = |msg: String| MpcError::InvalidFaultPlan(msg);
        let doc = Json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema != "mpcjoin-faultplan-v1" {
                return Err(bad(format!("unknown schema `{schema}`")));
            }
        }
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let mut plan = FaultPlan::new(seed);
        if let Some(n) = doc.get("max_retries").and_then(Json::as_u64) {
            plan.policy.max_retries = n as u32;
        }
        if let Some(us) = doc.get("backoff_us").and_then(Json::as_u64) {
            plan.policy.backoff = Duration::from_micros(us);
        }
        let faults = doc
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `faults` array".into()))?;
        for (i, f) in faults.iter().enumerate() {
            let kind = f
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("fault {i}: missing `kind`")))?;
            let num = |k: &str| f.get(k).and_then(Json::as_u64);
            let round = num("round");
            let from = num("from").or(round);
            let from = from.ok_or_else(|| bad(format!("fault {i}: missing `round`/`from`")))?;
            let to = num("to").unwrap_or(from + 1);
            if to <= from {
                return Err(bad(format!("fault {i}: empty window [{from}, {to})")));
            }
            let prob = || -> Result<f64, MpcError> {
                let p = f
                    .get("prob")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(format!("fault {i}: missing `prob`")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("fault {i}: prob {p} outside [0, 1]")));
                }
                Ok(p)
            };
            let server =
                || num("server").ok_or_else(|| bad(format!("fault {i}: missing `server`")));
            let kind = match kind {
                "crash" => FaultKind::Crash {
                    server: server()? as usize,
                },
                "drop" => FaultKind::Drop { prob: prob()? },
                "duplicate" => FaultKind::Duplicate { prob: prob()? },
                "reorder" => FaultKind::Reorder,
                "straggle" => FaultKind::Straggle {
                    server: server()? as usize,
                    delay: Duration::from_micros(
                        num("delay_us")
                            .ok_or_else(|| bad(format!("fault {i}: missing `delay_us`")))?,
                    ),
                },
                "compute" => FaultKind::ComputeFault {
                    failures: num("failures")
                        .ok_or_else(|| bad(format!("fault {i}: missing `failures`")))?
                        as u32,
                },
                other => return Err(bad(format!("fault {i}: unknown kind `{other}`"))),
            };
            plan.faults.push(FaultSpec { from, to, kind });
        }
        Ok(plan)
    }
}

/// What a recovery action was (the `kind` of a [`RecoveryEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Missing messages were selectively retransmitted (one retry).
    Retransmit,
    /// Duplicate deliveries were discarded by sequence-number dedup.
    Dedup,
    /// Out-of-order deliveries were restored by the resequencing buffer.
    Resequence,
    /// A crashed server's round was replayed from the checkpoint and its
    /// slots rehashed onto a survivor.
    CrashReplay,
    /// A straggling server delayed the round barrier.
    Straggler,
    /// A transient local-compute failure was retried.
    ComputeRetry,
    /// The retry budget was exhausted; the run cannot recover.
    Unrecoverable,
}

impl RecoveryKind {
    /// Stable lowercase name (used in the trace v3 JSON export).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::Retransmit => "retransmit",
            RecoveryKind::Dedup => "dedup",
            RecoveryKind::Resequence => "resequence",
            RecoveryKind::CrashReplay => "crash_replay",
            RecoveryKind::Straggler => "straggler",
            RecoveryKind::ComputeRetry => "compute_retry",
            RecoveryKind::Unrecoverable => "unrecoverable",
        }
    }
}

/// One recovery action the fault plane took, attributed to the operation
/// scope and algorithm phase active when it happened (trace v3 embeds
/// these so recovery overhead is attributable per phase, like load).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Global round the action belongs to.
    pub round: u64,
    /// Delivery attempt (0 = first try) the action happened on.
    pub attempt: u32,
    /// What happened.
    pub kind: RecoveryKind,
    /// Innermost phase mark at the time (see
    /// [`crate::Cluster::mark_phase`]).
    pub phase: String,
    /// Operation-scope path at the time (see [`crate::Cluster::op`]).
    pub label: String,
    /// The physical server involved, when the action is server-specific
    /// (crash, straggler).
    pub server: Option<usize>,
    /// Units involved: messages retransmitted / duplicates discarded /
    /// messages resequenced / messages replayed, depending on `kind`.
    pub units: u64,
    /// Simulated delay charged to wall clock (backoff, straggling).
    pub delay: Duration,
}

impl RecoveryEvent {
    /// Serialize one event (used by the trace v3 export).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("round".into(), Json::Num(self.round as f64)),
            ("attempt".into(), Json::Num(self.attempt as f64)),
            ("kind".into(), Json::Str(self.kind.name().into())),
            ("phase".into(), Json::Str(self.phase.clone())),
            ("label".into(), Json::Str(self.label.clone())),
            (
                "server".into(),
                self.server.map_or(Json::Null, |s| Json::Num(s as f64)),
            ),
            ("units".into(), Json::Num(self.units as f64)),
            ("delay_ns".into(), Json::Num(self.delay.as_nanos() as f64)),
        ])
    }
}

/// What the fault plane did over a whole run: every injected fault and
/// every recovery action, aggregated — plus the verdict. Returned by
/// [`crate::Cluster::take_recovery`] and surfaced on `ExecutionResult`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Individual fault injections that actually perturbed something.
    pub faults_injected: u64,
    /// Transient retransmission rounds (retries) performed.
    pub retries: u64,
    /// Rounds replayed from a checkpoint after a crash.
    pub rounds_replayed: u64,
    /// Messages dropped in flight (across all attempts).
    pub messages_dropped: u64,
    /// Duplicate deliveries discarded by dedup.
    pub messages_duplicated: u64,
    /// Rounds whose delivery order had to be resequenced.
    pub reordered_rounds: u64,
    /// Units re-sent by retransmission or crash replay (recovery
    /// traffic; deliberately *not* in the cost ledger — see the module
    /// docs).
    pub retransmitted_units: u64,
    /// Transient local-compute failures retried.
    pub compute_retries: u64,
    /// Physical servers permanently lost to crash-stop failures, in
    /// crash order.
    pub servers_lost: Vec<usize>,
    /// Total wall-clock delay injected by stragglers.
    pub straggler_delay: Duration,
    /// Total wall-clock delay injected by retry backoff.
    pub backoff_delay: Duration,
    /// `Some((round, detail))` when the retry budget was exhausted and
    /// the run could not recover.
    pub unrecoverable: Option<(u64, String)>,
    /// Every recovery action, in simulation order (embedded in trace
    /// v3 when tracing is on).
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryReport {
    /// Whether every injected fault was recovered from.
    pub fn recovered(&self) -> bool {
        self.unrecoverable.is_none()
    }

    /// Whether the plane never had to act (no fault actually fired).
    pub fn is_clean(&self) -> bool {
        self.faults_injected == 0 && self.unrecoverable.is_none()
    }

    /// Serialize the report (schema `mpcjoin-recovery-v1`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("mpcjoin-recovery-v1".into())),
            ("recovered".into(), Json::Bool(self.recovered())),
            (
                "faults_injected".into(),
                Json::Num(self.faults_injected as f64),
            ),
            ("retries".into(), Json::Num(self.retries as f64)),
            (
                "rounds_replayed".into(),
                Json::Num(self.rounds_replayed as f64),
            ),
            (
                "messages_dropped".into(),
                Json::Num(self.messages_dropped as f64),
            ),
            (
                "messages_duplicated".into(),
                Json::Num(self.messages_duplicated as f64),
            ),
            (
                "reordered_rounds".into(),
                Json::Num(self.reordered_rounds as f64),
            ),
            (
                "retransmitted_units".into(),
                Json::Num(self.retransmitted_units as f64),
            ),
            (
                "compute_retries".into(),
                Json::Num(self.compute_retries as f64),
            ),
            (
                "servers_lost".into(),
                Json::Arr(
                    self.servers_lost
                        .iter()
                        .map(|&s| Json::Num(s as f64))
                        .collect(),
                ),
            ),
            (
                "straggler_delay_ns".into(),
                Json::Num(self.straggler_delay.as_nanos() as f64),
            ),
            (
                "backoff_delay_ns".into(),
                Json::Num(self.backoff_delay.as_nanos() as f64),
            ),
            (
                "unrecoverable".into(),
                match &self.unrecoverable {
                    None => Json::Null,
                    Some((round, detail)) => Json::Obj(vec![
                        ("round".into(), Json::Num(*round as f64)),
                        ("detail".into(), Json::Str(detail.clone())),
                    ]),
                },
            ),
            (
                "events".into(),
                Json::Arr(self.events.iter().map(RecoveryEvent::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no faults fired");
        }
        write!(
            f,
            "{} faults, {} retries, {} replays, {} dropped, {} duplicated, {} lost server(s)",
            self.faults_injected,
            self.retries,
            self.rounds_replayed,
            self.messages_dropped,
            self.messages_duplicated,
            self.servers_lost.len(),
        )?;
        if let Some((round, detail)) = &self.unrecoverable {
            write!(f, " — UNRECOVERABLE at round {round}: {detail}")?;
        }
        Ok(())
    }
}

/// The runtime state of an installed fault plane. Owned by the shared
/// `CostTracker` so sub-clusters created by [`crate::Cluster::split`]
/// share one plane, exactly like tracing and metrics.
#[derive(Clone, Debug)]
pub(crate) struct FaultPlane {
    plan: FaultPlan,
    rng: DetRng,
    /// Physical-server dimension (for crash rehash).
    servers: usize,
    /// Physical servers permanently lost.
    crashed: BTreeSet<usize>,
    /// Deterministic rehash targets: `(lost server, survivor)`.
    rehash: Vec<(usize, usize)>,
    /// Indices into `plan.faults` of one-shot specs (crash, compute)
    /// already applied.
    applied: BTreeSet<usize>,
    pub(crate) report: RecoveryReport,
}

/// Wall-clock delays an exchange or compute span must absorb, returned
/// to the cluster so sleeping happens outside the tracker borrow.
#[derive(Debug, Default)]
pub(crate) struct FaultDelays {
    pub(crate) total: Duration,
}

impl FaultPlane {
    pub(crate) fn new(plan: FaultPlan, servers: usize) -> Self {
        let rng = DetRng::seed_from_u64(plan.seed);
        FaultPlane {
            plan,
            rng,
            servers,
            crashed: BTreeSet::new(),
            rehash: Vec::new(),
            applied: BTreeSet::new(),
            report: RecoveryReport::default(),
        }
    }

    /// The deterministic rehash target for a crashed server: the next
    /// surviving physical server cyclically after it.
    fn rehash_target(&self, server: usize) -> usize {
        (1..self.servers)
            .map(|k| (server + k) % self.servers)
            .find(|t| !self.crashed.contains(t))
            .unwrap_or(server)
    }

    /// Whether any spec is active at `round` (cheap pre-check so clean
    /// rounds pay nothing beyond the scan).
    fn any_active(&self, round: u64) -> bool {
        self.report.unrecoverable.is_none()
            && self
                .plan
                .faults
                .iter()
                .enumerate()
                .any(|(i, s)| s.active(round) && !self.applied.contains(&i))
    }

    fn push_event(&mut self, event: RecoveryEvent) {
        self.report.events.push(event);
    }

    /// Simulate the reliable-delivery protocol for one exchange of
    /// `n` sequence-numbered messages at `round`. Mutates the report;
    /// returns the wall-clock delay the round must absorb.
    ///
    /// The protocol operates on message *sequence numbers*: the caller
    /// retains the round's messages (the round-boundary checkpoint), so
    /// retransmission and crash replay re-deliver from that buffer, and
    /// dedup/resequencing restore exactly the faithful `(src, position)`
    /// delivery order — which is why a recovered exchange is
    /// bit-identical to a fault-free one.
    pub(crate) fn on_exchange(
        &mut self,
        round: u64,
        n: usize,
        phase: &str,
        label: &str,
    ) -> FaultDelays {
        let mut delays = FaultDelays::default();
        if !self.any_active(round) {
            return delays;
        }
        let policy = self.plan.policy;

        // Round-boundary crash-stop failures: the in-flight round is
        // voided and replayed from the checkpoint; the lost server's
        // slots rehash deterministically onto a survivor. Each crash
        // burns one replay, not a transient retry.
        let crashes: Vec<(usize, usize)> = self
            .plan
            .faults
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.kind {
                FaultKind::Crash { server } if s.active(round) && !self.applied.contains(&i) => {
                    Some((i, server))
                }
                _ => None,
            })
            .collect();
        for (idx, server) in crashes {
            self.applied.insert(idx);
            if self.crashed.contains(&server)
                || server >= self.servers
                || self.crashed.len() + 1 >= self.servers
            {
                // Already dead, out of range, or no survivor would
                // remain: crash-stop needs p − f ≥ 1.
                continue;
            }
            self.crashed.insert(server);
            let target = self.rehash_target(server);
            self.rehash.push((server, target));
            self.report.faults_injected += 1;
            self.report.rounds_replayed += 1;
            self.report.retransmitted_units += n as u64;
            self.report.servers_lost.push(server);
            self.push_event(RecoveryEvent {
                round,
                attempt: 0,
                kind: RecoveryKind::CrashReplay,
                phase: phase.to_string(),
                label: label.to_string(),
                server: Some(server),
                units: n as u64,
                delay: Duration::ZERO,
            });
        }

        // Stragglers delay the round barrier (wall clock only).
        let stragglers: Vec<(usize, Duration)> = self
            .plan
            .faults
            .iter()
            .filter_map(|s| match s.kind {
                FaultKind::Straggle { server, delay } if s.active(round) => Some((server, delay)),
                _ => None,
            })
            .collect();
        for (server, delay) in stragglers {
            if self.crashed.contains(&server) || server >= self.servers {
                continue;
            }
            self.report.faults_injected += 1;
            self.report.straggler_delay += delay;
            delays.total += delay;
            self.push_event(RecoveryEvent {
                round,
                attempt: 0,
                kind: RecoveryKind::Straggler,
                phase: phase.to_string(),
                label: label.to_string(),
                server: Some(server),
                units: 0,
                delay,
            });
        }

        if n == 0 {
            return delays;
        }
        let drop_prob = self
            .plan
            .faults
            .iter()
            .filter_map(|s| match s.kind {
                FaultKind::Drop { prob } if s.active(round) => Some(prob),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let dup_prob = self
            .plan
            .faults
            .iter()
            .filter_map(|s| match s.kind {
                FaultKind::Duplicate { prob } if s.active(round) => Some(prob),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let reorder = self
            .plan
            .faults
            .iter()
            .any(|s| matches!(s.kind, FaultKind::Reorder) && s.active(round));

        // The resequencing buffer: seq → arrived. Deliveries may come in
        // any order and more than once; the buffer restores seq order
        // and discards duplicates, so a complete round always commits
        // the faithful message sequence.
        let mut arrived = vec![false; n];
        let mut pending: Vec<usize> = (0..n).collect();

        if reorder {
            // Shuffle the delivery order (Fisher–Yates on the seed
            // stream); the buffer resequences, so this perturbs arrival
            // order only, never the committed order.
            for i in (1..pending.len()).rev() {
                let j = self.rng.gen_range(0..i + 1);
                pending.swap(i, j);
            }
            self.report.faults_injected += 1;
            self.report.reordered_rounds += 1;
            self.push_event(RecoveryEvent {
                round,
                attempt: 0,
                kind: RecoveryKind::Resequence,
                phase: phase.to_string(),
                label: label.to_string(),
                server: None,
                units: n as u64,
                delay: Duration::ZERO,
            });
        }

        let mut attempt: u32 = 0;
        loop {
            let mut dropped: Vec<usize> = Vec::new();
            let mut duplicates: u64 = 0;
            for &seq in &pending {
                if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                    dropped.push(seq);
                    continue;
                }
                arrived[seq] = true;
                if dup_prob > 0.0 && self.rng.gen_bool(dup_prob) {
                    // A second copy arrives; the dedup buffer discards
                    // it by sequence number.
                    duplicates += 1;
                }
            }
            if duplicates > 0 {
                self.report.faults_injected += 1;
                self.report.messages_duplicated += duplicates;
                self.push_event(RecoveryEvent {
                    round,
                    attempt,
                    kind: RecoveryKind::Dedup,
                    phase: phase.to_string(),
                    label: label.to_string(),
                    server: None,
                    units: duplicates,
                    delay: Duration::ZERO,
                });
            }
            if dropped.is_empty() {
                break;
            }
            self.report.faults_injected += 1;
            self.report.messages_dropped += dropped.len() as u64;
            if attempt >= policy.max_retries {
                let detail = format!(
                    "{} of {} messages undelivered after {} retransmission(s) during `{}`",
                    dropped.len(),
                    n,
                    attempt,
                    label,
                );
                self.push_event(RecoveryEvent {
                    round,
                    attempt,
                    kind: RecoveryKind::Unrecoverable,
                    phase: phase.to_string(),
                    label: label.to_string(),
                    server: None,
                    units: dropped.len() as u64,
                    delay: Duration::ZERO,
                });
                self.report.unrecoverable = Some((round, detail));
                break;
            }
            attempt += 1;
            let backoff = policy.backoff * attempt;
            self.report.retries += 1;
            self.report.retransmitted_units += dropped.len() as u64;
            self.report.backoff_delay += backoff;
            delays.total += backoff;
            self.push_event(RecoveryEvent {
                round,
                attempt,
                kind: RecoveryKind::Retransmit,
                phase: phase.to_string(),
                label: label.to_string(),
                server: None,
                units: dropped.len() as u64,
                delay: backoff,
            });
            pending = dropped;
        }
        debug_assert!(
            self.report.unrecoverable.is_some() || arrived.iter().all(|&a| a),
            "a recovered round must have delivered every message"
        );
        delays
    }

    /// Simulate transient failures of a local-compute span at `round`.
    pub(crate) fn on_compute(&mut self, round: u64, phase: &str, label: &str) -> FaultDelays {
        let mut delays = FaultDelays::default();
        if !self.any_active(round) {
            return delays;
        }
        let policy = self.plan.policy;
        let specs: Vec<(usize, u32)> = self
            .plan
            .faults
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.kind {
                FaultKind::ComputeFault { failures }
                    if s.active(round) && !self.applied.contains(&i) =>
                {
                    Some((i, failures))
                }
                _ => None,
            })
            .collect();
        for (idx, failures) in specs {
            self.applied.insert(idx);
            if failures == 0 {
                continue;
            }
            self.report.faults_injected += 1;
            let retriable = failures.min(policy.max_retries);
            for attempt in 1..=retriable {
                let backoff = policy.backoff * attempt;
                self.report.compute_retries += 1;
                self.report.backoff_delay += backoff;
                delays.total += backoff;
                self.push_event(RecoveryEvent {
                    round,
                    attempt,
                    kind: RecoveryKind::ComputeRetry,
                    phase: phase.to_string(),
                    label: label.to_string(),
                    server: None,
                    units: 1,
                    delay: backoff,
                });
            }
            if failures > policy.max_retries && self.report.unrecoverable.is_none() {
                let detail = format!(
                    "local task still failing after {} retries during `{label}`",
                    policy.max_retries,
                );
                self.push_event(RecoveryEvent {
                    round,
                    attempt: policy.max_retries,
                    kind: RecoveryKind::Unrecoverable,
                    phase: phase.to_string(),
                    label: label.to_string(),
                    server: None,
                    units: 1,
                    delay: Duration::ZERO,
                });
                self.report.unrecoverable = Some((round, detail));
            }
        }
        delays
    }

    /// Mark the run unrecoverable for a reason outside the schedule
    /// (e.g. a corrupted destination surfacing under the plane).
    pub(crate) fn poison(&mut self, round: u64, phase: &str, label: &str, detail: String) {
        if self.report.unrecoverable.is_none() {
            self.push_event(RecoveryEvent {
                round,
                attempt: 0,
                kind: RecoveryKind::Unrecoverable,
                phase: phase.to_string(),
                label: label.to_string(),
                server: None,
                units: 0,
                delay: Duration::ZERO,
            });
            self.report.unrecoverable = Some((round, detail));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_and_json_roundtrip() {
        let plan = FaultPlan::new(7)
            .drop_window(0, 4, 0.25)
            .duplicate(2, 0.5)
            .reorder(1)
            .crash(3, 2)
            .straggle(0, 1, Duration::from_micros(40))
            .compute_fault(2, 2)
            .retries(5)
            .backoff(Duration::from_micros(10));
        let text = plan.to_json().to_string_compact().expect("plan serializes");
        let back = FaultPlan::from_json(&text).expect("plan parses");
        assert_eq!(back, plan);
        assert_eq!(back.policy().max_retries, 5);
        assert_eq!(back.seed(), 7);
        assert_eq!(back.with_seed(9).seed(), 9);
    }

    #[test]
    fn from_json_rejects_malformed_plans() {
        for bad in [
            "not json",
            r#"{"schema":"mpcjoin-faultplan-v9","faults":[]}"#,
            r#"{"faults":[{"kind":"drop","round":0}]}"#,
            r#"{"faults":[{"kind":"drop","round":0,"prob":1.5}]}"#,
            r#"{"faults":[{"kind":"crash","round":0}]}"#,
            r#"{"faults":[{"kind":"warp","round":0}]}"#,
            r#"{"faults":[{"kind":"drop","from":3,"to":3,"prob":0.5}]}"#,
            r#"{"seed":1}"#,
        ] {
            let err = FaultPlan::from_json(bad).expect_err(bad);
            assert!(matches!(err, MpcError::InvalidFaultPlan(_)), "{bad}");
        }
    }

    #[test]
    fn clean_rounds_cost_nothing_and_consume_no_rng() {
        let plan = FaultPlan::new(1).drop(5, 0.9);
        let mut plane = FaultPlane::new(plan, 4);
        let before = plane.rng.clone();
        let d = plane.on_exchange(0, 100, "(preamble)", "sort");
        assert_eq!(d.total, Duration::ZERO);
        assert!(plane.report.is_clean());
        // The seed stream was not advanced by the inactive round.
        let mut a = before;
        let mut b = plane.rng.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn drops_retry_until_delivered_and_report_counts() {
        let plan = FaultPlan::new(11).drop(0, 0.5).retries(64);
        let mut plane = FaultPlane::new(plan, 4);
        let _ = plane.on_exchange(0, 200, "p", "l");
        let r = &plane.report;
        assert!(r.recovered());
        assert!(r.retries >= 1);
        assert!(r.messages_dropped >= 1);
        assert_eq!(r.messages_dropped, r.retransmitted_units);
        assert!(r.events.iter().any(|e| e.kind == RecoveryKind::Retransmit));
    }

    #[test]
    fn certain_drop_exhausts_retries_and_is_unrecoverable() {
        let plan = FaultPlan::new(3).drop(0, 1.0).retries(2);
        let mut plane = FaultPlane::new(plan, 4);
        let _ = plane.on_exchange(0, 10, "p", "l");
        let r = &plane.report;
        assert!(!r.recovered());
        assert_eq!(r.retries, 2);
        let (round, detail) = r.unrecoverable.as_ref().expect("failed");
        assert_eq!(*round, 0);
        assert!(detail.contains("undelivered"));
        // Once failed, the plane stops injecting.
        let d = plane.on_exchange(1, 10, "p", "l");
        assert_eq!(d.total, Duration::ZERO);
    }

    #[test]
    fn duplicates_and_reorders_recover_without_retries() {
        let plan = FaultPlan::new(5).duplicate(0, 1.0).reorder(0);
        let mut plane = FaultPlane::new(plan, 4);
        let _ = plane.on_exchange(0, 50, "p", "l");
        let r = &plane.report;
        assert!(r.recovered());
        assert_eq!(r.retries, 0);
        assert_eq!(r.messages_duplicated, 50);
        assert_eq!(r.reordered_rounds, 1);
    }

    #[test]
    fn crash_replays_round_and_rehashes_deterministically() {
        let plan = FaultPlan::new(9).crash(0, 1).crash(2, 2);
        let mut plane = FaultPlane::new(plan, 4);
        let _ = plane.on_exchange(0, 30, "p", "l");
        let _ = plane.on_exchange(1, 30, "p", "l");
        let _ = plane.on_exchange(2, 30, "p", "l");
        let r = plane.report.clone();
        assert!(r.recovered());
        assert_eq!(r.servers_lost, vec![1, 2]);
        assert_eq!(r.rounds_replayed, 2);
        assert_eq!(r.retransmitted_units, 60);
        // Server 1 rehashes to 2 (next alive at crash time); server 2 —
        // by then dead 1 is skipped — rehashes to 3.
        assert_eq!(plane.rehash, vec![(1, 2), (2, 3)]);
        // A crash never repeats.
        let mut again = FaultPlane::new(FaultPlan::new(9).crash(0, 1), 4);
        let _ = again.on_exchange(0, 5, "p", "l");
        let _ = again.on_exchange(0, 5, "p", "l");
        assert_eq!(again.report.servers_lost, vec![1]);
    }

    #[test]
    fn crash_on_single_server_cluster_is_ignored() {
        let plan = FaultPlan::new(2).crash(0, 0);
        let mut plane = FaultPlane::new(plan, 1);
        let _ = plane.on_exchange(0, 10, "p", "l");
        assert!(plane.report.is_clean());
        assert!(plane.report.servers_lost.is_empty());
    }

    #[test]
    fn straggler_delay_accumulates_in_wall_clock_only() {
        let plan = FaultPlan::new(4).straggle(0, 2, Duration::from_micros(30));
        let mut plane = FaultPlane::new(plan, 4);
        let d = plane.on_exchange(0, 10, "p", "l");
        assert_eq!(d.total, Duration::from_micros(30));
        assert_eq!(plane.report.straggler_delay, Duration::from_micros(30));
        assert_eq!(plane.report.retries, 0);
    }

    #[test]
    fn compute_faults_retry_under_policy_or_fail() {
        let plan = FaultPlan::new(6)
            .compute_fault(0, 2)
            .retries(3)
            .backoff(Duration::from_micros(5));
        let mut plane = FaultPlane::new(plan, 4);
        let d = plane.on_compute(0, "p", "map");
        assert_eq!(plane.report.compute_retries, 2);
        // Linear backoff: 5µs + 10µs.
        assert_eq!(d.total, Duration::from_micros(15));
        assert!(plane.report.recovered());

        let mut hopeless = FaultPlane::new(FaultPlan::new(6).compute_fault(0, 9).retries(2), 4);
        let _ = hopeless.on_compute(0, "p", "map");
        assert!(!hopeless.report.recovered());
        assert_eq!(hopeless.report.compute_retries, 2);
    }

    #[test]
    fn same_seed_same_recovery_story() {
        let mk = || {
            let plan = FaultPlan::new(77).drop_window(0, 3, 0.4).duplicate(1, 0.3);
            let mut plane = FaultPlane::new(plan, 8);
            for round in 0..3 {
                let _ = plane.on_exchange(round, 64, "p", "l");
            }
            plane.report
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn report_json_and_display_cover_verdicts() {
        let plan = FaultPlan::new(3).drop(0, 1.0).retries(1);
        let mut plane = FaultPlane::new(plan, 4);
        let _ = plane.on_exchange(0, 4, "phase", "label");
        let r = plane.report.clone();
        let doc = Json::parse(&r.to_json().to_string_compact().expect("finite"))
            .expect("report serializes");
        assert_eq!(doc.get("recovered"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mpcjoin-recovery-v1")
        );
        assert!(doc.get("unrecoverable").unwrap().get("detail").is_some());
        assert!(r.to_string().contains("UNRECOVERABLE"));
        assert!(RecoveryReport::default().to_string().contains("no faults"));
    }
}

//! Cost accounting for the MPC model.
//!
//! §1.3 of the paper defines the complexity of an MPC algorithm by two
//! numbers: the number of synchronous *rounds*, and the *load* `L` — the
//! maximum message volume **received** by any server in any round, where
//! one tuple, one semiring element, or one `O(log N)`-bit integer costs one
//! unit. Outgoing volume is deliberately uncounted (it does not correlate
//! with local memory/computation the way incoming volume does).
//!
//! [`CostTracker`] is the single ledger for a simulation: every
//! [`crate::Cluster::exchange`] credits incoming units to a
//! `(physical server, round)` cell, and [`CostReport`] summarizes the run.

use crate::fault::{FaultPlan, FaultPlane, RecoveryReport};
use crate::metrics::{LoadSummary, MetricsLog, MetricsSnapshot};
use crate::trace::{ComputeSpan, EventKind, Trace, TraceEvent, TraceLog};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Mutable ledger of received units per `(physical server, global round)`.
#[derive(Debug)]
pub struct CostTracker {
    cells: HashMap<(usize, u64), u64>,
    max_round_used: u64,
    total_units: u64,
    /// Labeled phase boundaries: `(first round of the phase, label, wall
    /// clock at the mark)`.
    phases: Vec<(u64, String, Instant)>,
    /// Wall clock at ledger creation; `CostReport::elapsed` is measured
    /// from here. Wall-clock time is *instrumentation only* — it never
    /// feeds back into loads or routing, which stay deterministic.
    started: Instant,
    /// Execution trace recording state; `None` (the default) disables
    /// tracing entirely — the ledger then takes the exact pre-trace code
    /// paths and pays nothing. See [`crate::trace`].
    trace: Option<TraceLog>,
    /// Metrics registry; `None` (the default) disables metrics
    /// collection. See [`crate::metrics`].
    metrics: Option<MetricsLog>,
    /// Installed fault plane; `None` (the default) disables fault
    /// injection entirely — exchanges then take the exact fault-free
    /// code paths. See [`crate::fault`].
    fault: Option<FaultPlane>,
    /// Operation-scope label stack (see [`crate::Cluster::op`]); shared by
    /// tracing, metrics, and the fault plane, and only pushed to while at
    /// least one of them is enabled.
    op_stack: Vec<String>,
}

impl Default for CostTracker {
    fn default() -> Self {
        CostTracker {
            cells: HashMap::new(),
            max_round_used: 0,
            total_units: 0,
            phases: Vec::new(),
            started: Instant::now(),
            trace: None,
            metrics: None,
            fault: None,
            op_stack: Vec::new(),
        }
    }
}

/// Shared handle to a [`CostTracker`]; clusters and their sub-clusters all
/// write to the same ledger so that logically-parallel work is accounted on
/// the same round timeline.
pub type SharedTracker = Rc<RefCell<CostTracker>>;

impl CostTracker {
    /// A fresh ledger wrapped for sharing.
    pub fn shared() -> SharedTracker {
        Rc::new(RefCell::new(CostTracker::default()))
    }

    /// Credit `units` received by `server` during `round`.
    pub fn credit(&mut self, server: usize, round: u64, units: u64) {
        if units == 0 {
            return;
        }
        *self.cells.entry((server, round)).or_insert(0) += units;
        self.total_units += units;
        self.max_round_used = self.max_round_used.max(round + 1);
    }

    /// Maximum units received by any server in any single round — the load
    /// `L` of the run so far.
    pub fn max_load(&self) -> u64 {
        self.cells.values().copied().max().unwrap_or(0)
    }

    /// Number of rounds in which at least one message was delivered.
    pub fn rounds_used(&self) -> u64 {
        self.max_round_used
    }

    /// Total units delivered across all servers and rounds.
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// Units received by `server` summed over all rounds (a per-server
    /// footprint; useful for skew diagnostics).
    pub fn server_total(&self, server: usize) -> u64 {
        self.cells
            .iter()
            .filter(|((s, _), _)| *s == server)
            .map(|(_, u)| *u)
            .sum()
    }

    /// Immutable summary of the run.
    pub fn report(&self) -> CostReport {
        CostReport {
            load: self.max_load(),
            rounds: self.rounds_used(),
            total_units: self.total_units(),
            elapsed: self.started.elapsed(),
        }
    }

    /// Wall-clock time since the ledger was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Open a labeled phase starting at `round`; the previous phase (if
    /// any) ends here.
    pub fn mark_phase(&mut self, round: u64, label: &str) {
        self.phases.push((round, label.to_string(), Instant::now()));
    }

    /// Begin recording an execution trace over `servers` physical servers.
    /// Idempotent: a second call while recording is a no-op (sub-clusters
    /// share this ledger and must not restart their parent's trace).
    pub fn enable_tracing(&mut self, servers: usize) {
        if self.trace.is_none() {
            self.trace = Some(TraceLog::new(servers));
        }
    }

    /// Whether an execution trace is being recorded.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Physical-server dimension of the active trace (0 when disabled).
    pub fn trace_servers(&self) -> usize {
        self.trace.as_ref().map_or(0, |t| t.servers)
    }

    /// Push a label onto the operation-scope stack; returns whether the
    /// push happened (i.e. tracing or metrics is on), so RAII guards know
    /// whether to pop. See [`crate::Cluster::op`].
    pub fn push_op(&mut self, label: &str) -> bool {
        if self.trace.is_some() || self.metrics.is_some() || self.fault.is_some() {
            self.op_stack.push(label.to_string());
            true
        } else {
            false
        }
    }

    /// Pop the innermost operation-scope label.
    pub fn pop_op(&mut self) {
        self.op_stack.pop();
    }

    /// The current operation-scope path (`"(unlabeled)"` outside any
    /// scope).
    fn op_label(&self) -> String {
        if self.op_stack.is_empty() {
            "(unlabeled)".to_string()
        } else {
            self.op_stack.join("/")
        }
    }

    /// Whether any instrumentation (tracing or metrics) wants per-event
    /// received vectors from [`crate::Cluster::exchange`].
    pub fn instrumented(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Begin collecting metrics over `servers` physical servers.
    /// Idempotent, like [`CostTracker::enable_tracing`].
    pub fn enable_metrics(&mut self, servers: usize) {
        if self.metrics.is_none() {
            self.metrics = Some(MetricsLog::new(servers));
        }
    }

    /// Whether a metrics registry is collecting.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Physical-server dimension of the instrumentation (0 when neither
    /// tracing nor metrics is on).
    pub fn instrument_servers(&self) -> usize {
        self.trace_servers()
            .max(self.metrics.as_ref().map_or(0, |m| m.servers))
    }

    /// Record one communication event into the metrics registry:
    /// `received[s]` units arrived at physical server `s`. No-op when
    /// metrics are off.
    pub fn record_metrics_event(&mut self, kind: EventKind, received: &[u64]) {
        let label = self.op_label();
        if let Some(m) = &mut self.metrics {
            let counter = match kind {
                EventKind::Exchange => "events.exchange",
                EventKind::Broadcast => "events.broadcast",
            };
            m.record_event(counter, &label, received);
        }
    }

    /// Stop collecting metrics and hand back the finalized snapshot
    /// (ledger gauges and phase wall-clocks sampled now). `None` if
    /// metrics were never enabled.
    pub fn take_metrics(&mut self) -> Option<MetricsSnapshot> {
        let log = self.metrics.take()?;
        let now = Instant::now();
        let report = self.report();
        let gauges = vec![
            ("elapsed_ns".to_string(), report.elapsed.as_nanos() as f64),
            ("load".to_string(), report.load as f64),
            ("rounds".to_string(), report.rounds as f64),
            ("total_units".to_string(), report.total_units as f64),
        ];
        let phase_wall = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, (_, label, at))| {
                let until = self.phases.get(i + 1).map_or(now, |(_, _, next)| *next);
                (label.clone(), until.saturating_duration_since(*at))
            })
            .collect();
        Some(MetricsSnapshot {
            servers: log.servers,
            counters: log.counters.into_iter().collect(),
            gauges,
            per_primitive: log.per_primitive.into_iter().collect(),
            event_units: log.event_units,
            received: LoadSummary::of(&log.per_server),
            per_server: log.per_server,
            phase_wall,
        })
    }

    /// Install a fault plane driving seeded fault injection over
    /// `servers` physical servers. Idempotent, like
    /// [`CostTracker::enable_tracing`]: sub-clusters share this ledger
    /// and must not reset their parent's plane.
    pub fn install_faults(&mut self, plan: FaultPlan, servers: usize) {
        if self.fault.is_none() {
            self.fault = Some(FaultPlane::new(plan, servers));
        }
    }

    /// Whether a fault plane is installed.
    pub fn faults_installed(&self) -> bool {
        self.fault.is_some()
    }

    /// `Some((round, detail))` once the installed plane has given up on
    /// recovery; `None` while healthy (or when no plane is installed).
    pub fn fault_failed(&self) -> Option<(u64, String)> {
        self.fault
            .as_ref()
            .and_then(|p| p.report.unrecoverable.clone())
    }

    /// Uninstall the fault plane and hand back everything it did.
    /// `None` if no plane was ever installed.
    pub fn take_recovery(&mut self) -> Option<RecoveryReport> {
        self.fault.take().map(|p| p.report)
    }

    /// Run the fault plane's reliable-delivery simulation for one
    /// exchange of `n` messages at `round`; returns the wall-clock delay
    /// the round must absorb (stragglers + retry backoff). No-op
    /// `Duration::ZERO` when no plane is installed.
    ///
    /// Recovery actions are mirrored into the metrics registry (when
    /// enabled) under `fault.*` counters; the cost ledger is never
    /// touched — see [`crate::fault`] for why.
    pub fn fault_exchange(&mut self, round: u64, n: usize) -> Duration {
        if self.fault.is_none() {
            return Duration::ZERO;
        }
        let phase = self.current_phase();
        let label = self.op_label();
        let plane = self.fault.as_mut().expect("checked above");
        let before = fault_counters(&plane.report);
        let delays = plane.on_exchange(round, n, &phase, &label);
        let after = fault_counters(&plane.report);
        self.bump_fault_metrics(before, after);
        delays.total
    }

    /// Run the fault plane's transient local-compute fault simulation at
    /// `round`; returns the retry backoff delay to absorb. No-op when no
    /// plane is installed.
    pub fn fault_compute(&mut self, round: u64) -> Duration {
        if self.fault.is_none() {
            return Duration::ZERO;
        }
        let phase = self.current_phase();
        let label = self.op_label();
        let plane = self.fault.as_mut().expect("checked above");
        let before = fault_counters(&plane.report);
        let delays = plane.on_compute(round, &phase, &label);
        let after = fault_counters(&plane.report);
        self.bump_fault_metrics(before, after);
        delays.total
    }

    /// Mark the run unrecoverable for a reason outside the fault
    /// schedule (hardened contract violations report instead of
    /// panicking when a plane is installed). No-op without a plane.
    pub fn fault_poison(&mut self, round: u64, detail: String) {
        let phase = self.current_phase();
        let label = self.op_label();
        if let Some(plane) = &mut self.fault {
            plane.poison(round, &phase, &label, detail);
        }
    }

    fn bump_fault_metrics(&mut self, before: [u64; 6], after: [u64; 6]) {
        if let Some(m) = &mut self.metrics {
            const KEYS: [&str; 6] = [
                "fault.retries",
                "fault.messages_dropped",
                "fault.messages_duplicated",
                "fault.rounds_replayed",
                "fault.compute_retries",
                "fault.servers_lost",
            ];
            for (i, key) in KEYS.iter().enumerate() {
                if after[i] > before[i] {
                    m.bump(key, after[i] - before[i]);
                }
            }
        }
    }

    /// Snapshot the ledger and every instrumentation stream for a
    /// round-boundary checkpoint (see [`crate::Cluster::checkpoint`]).
    pub fn cursor(&self) -> LedgerCursor {
        LedgerCursor {
            cells: self.cells.clone(),
            max_round_used: self.max_round_used,
            total_units: self.total_units,
            phases: self.phases.clone(),
            trace_events: self.trace.as_ref().map_or(0, |t| t.events.len()),
            trace_compute: self.trace.as_ref().map_or(0, |t| t.compute.len()),
            metrics: self.metrics.clone(),
            fault: self.fault.clone(),
            op_stack: self.op_stack.clone(),
        }
    }

    /// Roll the ledger and instrumentation back to `cursor`. Everything
    /// credited, recorded, or drawn (fault-plane RNG included) since the
    /// matching [`CostTracker::cursor`] call is discarded, so a replay
    /// from the checkpoint re-produces the exact same stream.
    pub fn rollback(&mut self, cursor: LedgerCursor) {
        self.cells = cursor.cells;
        self.max_round_used = cursor.max_round_used;
        self.total_units = cursor.total_units;
        self.phases = cursor.phases;
        if let Some(t) = &mut self.trace {
            t.events.truncate(cursor.trace_events);
            t.compute.truncate(cursor.trace_compute);
        }
        self.metrics = cursor.metrics;
        self.fault = cursor.fault;
        self.op_stack = cursor.op_stack;
    }

    /// The phase an event recorded now would be attributed to.
    fn current_phase(&self) -> String {
        self.phases
            .last()
            .map_or_else(|| "(preamble)".to_string(), |(_, l, _)| l.clone())
    }

    /// Record one communication event from its physical-server traffic
    /// matrix. No-op when tracing is off or the event carried no units
    /// (mirroring the ledger, which ignores zero credits).
    pub fn record_event(&mut self, round: u64, kind: EventKind, traffic: Vec<Vec<u64>>) {
        let at = self.started.elapsed();
        let phase = self.current_phase();
        let label = self.op_label();
        if let Some(t) = &mut self.trace {
            let received: Vec<u64> = (0..t.servers)
                .map(|d| traffic.iter().map(|row| row[d]).sum())
                .collect();
            if received.iter().all(|&u| u == 0) {
                return;
            }
            t.events.push(TraceEvent {
                round,
                kind,
                label,
                phase,
                received,
                traffic,
                at,
            });
        }
    }

    /// Record a timed span of backend-executed local computation. No-op
    /// when neither tracing nor metrics is on.
    pub fn record_compute(&mut self, round: u64, tasks: usize, elapsed: Duration) {
        let phase = self.current_phase();
        let label = self.op_label();
        if let Some(m) = &mut self.metrics {
            m.bump("compute.spans", 1);
            m.bump("compute.tasks", tasks as u64);
        }
        if let Some(t) = &mut self.trace {
            t.compute.push(ComputeSpan {
                label,
                phase,
                round,
                tasks,
                elapsed,
            });
        }
    }

    /// Stop tracing and hand back the finalized [`Trace`] (ledger totals
    /// snapshotted now). `None` if tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let log = self.trace.take()?;
        Some(Trace {
            servers: log.servers,
            cost: self.report(),
            phases: self
                .phases
                .iter()
                .map(|(r, l, _)| (*r, l.clone()))
                .collect(),
            events: log.events,
            compute: log.compute,
            recovery: self
                .fault
                .as_ref()
                .map_or_else(Vec::new, |p| p.report.events.clone()),
        })
    }

    /// Per-phase summaries: for each labeled phase, the load / rounds /
    /// traffic of the half-open round span it covers. Rounds before the
    /// first mark are reported under `"(preamble)"` when they carry
    /// traffic.
    pub fn phase_reports(&self) -> Vec<PhaseReport> {
        let now = Instant::now();
        let mut spans: Vec<(u64, u64, String, Duration)> = Vec::new();
        if let Some((first, _, at)) = self.phases.first() {
            if *first > 0 {
                spans.push((
                    0,
                    *first,
                    "(preamble)".to_string(),
                    at.saturating_duration_since(self.started),
                ));
            }
        }
        for (i, (start, label, at)) in self.phases.iter().enumerate() {
            let (end, until) = self
                .phases
                .get(i + 1)
                .map_or((self.max_round_used, now), |(next, _, next_at)| {
                    (*next, *next_at)
                });
            spans.push((
                *start,
                end.max(*start),
                label.clone(),
                until.saturating_duration_since(*at),
            ));
        }
        spans
            .into_iter()
            .map(|(start, end, label, elapsed)| {
                let mut load = 0u64;
                let mut total = 0u64;
                for ((_, round), units) in &self.cells {
                    if *round >= start && *round < end {
                        load = load.max(*units);
                        total += units;
                    }
                }
                PhaseReport {
                    label,
                    span: (start, end),
                    cost: CostReport {
                        load,
                        rounds: end - start,
                        total_units: total,
                        elapsed,
                    },
                }
            })
            .collect()
    }
}

/// The fault-plane counters mirrored into metrics, in a fixed order
/// (retries, dropped, duplicated, replays, compute retries, crashes).
fn fault_counters(r: &RecoveryReport) -> [u64; 6] {
    [
        r.retries,
        r.messages_dropped,
        r.messages_duplicated,
        r.rounds_replayed,
        r.compute_retries,
        r.servers_lost.len() as u64,
    ]
}

/// An opaque snapshot of the ledger and all instrumentation streams
/// (trace/metrics cursors, fault-plane RNG state), taken at a round
/// boundary by [`CostTracker::cursor`] and restored by
/// [`CostTracker::rollback`]. Part of a [`crate::Checkpoint`].
#[derive(Clone, Debug)]
pub struct LedgerCursor {
    cells: HashMap<(usize, u64), u64>,
    max_round_used: u64,
    total_units: u64,
    phases: Vec<(u64, String, Instant)>,
    trace_events: usize,
    trace_compute: usize,
    metrics: Option<MetricsLog>,
    fault: Option<FaultPlane>,
    op_stack: Vec<String>,
}

/// One labeled phase of a run: its round span and the costs incurred in
/// it. Produced by [`CostTracker::phase_reports`] /
/// [`crate::Cluster::phase_reports`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// The label passed to [`crate::Cluster::mark_phase`] (or
    /// `"(preamble)"` for traffic before the first mark).
    pub label: String,
    /// Half-open global-round span `[start, end)` the phase covers.
    pub span: (u64, u64),
    /// Load / rounds / traffic incurred within the span, plus the phase's
    /// wall-clock duration.
    pub cost: CostReport,
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [rounds {}..{}): {}",
            self.label, self.span.0, self.span.1, self.cost
        )
    }
}

/// Summary of a finished (or in-progress) MPC execution.
#[derive(Clone, Copy, Debug)]
pub struct CostReport {
    /// The load `L`: max units received by any server in any round.
    pub load: u64,
    /// Rounds with at least one delivery.
    pub rounds: u64,
    /// Total units delivered.
    pub total_units: u64,
    /// Wall-clock time of the run — instrumentation only, excluded from
    /// equality: two runs with the same model costs compare equal no
    /// matter how long they took or which [`crate::exec::ExecBackend`]
    /// executed them.
    pub elapsed: Duration,
}

impl PartialEq for CostReport {
    fn eq(&self, other: &Self) -> bool {
        self.load == other.load
            && self.rounds == other.rounds
            && self.total_units == other.total_units
    }
}

impl Eq for CostReport {}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "load={} rounds={} total={}",
            self.load, self.rounds, self.total_units
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_accumulate_per_cell() {
        let mut t = CostTracker::default();
        t.credit(0, 0, 5);
        t.credit(0, 0, 3);
        t.credit(1, 0, 7);
        t.credit(0, 1, 2);
        assert_eq!(t.max_load(), 8);
        assert_eq!(t.rounds_used(), 2);
        assert_eq!(t.total_units(), 17);
        assert_eq!(t.server_total(0), 10);
    }

    #[test]
    fn zero_credit_is_free() {
        let mut t = CostTracker::default();
        t.credit(3, 9, 0);
        assert_eq!(t.max_load(), 0);
        assert_eq!(t.rounds_used(), 0);
    }

    #[test]
    fn phase_reports_partition_the_timeline() {
        let mut t = CostTracker::default();
        t.credit(0, 0, 2); // preamble
        t.mark_phase(1, "join");
        t.credit(0, 1, 5);
        t.credit(1, 2, 9);
        t.mark_phase(3, "aggregate");
        t.credit(0, 3, 4);
        let phases = t.phase_reports();
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].label, "(preamble)");
        assert_eq!(phases[0].cost.load, 2);
        assert_eq!(phases[0].span, (0, 1));
        assert_eq!(phases[1].label, "join");
        assert_eq!(phases[1].cost.load, 9);
        assert_eq!(phases[1].cost.total_units, 14);
        assert_eq!(phases[1].span, (1, 3));
        assert_eq!(phases[2].label, "aggregate");
        assert_eq!(phases[2].cost.load, 4);
        // Totals across phases cover everything.
        let sum: u64 = phases.iter().map(|p| p.cost.total_units).sum();
        assert_eq!(sum, t.total_units());
    }

    #[test]
    fn report_snapshot() {
        let mut t = CostTracker::default();
        t.credit(0, 0, 4);
        let r = t.report();
        assert_eq!(r.load, 4);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.total_units, 4);
        assert_eq!(r.to_string(), "load=4 rounds=1 total=4");
    }

    #[test]
    fn equality_ignores_elapsed() {
        let mut t = CostTracker::default();
        t.credit(0, 0, 4);
        let a = t.report();
        std::thread::sleep(Duration::from_millis(2));
        let b = t.report();
        assert!(b.elapsed > a.elapsed);
        assert_eq!(a, b);
    }

    #[test]
    fn phase_reports_carry_wall_clock() {
        let mut t = CostTracker::default();
        t.mark_phase(0, "only");
        t.credit(0, 0, 1);
        std::thread::sleep(Duration::from_millis(2));
        let phases = t.phase_reports();
        assert_eq!(phases.len(), 1);
        assert!(phases[0].cost.elapsed >= Duration::from_millis(2));
    }
}

//! The error type for fallible entry points of the simulator stack.
//!
//! The algorithms themselves run under validated invariants and keep
//! panicking on internal contract violations (a panic there is a bug, not
//! a user error); [`MpcError`] is for the *boundary* — query/instance
//! validation, plan selection, and schema lookups on untrusted input —
//! so that embedding applications (the CLI, services built on
//! `QueryEngine`) can report problems instead of aborting.

use crate::json::Json;
use mpcjoin_relation::Attr;
use std::fmt;

/// Schema tag of the structured error frame shared by the CLI's
/// `--format json` output and the serving wire protocol
/// (`mpcjoin-server`). It lives here — at the error type — because both
/// surfaces must emit byte-compatible frames without depending on each
/// other.
pub const ERROR_FRAME_SCHEMA: &str = "mpcjoin-wire-v1";

/// What went wrong at an engine boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// The instance does not match the query (wrong relation count or a
    /// schema that disagrees with its edge).
    InvalidInstance(String),
    /// A projection or key lookup referenced an attribute absent from the
    /// relation's schema.
    MissingAttr {
        /// The attribute that was requested.
        attr: Attr,
        /// Rendering of the schema it was looked up in.
        schema: String,
    },
    /// A forced plan cannot evaluate the given query shape.
    UnsupportedPlan(String),
    /// A fault-plan document (see [`crate::fault::FaultPlan`]) was
    /// malformed.
    InvalidFaultPlan(String),
    /// An installed fault plan exhausted the retry budget: the run
    /// completed no useful result and cannot be trusted. Carries the
    /// round the recovery gave up in.
    Unrecoverable {
        /// Global round at which recovery was abandoned.
        round: u64,
        /// Human-readable description of the terminal fault.
        detail: String,
    },
    /// An internal invariant was violated on a hardened path (reported
    /// instead of panicking when a fault plane is installed).
    Internal(String),
    /// A plan name from the wire (CLI `--plan`, server `plan` field) did
    /// not match any known strategy.
    UnknownPlan(String),
}

impl MpcError {
    /// A stable machine-readable code naming the failure mode. These are
    /// part of the wire protocol (`error` frames carry them verbatim) and
    /// of the CLI's `--format json` contract, so clients and CI can
    /// branch on *which* way a run failed without parsing prose.
    pub fn code(&self) -> &'static str {
        match self {
            MpcError::InvalidInstance(_) => "invalid_instance",
            MpcError::MissingAttr { .. } => "missing_attr",
            MpcError::UnsupportedPlan(_) => "unsupported_plan",
            MpcError::InvalidFaultPlan(_) => "invalid_fault_plan",
            MpcError::Unrecoverable { .. } => "unrecoverable",
            MpcError::Internal(_) => "internal",
            MpcError::UnknownPlan(_) => "unknown_plan",
        }
    }

    /// The structured error frame (schema [`ERROR_FRAME_SCHEMA`]):
    /// `{"schema":…,"type":"error","code":…,"detail":…}`. The serving
    /// layer extends this object with per-request fields (`id`,
    /// `retry_after_ms`); the CLI emits it as-is.
    pub fn to_error_frame(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(ERROR_FRAME_SCHEMA.into())),
            ("type".into(), Json::Str("error".into())),
            ("code".into(), Json::Str(self.code().into())),
            ("detail".into(), Json::Str(self.to_string())),
        ])
    }
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            MpcError::MissingAttr { attr, schema } => {
                write!(f, "attribute {attr} not in schema {schema}")
            }
            MpcError::UnsupportedPlan(msg) => write!(f, "unsupported plan: {msg}"),
            MpcError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            MpcError::Unrecoverable { round, detail } => {
                write!(f, "unrecoverable fault at round {round}: {detail}")
            }
            MpcError::Internal(msg) => write!(f, "internal error: {msg}"),
            MpcError::UnknownPlan(msg) => write!(f, "unknown plan: {msg}"),
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = MpcError::InvalidInstance("3 relations for 2 edges".into());
        assert!(e.to_string().contains("invalid instance"));
        let e = MpcError::MissingAttr {
            attr: Attr(7),
            schema: "(x0, x1)".into(),
        };
        assert!(e.to_string().contains("x7"));
        let e = MpcError::UnsupportedPlan("Star forced on a line query".into());
        assert!(e.to_string().contains("unsupported plan"));
        let e = MpcError::InvalidFaultPlan("missing `faults`".into());
        assert!(e.to_string().contains("invalid fault plan"));
        let e = MpcError::Unrecoverable {
            round: 4,
            detail: "3 messages undelivered".into(),
        };
        assert!(e.to_string().contains("round 4"));
        let e = MpcError::Internal("slot poisoned".into());
        assert!(e.to_string().contains("internal error"));
        let e = MpcError::UnknownPlan("`fast` is not a plan".into());
        assert!(e.to_string().contains("unknown plan"));
    }

    #[test]
    fn codes_are_distinct_and_stable() {
        let variants = [
            MpcError::InvalidInstance(String::new()),
            MpcError::MissingAttr {
                attr: Attr(0),
                schema: String::new(),
            },
            MpcError::UnsupportedPlan(String::new()),
            MpcError::InvalidFaultPlan(String::new()),
            MpcError::Unrecoverable {
                round: 0,
                detail: String::new(),
            },
            MpcError::Internal(String::new()),
            MpcError::UnknownPlan(String::new()),
        ];
        let codes: Vec<&str> = variants.iter().map(MpcError::code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), variants.len(), "codes must be distinct");
        assert_eq!(codes[0], "invalid_instance");
        assert_eq!(codes[4], "unrecoverable");
    }

    #[test]
    fn error_frame_is_schema_tagged_json() {
        let e = MpcError::UnsupportedPlan("Star forced on a line query".into());
        let frame = e.to_error_frame();
        assert_eq!(
            frame.get("schema").and_then(Json::as_str),
            Some(ERROR_FRAME_SCHEMA)
        );
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            frame.get("code").and_then(Json::as_str),
            Some("unsupported_plan")
        );
        let text = frame.to_string_compact().expect("finite");
        let back = Json::parse(&text).expect("frame round-trips");
        assert_eq!(back, frame);
    }
}

//! The error type for fallible entry points of the simulator stack.
//!
//! The algorithms themselves run under validated invariants and keep
//! panicking on internal contract violations (a panic there is a bug, not
//! a user error); [`MpcError`] is for the *boundary* — query/instance
//! validation, plan selection, and schema lookups on untrusted input —
//! so that embedding applications (the CLI, services built on
//! `QueryEngine`) can report problems instead of aborting.

use mpcjoin_relation::Attr;
use std::fmt;

/// What went wrong at an engine boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// The instance does not match the query (wrong relation count or a
    /// schema that disagrees with its edge).
    InvalidInstance(String),
    /// A projection or key lookup referenced an attribute absent from the
    /// relation's schema.
    MissingAttr {
        /// The attribute that was requested.
        attr: Attr,
        /// Rendering of the schema it was looked up in.
        schema: String,
    },
    /// A forced plan cannot evaluate the given query shape.
    UnsupportedPlan(String),
    /// A fault-plan document (see [`crate::fault::FaultPlan`]) was
    /// malformed.
    InvalidFaultPlan(String),
    /// An installed fault plan exhausted the retry budget: the run
    /// completed no useful result and cannot be trusted. Carries the
    /// round the recovery gave up in.
    Unrecoverable {
        /// Global round at which recovery was abandoned.
        round: u64,
        /// Human-readable description of the terminal fault.
        detail: String,
    },
    /// An internal invariant was violated on a hardened path (reported
    /// instead of panicking when a fault plane is installed).
    Internal(String),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            MpcError::MissingAttr { attr, schema } => {
                write!(f, "attribute {attr} not in schema {schema}")
            }
            MpcError::UnsupportedPlan(msg) => write!(f, "unsupported plan: {msg}"),
            MpcError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            MpcError::Unrecoverable { round, detail } => {
                write!(f, "unrecoverable fault at round {round}: {detail}")
            }
            MpcError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = MpcError::InvalidInstance("3 relations for 2 edges".into());
        assert!(e.to_string().contains("invalid instance"));
        let e = MpcError::MissingAttr {
            attr: Attr(7),
            schema: "(x0, x1)".into(),
        };
        assert!(e.to_string().contains("x7"));
        let e = MpcError::UnsupportedPlan("Star forced on a line query".into());
        assert!(e.to_string().contains("unsupported plan"));
        let e = MpcError::InvalidFaultPlan("missing `faults`".into());
        assert!(e.to_string().contains("invalid fault plan"));
        let e = MpcError::Unrecoverable {
            round: 4,
            detail: "3 messages undelivered".into(),
        };
        assert!(e.to_string().contains("round 4"));
        let e = MpcError::Internal("slot poisoned".into());
        assert!(e.to_string().contains("internal error"));
    }
}

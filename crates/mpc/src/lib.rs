//! An instrumented simulator for the Massively Parallel Computation (MPC)
//! model of Hu & Yi (PODS 2020), §1.3.
//!
//! The MPC model has `p` servers on a complete network computing in
//! synchronous rounds; the complexity of an algorithm is its round count
//! (required to be `O(1)`) and its *load* `L` — the maximum message volume
//! received by any server in any round, with one tuple / semiring element /
//! machine word costing one unit. This crate executes such algorithms
//! faithfully and *measures* `L` exactly:
//!
//! * [`Cluster`] — `p` logical servers on a shared round timeline and cost
//!   ledger; [`Cluster::exchange`] is the sole data-movement operation and
//!   the unit of both rounds and cost; [`Cluster::split`] models the
//!   paper's "allocate `p_i` servers to subproblem `i`" parallel regions,
//! * [`Distributed`] — per-server local state, manipulated freely by local
//!   Rust code (local computation is uncosted, as in the model),
//! * [`CostReport`] — the measured `(load, rounds, total traffic)`,
//! * [`trace`] — opt-in round-level execution tracing
//!   ([`Cluster::enable_tracing`]): per-exchange traffic matrices,
//!   primitive/phase labels, and wall-clock compute spans, with a JSON
//!   export; zero-cost when off,
//! * [`metrics`] — opt-in aggregate metrics ([`Cluster::enable_metrics`]):
//!   counters, ledger gauges, log₂ histograms of per-primitive exchange
//!   volumes, and the per-server received-load distribution
//!   (p50/p95/max/skew); like tracing, never perturbs the ledger,
//! * [`fault`] — opt-in deterministic fault injection and recovery
//!   ([`Cluster::install_faults`]): seeded crash-stop failures, message
//!   drop/duplication/reordering, stragglers, and transient compute
//!   faults, recovered by a simulated reliable-delivery layer with
//!   round-boundary checkpoints ([`Cluster::checkpoint`]); a recovered
//!   run's output and ledger are bit-identical to the fault-free run,
//! * [`primitives`] — the §2.1 toolbox: sorting, reduce-by-key,
//!   multi-search, prefix sums, parallel-packing,
//! * [`DistRelation`] — annotated relations partitioned over a cluster,
//!   with skew-proof distributed semijoin / aggregation / statistics,
//! * [`join`] — the worst-case optimal two-way join of §1.4's references
//!   [5, 13], the building block the paper's baseline plugs into
//!   Yannakakis.
//!
//! The simulator is deterministic (stable hashing, explicit tiebreaks),
//! so measured loads are exactly reproducible. Per-server *local*
//! computation can optionally run on a thread pool (see [`exec`]); the
//! execution backend changes wall-clock time only, never results or
//! measured costs.
//!
//! ```
//! use mpcjoin_mpc::Cluster;
//!
//! let mut cluster = Cluster::new(4);
//! let data = cluster.scatter_initial((0..100u64).collect::<Vec<_>>());
//! // Route every item to the server its value hashes to (one round).
//! let outboxes = data
//!     .into_parts()
//!     .into_iter()
//!     .map(|local| local.into_iter().map(|v| ((v % 4) as usize, v)).collect())
//!     .collect();
//! let routed = cluster.exchange(outboxes);
//! assert_eq!(routed.total_len(), 100);
//! let report = cluster.report();
//! assert_eq!(report.rounds, 1);
//! assert_eq!(report.load, 25); // perfectly balanced here
//! ```

mod cluster;
mod cost;
pub mod drel;
mod error;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod join;
pub mod json;
pub mod metrics;
pub mod primitives;
pub mod rng;
pub mod trace;

pub use cluster::{Checkpoint, Cluster, Distributed, OpScope};
pub use cost::{CostReport, CostTracker, LedgerCursor, PhaseReport};
pub use drel::DistRelation;
pub use error::{MpcError, ERROR_FRAME_SCHEMA};
pub use exec::{ExecBackend, SerialBackend, ThreadPoolBackend};
pub use fault::{
    FaultKind, FaultPlan, FaultSpec, RecoveryEvent, RecoveryKind, RecoveryReport, RetryPolicy,
};
pub use metrics::{LoadSummary, LogHistogram, MetricsSnapshot};
pub use rng::DetRng;
pub use trace::{CriticalCell, Trace, TraceBreakdown, TraceEvent, TraceReport};

//! The simulated MPC cluster.

use std::sync::Arc;
use std::time::Instant;

use crate::cost::{CostReport, CostTracker, LedgerCursor, PhaseReport, SharedTracker};
use crate::exec::{self, ExecBackend};
use crate::fault::{FaultPlan, RecoveryReport};
use crate::metrics::MetricsSnapshot;
use crate::trace::{EventKind, Trace};

/// Data distributed across the servers of one [`Cluster`]: `data[i]` is the
/// local state of logical server `i`.
///
/// `Distributed` values are plain vectors — local computation (mapping,
/// sorting, joining in place) is free in the MPC cost model and is done by
/// ordinary Rust code over `data[i]`. The only way data *moves between
/// servers* is [`Cluster::exchange`], which is costed.
#[derive(Clone, Debug)]
pub struct Distributed<T> {
    data: Vec<Vec<T>>,
}

impl<T> Distributed<T> {
    /// Per-server empty state for a cluster of `p` servers.
    pub fn empty(p: usize) -> Self {
        Distributed {
            data: (0..p).map(|_| Vec::new()).collect(),
        }
    }

    /// Wrap existing per-server vectors.
    pub fn from_parts(data: Vec<Vec<T>>) -> Self {
        Distributed { data }
    }

    /// Number of logical servers.
    pub fn servers(&self) -> usize {
        self.data.len()
    }

    /// Local state of server `i`.
    pub fn local(&self, i: usize) -> &Vec<T> {
        &self.data[i]
    }

    /// Mutable local state of server `i`.
    pub fn local_mut(&mut self, i: usize) -> &mut Vec<T> {
        &mut self.data[i]
    }

    /// Iterate `(server, local state)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Vec<T>)> {
        self.data.iter().enumerate()
    }

    /// Total items across all servers.
    pub fn total_len(&self) -> usize {
        self.data.iter().map(Vec::len).sum()
    }

    /// Max items on any single server (a storage skew diagnostic).
    pub fn max_local_len(&self) -> usize {
        self.data.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Storage skew: `max_local_len / mean_local_len`. `1.0` is perfectly
    /// balanced; large values flag hot servers. Empty data reports `1.0`.
    pub fn skew(&self) -> f64 {
        let total = self.total_len();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.servers().max(1) as f64;
        self.max_local_len() as f64 / mean
    }

    /// Apply `f` to every item locally (free: no communication).
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Distributed<U> {
        Distributed {
            data: self
                .data
                .into_iter()
                .map(|v| v.into_iter().map(&mut f).collect())
                .collect(),
        }
    }

    /// Apply a per-server transformation locally (free).
    pub fn map_local<U>(self, mut f: impl FnMut(usize, Vec<T>) -> Vec<U>) -> Distributed<U> {
        Distributed {
            data: self
                .data
                .into_iter()
                .enumerate()
                .map(|(i, v)| f(i, v))
                .collect(),
        }
    }

    /// [`Distributed::map`] on the cluster's execution backend: servers'
    /// local work runs concurrently, results merge in server order, so the
    /// output is identical to `map` for any backend and thread count.
    pub fn par_map<U, F>(self, cluster: &Cluster, f: F) -> Distributed<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.par_map_local(cluster, |_, local| local.into_iter().map(&f).collect())
    }

    /// [`Distributed::map_local`] on the cluster's execution backend.
    ///
    /// The closure must be pure local computation: it sees one server's
    /// data at a time and must not touch the cluster (all exchanges stay
    /// on the driver thread). Output slot `i` is `f(i, local_i)` exactly
    /// as with `map_local` — determinism is independent of scheduling.
    pub fn par_map_local<U, F>(self, cluster: &Cluster, f: F) -> Distributed<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, Vec<T>) -> Vec<U> + Sync,
    {
        Distributed {
            data: cluster.par_map_parts(self.data, f),
        }
    }

    /// Collect every item into one vector, in server order.
    ///
    /// **Inspection only** — this models the experimenter reading results
    /// off the cluster, not a cluster operation, and is therefore uncosted.
    /// Algorithms must never use it to move data.
    pub fn collect_all(self) -> Vec<T> {
        self.data.into_iter().flatten().collect()
    }

    /// Consume into per-server vectors.
    pub fn into_parts(self) -> Vec<Vec<T>> {
        self.data
    }

    /// Re-index a sub-cluster's local data into its parent's logical space:
    /// child server `j` corresponds to parent server `(base + j) % parent_p`
    /// (the layout [`Cluster::split`] uses). Wrapped slots concatenate.
    /// Purely a view change — no communication.
    pub fn reindexed(self, parent_p: usize, base: usize) -> Distributed<T> {
        let mut parts: Vec<Vec<T>> = (0..parent_p).map(|_| Vec::new()).collect();
        for (j, local) in self.data.into_iter().enumerate() {
            parts[(base + j) % parent_p].extend(local);
        }
        Distributed { data: parts }
    }
}

/// A (sub-)cluster of `p` logical servers bound to a shared cost ledger and
/// a global round timeline.
///
/// The top-level cluster is created with [`Cluster::new`]; the paper's
/// "allocate `p_i` servers to subproblem `i`, all running in parallel"
/// steps are modelled with [`Cluster::split`] / [`Cluster::join_parallel`]:
/// children execute one after another in simulation, but their exchanges
/// are credited on the *same* round timeline starting at the parent's
/// cursor, so the measured load is exactly that of a parallel execution.
///
/// Logical servers map onto physical servers `0..p_total`; when callers
/// allocate more logical servers than exist physically (the paper's
/// analyses allocate `c·p` for small constants `c`), the mapping wraps
/// around and the overlapping loads add up — keeping constant-factor
/// oversubscription visible in the measurements instead of hiding it.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Physical server id of each logical server.
    phys: Vec<usize>,
    /// Current round cursor on the global timeline.
    round: u64,
    tracker: SharedTracker,
    /// How per-server local computation is executed (serial or thread
    /// pool). Affects wall-clock time only — never results or costs.
    backend: Arc<dyn ExecBackend>,
}

impl Cluster {
    /// A fresh top-level cluster of `p ≥ 1` physical servers, using the
    /// process-default execution backend (serial unless a binary opted in
    /// via [`exec::set_default_threads`]).
    pub fn new(p: usize) -> Self {
        Cluster::with_backend(p, exec::default_backend())
    }

    /// A fresh cluster executing local computation on `threads` workers.
    pub fn with_threads(p: usize, threads: usize) -> Self {
        Cluster::with_backend(p, exec::backend_for_threads(threads))
    }

    /// A fresh cluster on an explicit execution backend.
    pub fn with_backend(p: usize, backend: Arc<dyn ExecBackend>) -> Self {
        assert!(p >= 1, "a cluster needs at least one server");
        Cluster {
            phys: (0..p).collect(),
            round: 0,
            tracker: CostTracker::shared(),
            backend,
        }
    }

    /// The execution backend local computation runs on.
    pub fn backend(&self) -> &dyn ExecBackend {
        self.backend.as_ref()
    }

    /// Worker threads the backend uses (1 = serial).
    pub fn threads(&self) -> usize {
        self.backend.threads()
    }

    /// Run `task(i)` for every `i < n` on the execution backend and
    /// collect results in index order. `task` must be pure local
    /// computation (no cluster access — exchanges stay on the driver
    /// thread), which is what makes results backend-independent.
    ///
    /// When tracing is on, the span's wall clock is recorded as a
    /// [`crate::trace::ComputeSpan`] under the current operation scope.
    pub fn par_run<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.absorb_compute_faults();
        if !self.instrumented() {
            return exec::par_run(self.backend.as_ref(), n, task);
        }
        let start = Instant::now();
        let out = exec::par_run(self.backend.as_ref(), n, task);
        self.tracker
            .borrow_mut()
            .record_compute(self.round, n, start.elapsed());
        out
    }

    /// Transform per-server parts on the execution backend (slot `i`
    /// becomes `f(i, parts[i])`), timing the span when tracing is on.
    pub fn par_map_parts<T, U, F>(&self, parts: Vec<Vec<T>>, f: F) -> Vec<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(usize, Vec<T>) -> Vec<U> + Sync,
    {
        self.absorb_compute_faults();
        if !self.instrumented() {
            return exec::par_map_parts(self.backend.as_ref(), parts, f);
        }
        let n = parts.len();
        let start = Instant::now();
        let out = exec::par_map_parts(self.backend.as_ref(), parts, f);
        self.tracker
            .borrow_mut()
            .record_compute(self.round, n, start.elapsed());
        out
    }

    /// Consume per-server parts into one result each on the execution
    /// backend (slot `i` becomes `f(i, parts[i])`), timing the span when
    /// tracing is on.
    pub fn par_consume<T, R, F>(&self, parts: Vec<Vec<T>>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, Vec<T>) -> R + Sync,
    {
        self.absorb_compute_faults();
        if !self.instrumented() {
            return exec::par_consume_parts(self.backend.as_ref(), parts, f);
        }
        let n = parts.len();
        let start = Instant::now();
        let out = exec::par_consume_parts(self.backend.as_ref(), parts, f);
        self.tracker
            .borrow_mut()
            .record_compute(self.round, n, start.elapsed());
        out
    }

    /// Number of logical servers in this (sub-)cluster.
    pub fn p(&self) -> usize {
        self.phys.len()
    }

    /// Current round cursor.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Snapshot of the whole run's cost (shared across sub-clusters).
    pub fn report(&self) -> CostReport {
        self.tracker.borrow().report()
    }

    /// Open a labeled cost phase at the current round; subsequent traffic
    /// is attributed to it until the next mark. See
    /// [`Cluster::phase_reports`].
    pub fn mark_phase(&mut self, label: &str) {
        self.tracker.borrow_mut().mark_phase(self.round, label);
    }

    /// Per-phase cost summaries for the whole run (labels from
    /// [`Cluster::mark_phase`]).
    pub fn phase_reports(&self) -> Vec<PhaseReport> {
        self.tracker.borrow().phase_reports()
    }

    /// Start recording an execution trace on this cluster's ledger (see
    /// [`crate::trace`]). Call on the top-level cluster *before* running
    /// an algorithm so every exchange is captured; sub-clusters created by
    /// [`Cluster::split`] share the recording. Idempotent.
    pub fn enable_tracing(&mut self) {
        let servers = self.phys.iter().copied().max().map_or(1, |m| m + 1);
        self.tracker.borrow_mut().enable_tracing(servers);
    }

    /// Whether this cluster's ledger is recording a trace.
    pub fn tracing_enabled(&self) -> bool {
        self.tracker.borrow().tracing_enabled()
    }

    /// Stop tracing and return the finalized [`Trace`] (`None` if tracing
    /// was never enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracker.borrow_mut().take_trace()
    }

    /// Start collecting metrics on this cluster's ledger (see
    /// [`crate::metrics`]). Like tracing, call on the top-level cluster
    /// before running an algorithm; sub-clusters share the registry.
    /// Idempotent, off by default, and — pinned by tests — invisible in
    /// the [`CostReport`] ledger.
    pub fn enable_metrics(&mut self) {
        let servers = self.phys.iter().copied().max().map_or(1, |m| m + 1);
        self.tracker.borrow_mut().enable_metrics(servers);
    }

    /// Whether this cluster's ledger is collecting metrics.
    pub fn metrics_enabled(&self) -> bool {
        self.tracker.borrow().metrics_enabled()
    }

    /// Stop collecting metrics and return the finalized snapshot (`None`
    /// if metrics were never enabled).
    pub fn take_metrics(&mut self) -> Option<MetricsSnapshot> {
        self.tracker.borrow_mut().take_metrics()
    }

    /// Whether any instrumentation (tracing or metrics) is active.
    fn instrumented(&self) -> bool {
        self.tracker.borrow().instrumented()
    }

    /// Install a deterministic fault plane on this cluster's ledger (see
    /// [`crate::fault`]). Like tracing and metrics, call on the top-level
    /// cluster before running an algorithm; sub-clusters created by
    /// [`Cluster::split`] share the plane (and its seeded draw stream).
    /// Idempotent, off by default, and — pinned by tests — invisible in
    /// the [`CostReport`] ledger: recovery overhead is accounted in the
    /// [`RecoveryReport`] and in wall-clock spans only.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let servers = self.phys.iter().copied().max().map_or(1, |m| m + 1);
        self.tracker.borrow_mut().install_faults(plan, servers);
    }

    /// Whether a fault plane is installed on this cluster's ledger.
    pub fn faults_installed(&self) -> bool {
        self.tracker.borrow().faults_installed()
    }

    /// `Some((round, detail))` once the installed fault plane has
    /// exhausted its retry budget; `None` while recovery is holding (or
    /// when no plane is installed). Callers running algorithms directly
    /// on a cluster should check this after the run and refuse to trust
    /// the output when it is `Some` — `QueryEngine` does this and
    /// returns [`crate::MpcError::Unrecoverable`].
    pub fn recovery_failed(&self) -> Option<(u64, String)> {
        self.tracker.borrow().fault_failed()
    }

    /// Uninstall the fault plane and return everything it did (`None` if
    /// no plane was ever installed).
    pub fn take_recovery(&mut self) -> Option<RecoveryReport> {
        self.tracker.borrow_mut().take_recovery()
    }

    /// Snapshot this cluster's round cursor, the given per-server state,
    /// and every shared ledger/instrumentation stream (cost cells, trace
    /// and metrics cursors, fault-plane RNG) into a round-boundary
    /// [`Checkpoint`]. Restoring it with [`Cluster::restore`] rewinds the
    /// simulation to this exact point, so a replayed round re-produces
    /// bit-identical deliveries, credits, and fault draws.
    pub fn checkpoint<T: Clone>(&self, state: &Distributed<T>) -> Checkpoint<T> {
        Checkpoint {
            round: self.round,
            state: state.clone(),
            cursor: self.tracker.borrow().cursor(),
        }
    }

    /// Rewind this cluster (round cursor, shared ledger, instrumentation,
    /// fault plane) to `checkpoint` and hand back the state captured in
    /// it. Everything simulated after the matching
    /// [`Cluster::checkpoint`] call is discarded.
    pub fn restore<T>(&mut self, checkpoint: Checkpoint<T>) -> Distributed<T> {
        self.tracker.borrow_mut().rollback(checkpoint.cursor);
        self.round = checkpoint.round;
        checkpoint.state
    }

    /// Run the fault plane's transient-compute simulation (no-op without
    /// a plane) and absorb any retry backoff outside the tracker borrow.
    fn absorb_compute_faults(&self) {
        let delay = self.tracker.borrow_mut().fault_compute(self.round);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Open a named operation scope for trace/metrics labeling; the scope
    /// closes when the returned guard drops. Scopes nest — an event
    /// recorded inside `op("semijoin")` → `op("sort")` is labeled
    /// `"semijoin/sort"`. Free when neither tracing nor metrics is on.
    #[must_use = "the scope closes when the guard drops; bind it with `let _op = …`"]
    pub fn op(&self, label: &str) -> OpScope {
        let pushed = self.tracker.borrow_mut().push_op(label);
        OpScope {
            tracker: pushed.then(|| self.tracker.clone()),
        }
    }

    /// The exchange: deliver `outboxes[src] = [(dest, item), …]` and charge
    /// each destination for what it receives. Consumes one round.
    ///
    /// `dest` is a logical server index in this cluster. Items are
    /// delivered in `(src, position)` order, making simulations fully
    /// deterministic.
    pub fn exchange<T>(&mut self, outboxes: Vec<Vec<(usize, T)>>) -> Distributed<T> {
        assert_eq!(
            outboxes.len(),
            self.p(),
            "one outbox per logical server required"
        );
        // Fault plane first (no-op Duration::ZERO without one): the
        // reliable-delivery simulation decides what the transport had to
        // do — retransmissions, dedup, crash replays — over this round's
        // message sequence, and returns the wall-clock delay to absorb
        // (stragglers, retry backoff). The committed delivery below is
        // the faithful one in all cases: a recovered round delivers the
        // exact fault-free sequence, which is why output and ledger are
        // bit-identical under faults. The sleep happens outside the
        // tracker borrow.
        let n_messages: usize = outboxes.iter().map(Vec::len).sum();
        let fault_delay = self
            .tracker
            .borrow_mut()
            .fault_exchange(self.round, n_messages);
        if !fault_delay.is_zero() {
            std::thread::sleep(fault_delay);
        }
        let mut inboxes: Vec<Vec<T>> = (0..self.p()).map(|_| Vec::new()).collect();
        {
            let mut tracker = self.tracker.borrow_mut();
            // With a fault plane installed, a corrupted destination is
            // reported through the plane (the run becomes unrecoverable)
            // instead of aborting the process; without one it stays the
            // hard contract violation it always was.
            let hardened = tracker.faults_installed();
            let p = self.p();
            let round = self.round;
            let check_dest = |tracker: &mut CostTracker, dest: usize| -> bool {
                if dest < p {
                    return true;
                }
                if hardened {
                    tracker.fault_poison(
                        round,
                        format!("exchange destination {dest} out of range for {p} servers"),
                    );
                    return false;
                }
                panic!("destination {dest} out of range");
            };
            if tracker.instrumented() {
                // Instrumented path (tracing and/or metrics): build the
                // physical traffic matrix, then credit each destination
                // its column sum. u64 addition is commutative, so the
                // ledger cells — and every CostReport derived from them —
                // are identical to the uninstrumented path.
                let n = tracker.instrument_servers();
                let mut traffic = vec![vec![0u64; n]; n];
                for (src, outbox) in outboxes.into_iter().enumerate() {
                    let src_phys = self.phys[src];
                    for (dest, item) in outbox {
                        if !check_dest(&mut tracker, dest) {
                            continue;
                        }
                        traffic[src_phys][self.phys[dest]] += 1;
                        inboxes[dest].push(item);
                    }
                }
                let received: Vec<u64> = (0..n)
                    .map(|d| traffic.iter().map(|row| row[d]).sum())
                    .collect();
                for (dest_phys, &units) in received.iter().enumerate() {
                    tracker.credit(dest_phys, self.round, units);
                }
                tracker.record_metrics_event(EventKind::Exchange, &received);
                tracker.record_event(self.round, EventKind::Exchange, traffic);
            } else {
                for outbox in outboxes {
                    for (dest, item) in outbox {
                        if !check_dest(&mut tracker, dest) {
                            continue;
                        }
                        tracker.credit(self.phys[dest], self.round, 1);
                        inboxes[dest].push(item);
                    }
                }
            }
        }
        self.round += 1;
        Distributed::from_parts(inboxes)
    }

    /// Deliver every item of every server to **all** servers (used for the
    /// paper's "broadcast R1 to all servers" steps on tiny relations).
    /// Each server pays the full item count. Consumes one round.
    pub fn broadcast<T: Clone>(&mut self, data: &Distributed<T>) -> Distributed<T> {
        let items: Vec<T> = data.iter().flat_map(|(_, v)| v.iter().cloned()).collect();
        let units = items.len() as u64;
        // Broadcast rides the same reliable-delivery layer as exchange:
        // one message per (item, destination) pair.
        let fault_delay = self
            .tracker
            .borrow_mut()
            .fault_exchange(self.round, items.len() * self.p());
        if !fault_delay.is_zero() {
            std::thread::sleep(fault_delay);
        }
        {
            let mut tracker = self.tracker.borrow_mut();
            for dest in 0..self.p() {
                tracker.credit(self.phys[dest], self.round, units);
            }
            if tracker.instrumented() {
                // Every logical server ships its local items to every
                // logical destination; column sums reproduce the per-dest
                // credits above (oversubscribed slots stack, as charged).
                let n = tracker.instrument_servers();
                let mut traffic = vec![vec![0u64; n]; n];
                for (src, local) in data.iter() {
                    for dest in 0..self.p() {
                        traffic[self.phys[src]][self.phys[dest]] += local.len() as u64;
                    }
                }
                let received: Vec<u64> = (0..n)
                    .map(|d| traffic.iter().map(|row| row[d]).sum())
                    .collect();
                tracker.record_metrics_event(EventKind::Broadcast, &received);
                tracker.record_event(self.round, EventKind::Broadcast, traffic);
            }
        }
        self.round += 1;
        Distributed::from_parts((0..self.p()).map(|_| items.clone()).collect())
    }

    /// Initial placement of input data: round-robin, `⌈n/p⌉` per server.
    ///
    /// Models §1.3's "data is initially distributed across `p` servers with
    /// each server holding `N/p` tuples"; it is the *starting state*, not a
    /// cluster operation, and is uncosted.
    pub fn scatter_initial<T>(&self, items: Vec<T>) -> Distributed<T> {
        let mut data: Vec<Vec<T>> = (0..self.p()).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            data[i % self.p()].push(item);
        }
        Distributed::from_parts(data)
    }

    /// Place each item on the chosen logical server without cost.
    ///
    /// **For adversarial test setups only** (e.g. the lower-bound instances
    /// of Theorems 2–3 prescribe an initial distribution); algorithms must
    /// use [`Cluster::exchange`] to move data.
    pub fn place_initial<T>(&self, items: Vec<(usize, T)>) -> Distributed<T> {
        let mut data: Vec<Vec<T>> = (0..self.p()).map(|_| Vec::new()).collect();
        for (dest, item) in items {
            data[dest % self.p()].push(item);
        }
        Distributed::from_parts(data)
    }

    /// Carve the cluster into sub-clusters of the given sizes, all starting
    /// at this cluster's round cursor and sharing its ledger.
    ///
    /// Logical slots are dealt out contiguously and wrap around the
    /// physical servers modulo `p` when `sizes` sums past `p` (honest
    /// oversubscription, see the type-level docs).
    pub fn split(&self, sizes: &[usize]) -> Vec<Cluster> {
        self.split_with_offsets(sizes).0
    }

    /// [`Cluster::split`], additionally returning each child's base offset
    /// in this cluster's logical server space — children occupy logical
    /// servers `(offset + j) % p` for `j < size`, which parent-level
    /// exchanges can target directly.
    pub fn split_with_offsets(&self, sizes: &[usize]) -> (Vec<Cluster>, Vec<usize>) {
        let mut out = Vec::with_capacity(sizes.len());
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for &size in sizes {
            assert!(size >= 1, "sub-cluster must have at least one server");
            let phys = (0..size)
                .map(|j| self.phys[(offset + j) % self.phys.len()])
                .collect();
            out.push(Cluster {
                phys,
                round: self.round,
                tracker: self.tracker.clone(),
                backend: self.backend.clone(),
            });
            offsets.push(offset);
            offset += size;
        }
        (out, offsets)
    }

    /// Re-synchronize after parallel sub-cluster work: advance this
    /// cluster's cursor to the furthest round any child consumed.
    pub fn join_parallel(&mut self, children: &[Cluster]) {
        for c in children {
            self.round = self.round.max(c.round);
        }
    }

    /// Advance the cursor by `n` rounds without traffic (used to keep
    /// conditional branches round-aligned when required).
    pub fn skip_rounds(&mut self, n: u64) {
        self.round += n;
    }
}

/// A round-boundary snapshot of a simulation: the cluster's round
/// cursor, per-server state, and an opaque [`LedgerCursor`] covering the
/// shared cost ledger, trace/metrics cursors, and the fault plane's RNG
/// stream. Produced by [`Cluster::checkpoint`], consumed by
/// [`Cluster::restore`]; replaying from a checkpoint re-produces the
/// exact same simulation (deliveries, credits, and fault draws included).
#[derive(Clone, Debug)]
pub struct Checkpoint<T> {
    round: u64,
    state: Distributed<T>,
    cursor: LedgerCursor,
}

impl<T> Checkpoint<T> {
    /// The global round the checkpoint was taken at.
    pub fn round(&self) -> u64 {
        self.round
    }
}

/// RAII guard for an instrumentation labeling scope, returned by
/// [`Cluster::op`]; dropping it closes the scope. Holds nothing when
/// neither tracing nor metrics is enabled.
#[derive(Debug)]
pub struct OpScope {
    tracker: Option<SharedTracker>,
}

impl Drop for OpScope {
    fn drop(&mut self) {
        if let Some(tracker) = &self.tracker {
            tracker.borrow_mut().pop_op();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_and_charges() {
        let mut c = Cluster::new(3);
        // Server 0 sends two items to server 2; server 1 sends one to 0.
        let out = vec![vec![(2, "a"), (2, "b")], vec![(0, "c")], vec![]];
        let d = c.exchange(out);
        assert_eq!(d.local(2), &vec!["a", "b"]);
        assert_eq!(d.local(0), &vec!["c"]);
        let r = c.report();
        assert_eq!(r.load, 2);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.total_units, 3);
    }

    #[test]
    fn broadcast_charges_every_server() {
        let mut c = Cluster::new(4);
        let d = c.scatter_initial(vec![1, 2, 3]);
        let b = c.broadcast(&d);
        for i in 0..4 {
            assert_eq!(b.local(i), &vec![1, 2, 3]);
        }
        assert_eq!(c.report().load, 3);
        assert_eq!(c.report().total_units, 12);
    }

    #[test]
    fn scatter_initial_is_balanced_and_free() {
        let c = Cluster::new(4);
        let d = c.scatter_initial((0..10).collect::<Vec<_>>());
        assert_eq!(d.max_local_len(), 3);
        assert_eq!(d.total_len(), 10);
        assert_eq!(c.report().total_units, 0);
    }

    #[test]
    fn split_shares_timeline_and_ledger() {
        let mut parent = Cluster::new(4);
        let mut children = parent.split(&[2, 2]);
        // Both children exchange once, in "parallel": loads land on the
        // same global round, on disjoint physical servers.
        for child in &mut children {
            let out = vec![vec![(0, 1u32)], vec![(0, 2u32)]];
            let _ = child.exchange(out);
        }
        parent.join_parallel(&children);
        assert_eq!(parent.round(), 1);
        let r = parent.report();
        assert_eq!(r.rounds, 1);
        assert_eq!(r.load, 2); // two items into each child's server 0
        assert_eq!(r.total_units, 4);
    }

    #[test]
    fn oversubscription_wraps_and_stacks_load() {
        let mut parent = Cluster::new(2);
        // Four sub-clusters of one server each on two physical servers.
        let mut children = parent.split(&[1, 1, 1, 1]);
        for child in &mut children {
            let out = vec![vec![(0, ())]];
            let _ = child.exchange(out);
        }
        parent.join_parallel(&children);
        // Children 0 and 2 share physical server 0; load stacks to 2.
        assert_eq!(parent.report().load, 2);
    }

    #[test]
    fn rounds_advance_monotonically() {
        let mut c = Cluster::new(2);
        let _ = c.exchange(vec![vec![(0, ())], vec![]]);
        let _ = c.exchange(vec![vec![(1, ())], vec![]]);
        assert_eq!(c.round(), 2);
        assert_eq!(c.report().rounds, 2);
        assert_eq!(c.report().load, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn exchange_rejects_bad_destination() {
        let mut c = Cluster::new(2);
        let _ = c.exchange(vec![vec![(5, ())], vec![]]);
    }

    #[test]
    fn reindexed_wraps_and_concatenates_in_child_order() {
        // 5 logical child servers over 3 parent servers, base 1:
        // child j lands on parent (1 + j) % 3, so parents get
        //   parent 0 ← child 2,   parent 1 ← children 0 and 3 (in that
        //   order), parent 2 ← children 1 and 4.
        let child = Distributed::from_parts(vec![
            vec!["c0"],
            vec!["c1a", "c1b"],
            vec!["c2"],
            vec!["c3"],
            vec!["c4"],
        ]);
        let parent = child.reindexed(3, 1);
        assert_eq!(parent.servers(), 3);
        assert_eq!(parent.local(0), &vec!["c2"]);
        assert_eq!(parent.local(1), &vec!["c0", "c3"]);
        assert_eq!(parent.local(2), &vec!["c1a", "c1b", "c4"]);
        // Wrap preserves every item exactly once.
        assert_eq!(parent.total_len(), 6);
    }

    #[test]
    fn skew_measures_imbalance() {
        let balanced = Distributed::from_parts(vec![vec![1u8; 4], vec![1; 4]]);
        assert!((balanced.skew() - 1.0).abs() < 1e-12);
        let hot = Distributed::from_parts(vec![vec![1u8; 9], vec![1; 1]]);
        assert!((hot.skew() - 1.8).abs() < 1e-12);
        let empty: Distributed<u8> = Distributed::empty(4);
        assert!((empty.skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traced_exchange_matches_untraced_costs() {
        let route = |c: &mut Cluster| {
            let out = vec![vec![(2, "a"), (2, "b")], vec![(0, "c")], vec![]];
            let _ = c.exchange(out);
            let d = c.scatter_initial(vec![1u8, 2]);
            let _ = c.broadcast(&d);
        };
        let mut plain = Cluster::new(3);
        route(&mut plain);
        let mut traced = Cluster::new(3);
        traced.enable_tracing();
        route(&mut traced);
        assert_eq!(plain.report(), traced.report());
        let trace = traced.take_trace().expect("tracing was on");
        assert_eq!(trace.cost, plain.report());
        assert_eq!(trace.events.len(), 2);
        // Event 0: exchange; received = [1, 0, 2].
        assert_eq!(trace.events[0].received, vec![1, 0, 2]);
        assert_eq!(trace.events[0].traffic[0][2], 2);
        // Event 1: broadcast of 2 items to all 3 servers.
        assert_eq!(trace.events[1].received, vec![2, 2, 2]);
        // Critical cell matches the measured load.
        let critical = trace.critical_round().expect("has traffic");
        assert_eq!(critical.units, trace.cost.load);
    }

    #[test]
    fn metrics_match_ledger_and_stay_invisible() {
        let route = |c: &mut Cluster| {
            {
                let _op = c.op("route");
                let out = vec![vec![(2, "a"), (2, "b")], vec![(0, "c")], vec![]];
                let _ = c.exchange(out);
            }
            let d = c.scatter_initial(vec![1u8, 2]);
            let _ = c.broadcast(&d);
        };
        let mut plain = Cluster::new(3);
        route(&mut plain);
        let mut metered = Cluster::new(3);
        metered.enable_metrics();
        assert!(metered.metrics_enabled());
        assert!(!metered.tracing_enabled(), "metrics do not imply tracing");
        route(&mut metered);
        // The registry never perturbs the ledger.
        assert_eq!(plain.report(), metered.report());
        let snap = metered.take_metrics().expect("metrics were on");
        // Exchange received [1, 0, 2]; broadcast adds 2 to every server.
        assert_eq!(snap.per_server, vec![3, 2, 4]);
        assert_eq!(snap.received.max, 4);
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("events.exchange"), Some(1));
        assert_eq!(counter("events.broadcast"), Some(1));
        // The op scope labeled the exchange even with tracing off.
        let route_hist = snap
            .per_primitive
            .iter()
            .find(|(k, _)| k == "route")
            .map(|(_, h)| h)
            .expect("scope label recorded");
        assert_eq!(route_hist.sum, 3);
        assert_eq!(route_hist.count, 1);
        // Ledger gauges were sampled at snapshot time.
        let gauge = |name: &str| snap.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(gauge("load"), Some(plain.report().load as f64));
        assert_eq!(gauge("rounds"), Some(2.0));
    }

    #[test]
    fn metrics_and_tracing_compose() {
        let mut c = Cluster::new(2);
        c.enable_metrics();
        c.enable_tracing();
        let _ = c.exchange(vec![vec![(1, ()), (1, ())], vec![(0, ())]]);
        let trace = c.take_trace().expect("tracing on");
        let snap = c.take_metrics().expect("metrics on");
        assert_eq!(trace.per_server(), snap.per_server);
        assert_eq!(trace.cost.load, 2);
        assert_eq!(snap.received.max, 2);
    }

    #[test]
    fn op_scopes_nest_and_label_events() {
        let mut c = Cluster::new(2);
        c.enable_tracing();
        {
            let _outer = c.op("semijoin");
            {
                let _inner = c.op("sort");
                let _ = c.exchange(vec![vec![(1, ())], vec![]]);
            }
            let _ = c.exchange(vec![vec![(0, ())], vec![]]);
        }
        c.mark_phase("late");
        let _ = c.exchange(vec![vec![(1, ())], vec![]]);
        let trace = c.take_trace().unwrap();
        let labels: Vec<&str> = trace.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["semijoin/sort", "semijoin", "(unlabeled)"]);
        let phases: Vec<&str> = trace.events.iter().map(|e| e.phase.as_str()).collect();
        assert_eq!(phases, vec!["(preamble)", "(preamble)", "late"]);
    }

    #[test]
    fn oversubscribed_trace_stacks_like_ledger() {
        let mut parent = Cluster::new(2);
        parent.enable_tracing();
        let mut children = parent.split(&[1, 1, 1, 1]);
        for child in &mut children {
            let _ = child.exchange(vec![vec![(0, ())]]);
        }
        parent.join_parallel(&children);
        let trace = parent.take_trace().unwrap();
        // Children 0 and 2 share physical server 0: the trace's cell view
        // must stack exactly as the ledger did.
        assert_eq!(trace.cost.load, 2);
        assert_eq!(trace.critical_round().unwrap().units, 2);
        assert_eq!(trace.per_server(), vec![2, 2]);
    }

    #[test]
    fn compute_spans_record_task_counts() {
        let mut c = Cluster::with_threads(3, 2);
        c.enable_tracing();
        let _op = c.op("map");
        let squares = c.par_run(3, |i| i * i);
        assert_eq!(squares, vec![0, 1, 4]);
        drop(_op);
        let trace = c.take_trace().unwrap();
        assert_eq!(trace.compute.len(), 1);
        assert_eq!(trace.compute[0].tasks, 3);
        assert_eq!(trace.compute[0].label, "map");
    }

    #[test]
    fn fault_plane_never_perturbs_ledger_or_deliveries() {
        use crate::fault::FaultPlan;
        let route = |c: &mut Cluster| -> Vec<Vec<&'static str>> {
            let out = vec![vec![(2, "a"), (2, "b")], vec![(0, "c")], vec![]];
            let d = c.exchange(out);
            let s = c.scatter_initial(vec!["x", "y"]);
            let b = c.broadcast(&s);
            let mut parts = d.into_parts();
            parts.extend(b.into_parts());
            parts
        };
        let mut plain = Cluster::new(3);
        let plain_parts = route(&mut plain);
        let mut faulted = Cluster::new(3);
        faulted.install_faults(
            FaultPlan::new(42)
                .drop_window(0, 8, 0.5)
                .duplicate(0, 0.5)
                .reorder(1)
                .retries(64),
        );
        assert!(faulted.faults_installed());
        let faulted_parts = route(&mut faulted);
        // Recovered deliveries and the cost ledger are bit-identical.
        assert_eq!(faulted_parts, plain_parts);
        assert_eq!(faulted.report(), plain.report());
        let report = faulted.take_recovery().expect("plane installed");
        assert!(report.recovered());
        assert!(report.faults_injected > 0, "schedule should have fired");
    }

    #[test]
    fn crash_recovery_keeps_costs_and_reports_lost_server() {
        use crate::fault::FaultPlan;
        let route = |c: &mut Cluster| {
            for _ in 0..3 {
                let out = vec![vec![(1, ())], vec![(0, ())], vec![(2, ())]];
                let _ = c.exchange(out);
            }
        };
        let mut plain = Cluster::new(3);
        route(&mut plain);
        let mut faulted = Cluster::new(3);
        faulted.install_faults(FaultPlan::new(7).crash(1, 2));
        route(&mut faulted);
        assert_eq!(faulted.report(), plain.report());
        let report = faulted.take_recovery().unwrap();
        assert!(report.recovered());
        assert_eq!(report.servers_lost, vec![2]);
        assert_eq!(report.rounds_replayed, 1);
    }

    #[test]
    fn exhausted_retries_poison_instead_of_panicking() {
        use crate::fault::FaultPlan;
        let mut c = Cluster::new(2);
        c.install_faults(FaultPlan::new(3).drop_window(0, 100, 1.0).retries(1));
        // The run completes (delivery stays faithful so invariants hold)…
        let d = c.exchange(vec![vec![(1, 5u32)], vec![]]);
        assert_eq!(d.local(1), &vec![5]);
        // …but the plane has recorded the terminal failure.
        let (round, detail) = c.recovery_failed().expect("budget exhausted");
        assert_eq!(round, 0);
        assert!(detail.contains("undelivered"));
        assert!(!c.take_recovery().unwrap().recovered());
    }

    #[test]
    fn bad_destination_poisons_under_fault_plane() {
        use crate::fault::FaultPlan;
        let mut c = Cluster::new(2);
        c.install_faults(FaultPlan::new(1));
        let d = c.exchange(vec![vec![(5, "lost"), (1, "kept")], vec![]]);
        assert_eq!(d.local(1), &vec!["kept"]);
        let (_, detail) = c.recovery_failed().expect("poisoned");
        assert!(detail.contains("out of range"));
    }

    #[test]
    fn checkpoint_restore_replays_bit_identically() {
        use crate::fault::FaultPlan;
        let mut c = Cluster::new(3);
        c.enable_tracing();
        c.install_faults(FaultPlan::new(11).drop_window(0, 10, 0.4).retries(64));
        let state = c.scatter_initial((0..9u64).collect::<Vec<_>>());
        let outboxes = |d: &Distributed<u64>| -> Vec<Vec<(usize, u64)>> {
            d.iter()
                .map(|(_, local)| local.iter().map(|&v| ((v % 3) as usize, v)).collect())
                .collect()
        };
        let cp = c.checkpoint(&state);
        assert_eq!(cp.round(), 0);
        let first = c.exchange(outboxes(&state));
        let report_after_first = c.report();
        assert!(c.recovery_failed().is_none());
        // Rewind and replay: same deliveries, same ledger, same fault
        // draws (the plane's RNG stream was part of the checkpoint).
        let restored = c.restore(cp.clone());
        assert_eq!(c.round(), 0);
        assert_eq!(c.report().rounds, 0);
        let replay = c.exchange(outboxes(&restored));
        assert_eq!(replay.into_parts(), first.into_parts());
        assert_eq!(c.report(), report_after_first);
        let trace = c.take_trace().unwrap();
        assert_eq!(trace.events.len(), 1, "rollback discarded the first try");
        let recovery = c.take_recovery().unwrap();
        assert!(recovery.recovered());
    }

    #[test]
    fn par_map_local_matches_map_local_on_every_backend() {
        let parts: Vec<Vec<u64>> = (0..13).map(|i| (0..i).collect()).collect();
        let serial = Distributed::from_parts(parts.clone())
            .map_local(|s, v| v.into_iter().map(|x| x * 3 + s as u64).collect())
            .into_parts();
        for threads in [1, 2, 8] {
            let c = Cluster::with_threads(4, threads);
            let par = Distributed::from_parts(parts.clone())
                .par_map_local(&c, |s, v| v.into_iter().map(|x| x * 3 + s as u64).collect())
                .into_parts();
            assert_eq!(par, serial, "threads={threads}");
        }
    }
}

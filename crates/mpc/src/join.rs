//! The worst-case optimal MPC two-way join (Beame–Koutris–Suciu '14 /
//! Hu–Tao–Yi '17), cited by the paper (§1.4) as the binary-join building
//! block of the distributed Yannakakis algorithm.
//!
//! For `R1 ⋈ R2` with `N = |R1| + |R2|` and full-join size `OUT_f`, the
//! load is `O(N/p + √(OUT_f/p))`:
//!
//! * keys producing more than `OUT_f/p` results, or with degree above the
//!   target load, are *heavy*: each gets a dedicated `g1 × g2` server grid,
//!   `R1` rows replicated across columns and `R2` rows across grid rows, so
//!   every grid cell receives `O(√(OUT_f/p))` tuples from each side;
//! * the remaining *light* keys are parallel-packed into groups of total
//!   degree `O(L)` and each group is joined on one server.
//!
//! Every matching pair `(t1, t2)` meets on exactly one server, so the join
//! is duplicate-free by construction — which the non-idempotent semiring
//! tests verify end to end.

use crate::cluster::{Cluster, Distributed};
use crate::drel::{project, DistRelation};
use crate::hash::stable_hash;
use crate::primitives::reduce::{global_sum, reduce_by_key};
use crate::primitives::scan::parallel_packing;
use crate::primitives::search::lookup_exact;
use mpcjoin_relation::Row;
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;

/// Where tuples of one join key must be sent.
#[derive(Clone, Debug)]
enum Route {
    /// Dedicated grid at logical servers `base .. base + g1·g2`.
    Heavy { base: usize, g1: usize, g2: usize },
    /// All tuples of this key go to one packed-group server.
    Light { server: usize },
}

/// Materialize the full join `r1 ⋈ r2` on their common attributes.
///
/// The output is left distributed as produced (each server holds the
/// results it generated); downstream exchanges rebalance for free since
/// the MPC model only charges incoming traffic.
pub fn full_join<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> DistRelation<S> {
    let common = r1.schema().common(r2.schema());
    assert!(
        !common.is_empty(),
        "two-way join requires shared attributes (got {} ⋈ {})",
        r1.schema(),
        r2.schema()
    );
    let _op = cluster.op("full-join");
    let out_schema = r1.schema().join_schema(r2.schema());
    let p = cluster.p();
    let n = (r1.total_len() + r2.total_len()) as u64;

    // `common` comes from the schemas themselves, so lookups cannot miss.
    let key1 = r1.schema().positions_of(&common);
    let key2 = r2.schema().positions_of(&common);

    // --- Per-key degree statistics (1 round). ---
    let mut stat_pairs: Vec<Vec<(Row, (u64, u64))>> = (0..p).map(|_| Vec::new()).collect();
    for (i, local) in r1.data().iter() {
        stat_pairs[i].extend(
            local
                .iter()
                .map(|(row, _)| (project(row, &key1), (1u64, 0u64))),
        );
    }
    for (i, local) in r2.data().iter() {
        stat_pairs[i].extend(
            local
                .iter()
                .map(|(row, _)| (project(row, &key2), (0u64, 1u64))),
        );
    }
    let stats = reduce_by_key(
        cluster,
        Distributed::from_parts(stat_pairs),
        |acc: &mut (u64, u64), v| {
            acc.0 += v.0;
            acc.1 += v.1;
        },
    );
    // Keys present on only one side join with nothing.
    let stats = stats.par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .filter(|(_, (d1, d2))| *d1 > 0 && *d2 > 0)
            .collect::<Vec<_>>()
    });

    // --- Full join size and load target (1 round). ---
    let partial = stats.clone().map(|(_, (d1, d2))| d1.saturating_mul(d2));
    let out_f = global_sum(cluster, partial);
    if out_f == 0 {
        return DistRelation::empty(cluster, out_schema);
    }
    let load = (n / p as u64 + (out_f as f64 / p as f64).sqrt().ceil() as u64).max(1);
    let out_per_server = (out_f / p as u64).max(1);

    let is_heavy = move |d1: u64, d2: u64| -> bool {
        d1 + d2 > load || (d1 as u128) * (d2 as u128) > out_per_server as u128
    };

    // --- Heavy keys: gather to the coordinator, assign grids (2 rounds).
    let heavy_out: Vec<Vec<(usize, (Row, (u64, u64)))>> = stats
        .iter()
        .map(|(_, local)| {
            local
                .iter()
                .filter(|(_, (d1, d2))| is_heavy(*d1, *d2))
                .map(|entry| (0usize, entry.clone()))
                .collect()
        })
        .collect();
    let heavy_at_zero = cluster.exchange(heavy_out);

    let mut heavy_routes: Vec<(Row, Route)> = Vec::new();
    let mut next_server = 0usize;
    {
        let mut heavy = heavy_at_zero.local(0).clone();
        heavy.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, (d1, d2)) in heavy {
            let g1 = (d1.div_ceil(load) as usize).max(1);
            let g2 = (d2.div_ceil(load) as usize).max(1);
            heavy_routes.push((
                key,
                Route::Heavy {
                    base: next_server,
                    g1,
                    g2,
                },
            ));
            next_server += g1 * g2;
        }
    }
    let heavy_server_count = next_server;

    // Scatter heavy routes round-robin so the route catalog is distributed.
    let heavy_catalog_out: Vec<Vec<(usize, (Row, Route))>> = (0..p)
        .map(|src| {
            if src == 0 {
                heavy_routes
                    .iter()
                    .enumerate()
                    .map(|(i, entry)| (i % p, entry.clone()))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let heavy_catalog = cluster.exchange(heavy_catalog_out);

    // --- Light keys: pack into groups of total degree ≤ load (2 rounds).
    let light_stats = stats.par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .filter(|(_, (d1, d2))| !is_heavy(*d1, *d2))
            .collect::<Vec<_>>()
    });
    let packing = parallel_packing(cluster, light_stats, |(_, (d1, d2))| d1 + d2, load);

    // Merge both route catalogs (local concatenation, no traffic).
    let mut catalog_parts: Vec<Vec<(Row, Route)>> = heavy_catalog.into_parts();
    for (i, local) in packing.assigned.into_parts().into_iter().enumerate() {
        catalog_parts[i].extend(local.into_iter().map(|((key, _), gid)| {
            (
                key,
                Route::Light {
                    server: (heavy_server_count + gid as usize) % p,
                },
            )
        }));
    }
    let catalog = Distributed::from_parts(catalog_parts);

    // --- Attach routes to tuples (5 rounds: one multi-search for both
    // sides, tuples tagged by side). ---
    let mut tagged_parts: Vec<Vec<(u8, Row, S)>> = (0..p).map(|_| Vec::new()).collect();
    for (i, local) in r1.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(row, s)| (1u8, row.clone(), s.clone())));
    }
    for (i, local) in r2.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(row, s)| (2u8, row.clone(), s.clone())));
    }
    let key1_for_lookup = key1.clone();
    let key2_for_lookup = key2.clone();
    let routed = lookup_exact(
        cluster,
        Distributed::from_parts(tagged_parts),
        move |(side, row, _): &(u8, Row, S)| {
            if *side == 1 {
                project(row, &key1_for_lookup)
            } else {
                project(row, &key2_for_lookup)
            }
        },
        catalog,
    );

    // --- Route tuples to their join servers (1 round; outbox
    // construction is per-server work on the exec backend). ---
    let outboxes: Vec<Vec<(usize, (u8, Row, S))>> =
        cluster.par_map_parts(routed.into_parts(), |_, local| {
            let mut out = Vec::new();
            for ((side, row, s), route) in local {
                let Some(route) = route else { continue };
                match route {
                    Route::Heavy { base, g1, g2 } => {
                        let h = stable_hash(&row) as usize;
                        if side == 1 {
                            let i0 = h % g1;
                            for j in 0..g2 {
                                out.push((
                                    (base + i0 + g1 * j) % p,
                                    (side, row.clone(), s.clone()),
                                ));
                            }
                        } else {
                            let j0 = h % g2;
                            for i in 0..g1 {
                                out.push((
                                    (base + i + g1 * j0) % p,
                                    (side, row.clone(), s.clone()),
                                ));
                            }
                        }
                    }
                    Route::Light { server } => out.push((server % p, (side, row, s))),
                }
            }
            out
        });
    let at_servers = cluster.exchange(outboxes);

    // --- Local join (free; the heaviest local stage, on the backend). ---
    let data = at_servers.par_map_local(cluster, |_, items| {
        let mut left: HashMap<Row, Vec<(Row, S)>> = HashMap::new();
        let mut right: Vec<(Row, S)> = Vec::new();
        for (side, row, s) in items {
            if side == 1 {
                left.entry(project(&row, &key1)).or_default().push((row, s));
            } else {
                right.push((row, s));
            }
        }
        let mut out = Vec::new();
        for (rrow, rs) in right {
            let key = project(&rrow, &key2);
            if let Some(matches) = left.get(&key) {
                for (lrow, ls) in matches {
                    let mut row = lrow.clone();
                    for (idx, v) in rrow.iter().enumerate() {
                        if !key2.contains(&idx) {
                            row.push(*v);
                        }
                    }
                    out.push((row, ls.mul(&rs)));
                }
            }
        }
        out
    });

    DistRelation::from_distributed(out_schema, data)
}

/// `∑_{keep}(r1 ⋈ r2)`: full join followed by a distributed
/// project-aggregate — the per-step shape of the distributed Yannakakis
/// algorithm.
pub fn join_aggregate<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
    keep: &[mpcjoin_relation::Attr],
) -> DistRelation<S> {
    let joined = full_join(cluster, r1, r2);
    joined.project_aggregate(cluster, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation, Schema};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn rel_ab(pairs: &[(u64, u64, u64)]) -> Relation<Count> {
        Relation::from_entries(
            Schema::binary(A, B),
            pairs
                .iter()
                .map(|&(a, b, w)| (vec![a, b], Count(w)))
                .collect(),
        )
    }

    fn rel_bc(pairs: &[(u64, u64, u64)]) -> Relation<Count> {
        Relation::from_entries(
            Schema::binary(B, C),
            pairs
                .iter()
                .map(|&(b, c, w)| (vec![b, c], Count(w)))
                .collect(),
        )
    }

    fn check_join(r1: &Relation<Count>, r2: &Relation<Count>, p: usize) -> Cluster {
        let mut c = Cluster::new(p);
        let d1 = DistRelation::scatter(&c, r1);
        let d2 = DistRelation::scatter(&c, r2);
        let joined = full_join(&mut c, &d1, &d2);
        let expect = r1.natural_join(r2);
        assert!(
            joined.gather().semantically_eq(&expect),
            "distributed join diverged from local join"
        );
        c
    }

    #[test]
    fn small_join_correct() {
        let r1 = rel_ab(&[(1, 10, 2), (2, 10, 3), (3, 11, 5)]);
        let r2 = rel_bc(&[(10, 100, 7), (11, 200, 1), (12, 300, 1)]);
        check_join(&r1, &r2, 4);
    }

    #[test]
    fn empty_join_returns_empty() {
        let r1 = rel_ab(&[(1, 10, 1)]);
        let r2 = rel_bc(&[(11, 100, 1)]);
        let mut c = Cluster::new(4);
        let d1 = DistRelation::scatter(&c, &r1);
        let d2 = DistRelation::scatter(&c, &r2);
        let joined = full_join(&mut c, &d1, &d2);
        assert!(joined.is_empty());
        assert_eq!(joined.schema().attrs(), &[A, B, C]);
    }

    #[test]
    fn heavy_key_join_correct_and_bounded() {
        // One key with degree 200 on each side: OUT_f = 40_000.
        let n = 200u64;
        let r1 = rel_ab(&(0..n).map(|i| (i, 0, 1)).collect::<Vec<_>>());
        let r2 = rel_bc(&(0..n).map(|i| (0, i, 1)).collect::<Vec<_>>());
        let p = 16;
        let c = check_join(&r1, &r2, p);
        let out_f = n * n;
        let bound = 2 * n / p as u64 + (out_f as f64 / p as f64).sqrt() as u64;
        assert!(
            c.report().load <= 8 * bound + 64,
            "load {} exceeds O(N/p + sqrt(OUTf/p)) = {}",
            c.report().load,
            bound
        );
    }

    #[test]
    fn mixed_skew_join_correct() {
        // A heavy key plus many light keys.
        let mut p1 = vec![];
        let mut p2 = vec![];
        for i in 0..100u64 {
            p1.push((i, 9999, 1)); // heavy B value on side 1
            p2.push((9999, i, 1)); // heavy B value on side 2
            p1.push((i, i, 1)); // light
            p2.push((i, 1000 + i, 1)); // light
        }
        check_join(&rel_ab(&p1), &rel_bc(&p2), 8);
    }

    #[test]
    fn join_aggregate_is_matrix_multiplication() {
        let r1 = rel_ab(&[(1, 10, 1), (1, 11, 1), (2, 10, 1)]);
        let r2 = rel_bc(&[(10, 5, 1), (11, 5, 1)]);
        let mut c = Cluster::new(4);
        let d1 = DistRelation::scatter(&c, &r1);
        let d2 = DistRelation::scatter(&c, &r2);
        let out = join_aggregate(&mut c, &d1, &d2, &[A, C]);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(out.gather().semantically_eq(&expect));
    }

    #[test]
    fn rounds_constant_across_sizes() {
        let mut rounds = Vec::new();
        for n in [64u64, 256, 1024] {
            let r1 = rel_ab(&(0..n).map(|i| (i, i % 50, 1)).collect::<Vec<_>>());
            let r2 = rel_bc(&(0..n).map(|i| (i % 50, i, 1)).collect::<Vec<_>>());
            let c = check_join(&r1, &r2, 8);
            rounds.push(c.report().rounds);
        }
        assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    }
}

//! A minimal, dependency-free JSON value: writer *and* parser.
//!
//! The workspace deliberately has zero third-party crates (DESIGN.md §5),
//! so trace export ([`crate::trace`]), the trace round-trip tests, and the
//! `trace-check` CI tool share this hand-rolled implementation instead of
//! serde. It supports exactly the JSON the simulator emits: objects,
//! arrays, strings (with `\uXXXX` escapes), integers/floats, booleans and
//! `null` — and is strict enough to reject truncated or malformed
//! documents, which is all the CI validation step needs. Since the
//! serving layer (`mpcjoin-server`) also parses *adversarial* bytes off
//! the wire with it, the parser is hardened: it never panics on any
//! input, and every error message names the byte offset of the problem
//! (pinned by the seeded fuzz suite in `tests/tests/json_fuzz.rs`).

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order (emission order is part
/// of the trace format's readability; no key lookup is hash-critical).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. `f64` holds every load the simulator can measure
    /// (loads are far below 2^53 units).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in emission order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    ///
    /// Errors when the document contains a non-finite number: `NaN` and
    /// `±∞` have no JSON representation, and silently emitting `null` (or
    /// an unparseable bare `NaN` token) would corrupt downstream
    /// consumers. Callers with potentially non-finite values must decide
    /// their own encoding (e.g. substitute [`Json::Null`]) *before*
    /// serializing.
    pub fn to_string_compact(&self) -> Result<String, String> {
        let mut out = String::new();
        write_value(self, &mut out)?;
        Ok(out)
    }

    /// Serialize compactly, substituting `null` for any non-finite
    /// number — a *total* function for hardened emit paths (trace and
    /// metrics export) where aborting on a bad guest value would turn an
    /// instrumentation bug into a crashed run. Prefer
    /// [`Json::to_string_compact`] when the caller can meaningfully
    /// report the error instead.
    pub fn to_string_sanitized(&self) -> String {
        fn sanitize(v: &Json) -> Json {
            match v {
                Json::Num(n) if !n.is_finite() => Json::Null,
                Json::Arr(items) => Json::Arr(items.iter().map(sanitize).collect()),
                Json::Obj(members) => Json::Obj(
                    members
                        .iter()
                        .map(|(k, v)| (k.clone(), sanitize(v)))
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        let mut out = String::new();
        // Sanitized values contain no non-finite numbers, so writing
        // cannot fail; fall back to the input's shape with `null`s if it
        // somehow did.
        if write_value(&sanitize(self), &mut out).is_err() {
            out = "null".to_string();
        }
        out
    }
}

/// Escape `s` into a JSON string literal (with surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_value(v: &Json, out: &mut String) -> Result<(), String> {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if !n.is_finite() {
                return Err(format!("non-finite number {n} has no JSON representation"));
            }
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => out.push_str(&escape_str(s)),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&escape_str(k));
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {}", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|e| format!("{e} at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string starting at byte {start}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|e| format!("{e} at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}` at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8: input
                // came from a &str).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| format!("{e} at byte {}", *pos))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or(format!("unterminated string starting at byte {start}"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("trace \"v1\"\n".into())),
            ("load".into(), Json::Num(1234.0)),
            ("ratio".into(), Json::Num(0.5)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "rows".into(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Arr(vec![Json::Num(2.0), Json::Num(3.0)]),
                ]),
            ),
        ]);
        let text = doc.to_string_compact().expect("finite doc serializes");
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("load").and_then(Json::as_u64), Some(1234));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("trace \"v1\"\n")
        );
        assert_eq!(
            back.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{'single': 1}",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041b\" , null ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("aAb"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn unicode_and_control_characters_round_trip() {
        // Multi-byte UTF-8 (including astral-plane chars), every named
        // escape, and raw C0 control characters all survive a
        // write→parse round trip.
        let cases = [
            "héllo wörld",
            "日本語テスト",
            "𝕊𝕡𝕒𝕣𝕤𝕖 ⊗ 𝕄𝕒𝕥𝕣𝕚𝕩",
            "emoji: \u{1F680} end",
            "quote \" backslash \\ slash / done",
            "tab\there\nnewline\rreturn",
            "bell \u{7} backspace \u{8} formfeed \u{c} esc \u{1b}",
            "nul \u{0} unit-sep \u{1f}",
            "",
        ];
        for s in cases {
            let doc = Json::Obj(vec![("k".into(), Json::Str(s.into()))]);
            let text = doc.to_string_compact().expect("finite doc serializes");
            // Control characters must be escaped, never emitted raw.
            assert!(
                !text.chars().any(|c| (c as u32) < 0x20),
                "raw control char in {text:?}"
            );
            let back = Json::parse(&text).expect("round-trip parses");
            assert_eq!(back.get("k").and_then(Json::as_str), Some(s));
        }
    }

    #[test]
    fn parses_surrogate_free_u_escapes_for_bmp_chars() {
        let v = Json::parse("\"\\u00e9\\u65e5\\u001f\"").unwrap();
        assert_eq!(v.as_str(), Some("é日\u{1f}"));
    }

    #[test]
    fn non_finite_numbers_are_an_error_not_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("ratio".into(), Json::Num(bad))]);
            let err = doc.to_string_compact().expect_err("must refuse {bad}");
            assert!(
                err.contains("non-finite"),
                "error should name the problem: {err}"
            );
        }
        // Nested occurrences are caught too.
        let nested = Json::Arr(vec![Json::Num(1.0), Json::Arr(vec![Json::Num(f64::NAN)])]);
        assert!(nested.to_string_compact().is_err());
        // And the parser rejects bare NaN/Infinity tokens on the way in.
        for bad in ["NaN", "Infinity", "-Infinity", "[NaN]"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn sanitized_printer_is_total() {
        let doc = Json::Obj(vec![
            ("ok".into(), Json::Num(2.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            ("nested".into(), Json::Arr(vec![Json::Num(f64::INFINITY)])),
        ]);
        let text = doc.to_string_sanitized();
        let back = Json::parse(&text).expect("sanitized output parses");
        assert_eq!(back.get("ok").and_then(Json::as_f64), Some(2.5));
        assert_eq!(back.get("bad"), Some(&Json::Null));
        assert_eq!(
            back.get("nested").and_then(Json::as_arr),
            Some(&[Json::Null][..])
        );
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = Json::parse("[-3, 2.5, 1e3]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-3.0));
        assert_eq!(arr[0].as_u64(), None);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_u64(), Some(1000));
    }
}

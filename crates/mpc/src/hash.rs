//! Deterministic hashing for routing and sketching.
//!
//! `std`'s default hasher is randomly seeded per process, which would make
//! simulated runs non-reproducible (routing decisions, and therefore exact
//! loads, would vary run to run). All routing in this workspace goes
//! through the stable FNV-1a hasher below, optionally post-mixed with a
//! caller-supplied seed (the KMV estimator needs a *family* of independent
//! hash functions).

use std::hash::{Hash, Hasher};

/// FNV-1a, 64-bit: tiny, portable, deterministic.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Stable 64-bit hash of any `Hash` value.
pub fn stable_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// SplitMix64 finalizer: a strong bijective mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Member `seed` of a family of independent-enough hash functions, applied
/// to `value`. Different seeds give (empirically) uncorrelated outputs;
/// used by the KMV sketch's `O(log N)` parallel estimator instances.
pub fn seeded_hash<T: Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    splitmix64(stable_hash(value) ^ splitmix64(seed))
}

/// Route a key to one of `p` partitions, deterministically.
pub fn partition_of<T: Hash + ?Sized>(value: &T, p: usize) -> usize {
    debug_assert!(p > 0);
    // Multiply-shift avoids modulo bias on small p.
    ((u128::from(stable_hash(value)) * p as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(
            stable_hash(&vec![1u64, 2, 3]),
            stable_hash(&vec![1u64, 2, 3])
        );
        assert_ne!(stable_hash(&1u64), stable_hash(&2u64));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = seeded_hash(1, &42u64);
        let b = seeded_hash(2, &42u64);
        assert_ne!(a, b);
    }

    #[test]
    fn partition_in_range_and_spread() {
        let p = 7;
        let mut seen = vec![0usize; p];
        for i in 0..10_000u64 {
            let part = partition_of(&i, p);
            assert!(part < p);
            seen[part] += 1;
        }
        // Roughly uniform: every partition within 2x of the mean.
        for &count in &seen {
            assert!(
                count > 10_000 / p / 2,
                "partition badly unbalanced: {seen:?}"
            );
            assert!(
                count < 10_000 / p * 2,
                "partition badly unbalanced: {seen:?}"
            );
        }
    }
}

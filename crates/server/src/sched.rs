//! The scheduler: bounded admission queue, worker pool, per-session
//! quotas, and graceful drain.
//!
//! Admission control is explicit and structured: a request that cannot
//! be queued is *answered* — with an `overloaded`, `quota_exceeded`, or
//! `draining` error frame carrying a retry hint — never silently
//! dropped, and the connection stays open. This is the serving analogue
//! of the library's "errors at the boundary, never panics" rule.
//!
//! ## Lifecycle
//!
//! ```text
//! submit ──► [admission checks] ──► queue ──► worker: execute ──► respond
//!                 │ full / quota / draining
//!                 └──► error frame (retry_after_ms)
//! ```
//!
//! A session's quota counts its queued *and* running jobs, and is
//! released only after the response callback returns — a tenant can
//! never hold more than `session_quota` executor slots no matter how
//! fast it pipelines.
//!
//! [`Scheduler::drain`] flips the admission gate (new work is rejected
//! with `draining`), waits for the queue to empty and every in-flight
//! job's response to be delivered, and reports how many jobs completed
//! over the scheduler's lifetime. [`Scheduler::shutdown`] then stops and
//! joins the workers.

use crate::obs::{Obs, RequestTag};
use crate::run::Executor;
use crate::wire::{error_frame, QueryRequest};
use mpcjoin::mpc::json::Json;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Serving-layer tuning knobs (every one has a CLI flag on
/// `mpcjoin-serve`).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent executor slots (worker threads).
    pub workers: usize,
    /// Admission queue capacity (jobs waiting for a worker).
    pub queue_cap: usize,
    /// Maximum queued + running jobs per session.
    pub session_quota: usize,
    /// Result cache capacity (entries).
    pub cache_cap: usize,
    /// Upper bound on a request's simulated cluster width.
    pub max_servers: usize,
    /// Local-computation threads inside one job.
    pub threads_per_job: usize,
    /// Retry hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Per-query trace/metrics artifact directory.
    pub artifact_dir: Option<std::path::PathBuf>,
    /// `mpcjoin-log-v1` operational log file (`--log`).
    pub log_file: Option<std::path::PathBuf>,
    /// Text-exposition dump written at drain time (`--obs-dump`).
    pub obs_dump: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            session_quota: 16,
            cache_cap: 256,
            max_servers: 256,
            threads_per_job: 1,
            retry_after_ms: 25,
            artifact_dir: None,
            log_file: None,
            obs_dump: None,
        }
    }
}

/// Monotone serving counters (reported in `stats` frames).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs whose response has been delivered.
    pub completed: u64,
    /// Rejections: queue full.
    pub rejected_overload: u64,
    /// Rejections: session over quota.
    pub rejected_quota: u64,
    /// Rejections: server draining.
    pub rejected_draining: u64,
}

struct Job {
    /// Server-allocated request id (spans + log linkage).
    rid: u64,
    /// When the job entered the queue (queue-wait span).
    enqueued: Instant,
    request: QueryRequest,
    respond: Box<dyn FnOnce(String) + Send>,
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    /// Queued + running jobs per session key.
    session_load: HashMap<String, usize>,
    running: usize,
    draining: bool,
    stopped: bool,
}

struct Inner {
    cfg: ServerConfig,
    obs: Arc<Obs>,
    executor: Executor,
    state: Mutex<State>,
    /// Signaled when work arrives or the scheduler stops.
    work_cv: Condvar,
    /// Signaled when a job finishes (drain waits on this).
    idle_cv: Condvar,
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_draining: AtomicU64,
}

/// The worker pool + admission queue. Shared across connection threads
/// behind an `Arc`; owns its worker threads until [`Scheduler::shutdown`].
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Start `cfg.workers` workers over a fresh executor (and the
    /// observability plane — with the operational log attached when
    /// `cfg.log_file` is set; a log-file open failure downgrades to
    /// metrics-only with a stderr note rather than refusing to serve).
    pub fn new(cfg: ServerConfig) -> Self {
        let obs = Arc::new(match &cfg.log_file {
            None => Obs::new(),
            Some(path) => Obs::with_log(path).unwrap_or_else(|e| {
                eprintln!(
                    "cannot open log file {}: {e}; logging disabled",
                    path.display()
                );
                Obs::new()
            }),
        });
        obs.log_event(
            "info",
            "server_start",
            vec![
                ("workers".into(), Json::Num(cfg.workers as f64)),
                ("queue_cap".into(), Json::Num(cfg.queue_cap as f64)),
                ("session_quota".into(), Json::Num(cfg.session_quota as f64)),
                ("cache_cap".into(), Json::Num(cfg.cache_cap as f64)),
            ],
        );
        let executor = Executor::new(
            cfg.max_servers,
            cfg.threads_per_job,
            cfg.cache_cap,
            cfg.artifact_dir.clone(),
            Arc::clone(&obs),
        );
        let inner = Arc::new(Inner {
            obs,
            executor,
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The executor (for cache statistics).
    pub fn executor(&self) -> &Executor {
        &self.inner.executor
    }

    /// The shared observability plane.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.inner.obs
    }

    /// The full `mpcjoin-serverstats-v1` payload.
    pub fn stats_doc(&self) -> Json {
        self.inner
            .obs
            .stats_json(&self.stats(), &self.inner.executor.cache_stats())
    }

    /// The text exposition of the stats payload.
    pub fn stats_text(&self) -> String {
        self.inner
            .obs
            .stats_text(&self.stats(), &self.inner.executor.cache_stats())
    }

    /// Submit a query under a server-allocated request id. Exactly one
    /// call to `respond` happens — either immediately (a rejection
    /// frame, on the submitter's thread) or from a worker once the job
    /// executes. `respond` must be cheap-ish: it runs with no scheduler
    /// lock held but occupies the worker.
    pub fn submit(
        &self,
        rid: u64,
        request: QueryRequest,
        respond: impl FnOnce(String) + Send + 'static,
    ) {
        let inner = &self.inner;
        let rejection = {
            let mut state = inner.state.lock().expect("scheduler lock");
            if state.draining || state.stopped {
                inner.rejected_draining.fetch_add(1, Ordering::Relaxed);
                Some((
                    "draining",
                    error_frame(
                        Some(request.id),
                        "draining",
                        "server is shutting down; no new work admitted",
                        None,
                    ),
                ))
            } else if state.queue.len() >= inner.cfg.queue_cap {
                inner.rejected_overload.fetch_add(1, Ordering::Relaxed);
                Some((
                    "overloaded",
                    error_frame(
                        Some(request.id),
                        "overloaded",
                        &format!("admission queue full ({} queued)", state.queue.len()),
                        Some(inner.cfg.retry_after_ms),
                    ),
                ))
            } else {
                let load = state
                    .session_load
                    .entry(request.session.clone())
                    .or_insert(0);
                if *load >= inner.cfg.session_quota {
                    inner.rejected_quota.fetch_add(1, Ordering::Relaxed);
                    Some((
                        "quota_exceeded",
                        error_frame(
                            Some(request.id),
                            "quota_exceeded",
                            &format!(
                                "session `{}` already has {load} jobs in flight (quota {})",
                                request.session, inner.cfg.session_quota
                            ),
                            Some(inner.cfg.retry_after_ms),
                        ),
                    ))
                } else {
                    *load += 1;
                    inner.admitted.fetch_add(1, Ordering::Relaxed);
                    inner.obs.queue_enter();
                    state.queue.push_back(Job {
                        rid,
                        enqueued: Instant::now(),
                        request,
                        respond: Box::new(respond),
                    });
                    inner.work_cv.notify_one();
                    return;
                }
            }
        };
        // Rejection frames are counted, logged, and delivered outside
        // the lock.
        if let Some((reason, frame)) = rejection {
            inner.obs.count(&format!("error.{reason}"), 1);
            let tag = RequestTag {
                rid,
                id: request.id,
                session: request.session.clone(),
            };
            let mut fields = tag.fields();
            fields.push(("reason".into(), Json::Str(reason.into())));
            inner.obs.log_event("info", "reject", fields);
            (respond)(frame);
        }
    }

    /// Stop admitting work, wait until the queue is empty and every
    /// in-flight job's response has been delivered, and return the
    /// number of jobs completed over the scheduler's lifetime.
    pub fn drain(&self) -> u64 {
        let inner = &self.inner;
        let completed = {
            let mut state = inner.state.lock().expect("scheduler lock");
            state.draining = true;
            while !state.queue.is_empty() || state.running > 0 {
                state = inner.idle_cv.wait(state).expect("scheduler lock");
            }
            inner.completed.load(Ordering::Relaxed)
        };
        inner.obs.log_event(
            "info",
            "drain",
            vec![("completed".into(), Json::Num(completed as f64))],
        );
        if let Some(path) = &inner.cfg.obs_dump {
            if let Err(e) = std::fs::write(path, self.stats_text()) {
                eprintln!("cannot write obs dump {}: {e}", path.display());
            }
        }
        completed
    }

    /// Drain, then stop and join the worker threads. Safe to call from a
    /// shared handle; a second call finds no workers left to join.
    pub fn shutdown(&self) -> u64 {
        let completed = self.drain();
        {
            let mut state = self.inner.state.lock().expect("scheduler lock");
            state.stopped = true;
            self.inner.work_cv.notify_all();
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.inner.obs.log_event(
            "info",
            "shutdown",
            vec![("completed".into(), Json::Num(completed as f64))],
        );
        completed
    }

    /// Current counters.
    pub fn stats(&self) -> SchedStats {
        let inner = &self.inner;
        SchedStats {
            admitted: inner.admitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            rejected_overload: inner.rejected_overload.load(Ordering::Relaxed),
            rejected_quota: inner.rejected_quota.load(Ordering::Relaxed),
            rejected_draining: inner.rejected_draining.load(Ordering::Relaxed),
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("scheduler lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.stopped {
                    return;
                }
                state = inner.work_cv.wait(state).expect("scheduler lock");
            }
        };
        inner.obs.job_start();
        let queue_ns = job.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let frame = inner
            .executor
            .execute_observed(&job.request, job.rid, queue_ns);
        // The completion counter and gauge move *before* the response is
        // delivered: a client that scrapes stats after receiving all its
        // responses must see `completed` cover every one of them.
        inner.completed.fetch_add(1, Ordering::Relaxed);
        inner.obs.job_end();
        (job.respond)(frame);
        let mut state = inner.state.lock().expect("scheduler lock");
        state.running -= 1;
        if let Some(load) = state.session_load.get_mut(&job.request.session) {
            *load -= 1;
            if *load == 0 {
                state.session_load.remove(&job.request.session);
            }
        }
        inner.idle_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ResponseView;
    use std::sync::mpsc;

    fn mm_request(id: u64, session: &str, delay_ms: u64) -> QueryRequest {
        QueryRequest {
            id,
            session: session.to_string(),
            query: "Q(a, c) :- R(a, b), S(b, c)".into(),
            semiring: "count".into(),
            servers: 4,
            plan: "auto".into(),
            relations: vec![
                ("R".into(), vec![vec![1, 10], vec![1, 11], vec![2, 10]]),
                ("S".into(), vec![vec![10, 7], vec![11, 7]]),
            ],
            limit: None,
            delay_ms,
            fault_plan: None,
        }
    }

    fn small(workers: usize, queue_cap: usize, quota: usize) -> Scheduler {
        Scheduler::new(ServerConfig {
            workers,
            queue_cap,
            session_quota: quota,
            cache_cap: 0, // keep every run cold so delays actually apply
            ..ServerConfig::default()
        })
    }

    #[test]
    fn every_submission_gets_exactly_one_response() {
        let sched = small(4, 64, 64);
        let (tx, rx) = mpsc::channel::<String>();
        const N: u64 = 40;
        for id in 0..N {
            let tx = tx.clone();
            sched.submit(id + 1, mm_request(id, "t", 0), move |frame| {
                tx.send(frame).expect("collector alive");
            });
        }
        let mut ids: Vec<u64> = (0..N)
            .map(|_| {
                let frame = rx.recv().expect("a response per submission");
                let view = ResponseView::parse(&frame).expect("parseable");
                assert_eq!(view.kind, "result");
                view.id.expect("result frames echo ids")
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..N).collect::<Vec<_>>(), "no lost or duplicated");
        assert_eq!(sched.shutdown(), N);
    }

    #[test]
    fn overload_rejects_with_retry_hint() {
        // One deliberately-slow worker and a tiny queue: the tail of a
        // burst must be rejected as `overloaded`, not dropped.
        let sched = small(1, 2, 1000);
        let (tx, rx) = mpsc::channel::<String>();
        for id in 0..20 {
            let tx = tx.clone();
            sched.submit(id + 1, mm_request(id, "t", 30), move |frame| {
                tx.send(frame).expect("collector alive");
            });
        }
        let frames: Vec<ResponseView> = (0..20)
            .map(|_| ResponseView::parse(&rx.recv().unwrap()).unwrap())
            .collect();
        let rejected = frames.iter().filter(|v| v.kind == "error").count();
        assert!(rejected > 0, "burst must overflow the queue");
        for v in frames.iter().filter(|v| v.kind == "error") {
            assert_eq!(v.code.as_deref(), Some("overloaded"));
            assert!(v.retry_after_ms.is_some());
        }
        let stats = sched.stats();
        assert_eq!(stats.rejected_overload, rejected as u64);
        assert_eq!(stats.admitted, 20 - rejected as u64);
        sched.shutdown();
    }

    #[test]
    fn session_quota_is_enforced_per_session() {
        let sched = small(1, 64, 2);
        let (tx, rx) = mpsc::channel::<String>();
        // Session `a` floods; session `b` sends one job. Only `a` may be
        // quota-rejected.
        for id in 0..6 {
            let tx = tx.clone();
            sched.submit(id + 1, mm_request(id, "a", 20), move |f| {
                tx.send(f).unwrap()
            });
        }
        let tx2 = tx.clone();
        sched.submit(101, mm_request(100, "b", 0), move |f| tx2.send(f).unwrap());
        let frames: Vec<ResponseView> = (0..7)
            .map(|_| ResponseView::parse(&rx.recv().unwrap()).unwrap())
            .collect();
        let quota_rejected: Vec<_> = frames
            .iter()
            .filter(|v| v.code.as_deref() == Some("quota_exceeded"))
            .collect();
        assert_eq!(quota_rejected.len(), 4, "a: 2 admitted of 6");
        assert!(
            quota_rejected.iter().all(|v| v.id != Some(100)),
            "session b is under quota"
        );
        assert!(frames
            .iter()
            .any(|v| v.id == Some(100) && v.kind == "result"));
        sched.shutdown();
    }

    #[test]
    fn drain_completes_in_flight_work_then_rejects() {
        let sched = small(2, 64, 64);
        let (tx, rx) = mpsc::channel::<String>();
        for id in 0..6 {
            let tx = tx.clone();
            sched.submit(id + 1, mm_request(id, "t", 25), move |f| {
                tx.send(f).unwrap()
            });
        }
        let completed = sched.drain();
        assert_eq!(completed, 6, "drain waits for in-flight work");
        // All six responses were delivered before drain returned.
        for _ in 0..6 {
            let v = ResponseView::parse(&rx.try_recv().expect("delivered")).unwrap();
            assert_eq!(v.kind, "result");
        }
        // Post-drain submissions are structured rejections.
        let (tx2, rx2) = mpsc::channel::<String>();
        sched.submit(100, mm_request(99, "t", 0), move |f| tx2.send(f).unwrap());
        let v = ResponseView::parse(&rx2.recv().unwrap()).unwrap();
        assert_eq!(v.code.as_deref(), Some("draining"));
        assert_eq!(sched.stats().rejected_draining, 1);
        sched.shutdown();
    }
}

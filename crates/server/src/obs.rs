//! The observability plane: request-scoped spans, windowed server
//! metrics, a bound-regression watchdog, and the structured operational
//! log — std-only, always-on, and invisible to results.
//!
//! ## What lives here
//!
//! [`Obs`] is one shared aggregator threaded through the whole serving
//! stack (wire → admission → queue → cache → executor → engine):
//!
//! * **Request ids and spans.** The wire layer allocates a monotone
//!   request id (`rid`) per incoming frame ([`Obs::next_rid`]); every
//!   response frame echoes it (`wire::stamp_rid`), and the request's
//!   trip through the stack is measured as per-phase wall-clock spans
//!   ([`RequestSpans`]: queue wait, cache lookup, engine rounds,
//!   serialization, total). Per-query trace artifacts are tagged with
//!   the rid (`Trace::to_json_tagged`), linking the span to the
//!   `mpcjoin-trace-v3` round events it envelopes.
//! * **Windowed server metrics.** Log₂-bucket latency histograms per
//!   phase and per plan-kind, monotone counters (per frame kind,
//!   semiring, error code, rejection reason), and point-in-time gauges
//!   (queue depth, in-flight jobs, cache bytes, uptime). Counters and
//!   histograms are cumulative-monotone — scrapers diff between
//!   scrapes; the watchdog additionally keeps a bounded *window* of
//!   recent audit ratios for an at-a-glance recent-health readout.
//! * **Bound-regression watchdog.** Every cold run's [`AuditVerdict`]
//!   ratio is recorded; a run past `0.8·(slack·bound + additive)`
//!   ([`NEAR_FRACTION`]) counts as a *near-violation* and lands in a
//!   bounded slow-query log together with the query's explain artifact
//!   (`mpcjoin-plan-v1`) and recovery report, so a creeping bound
//!   regression is diagnosable post-hoc without re-running anything.
//! * **Operational log.** A JSONL event log (schema [`LOG_SCHEMA`],
//!   `mpcjoin-log-v1`) behind `mpcjoin-serve --log FILE`: lifecycle,
//!   request, rejection, completion (with spans), and watchdog events,
//!   each stamped with a monotone `ts_ns` (file order is monotone — the
//!   timestamp is taken under the writer lock).
//!
//! Everything is exposed two ways: the `mpcjoin-serverstats-v1` JSON
//! payload ([`Obs::stats_json`], served in expanded `stats` frames) and
//! a line-oriented text exposition ([`Obs::stats_text`], served via
//! `{"type":"stats","format":"text"}` and dumped by `--obs-dump FILE`).
//!
//! ## The invisibility invariant
//!
//! The plane measures wall-clock and counts events *around* the engine;
//! it never reaches inside a run. Canonical result bodies and the cost
//! ledger are therefore bit-identical with the log/dump enabled or
//! disabled — pinned by `tests/tests/serve.rs` across thread counts,
//! exactly like the trace and metrics planes before it.
//!
//! ## Validation
//!
//! [`check_log`] and [`cross_check`] (driven by the `obs_check` binary)
//! validate a log file line-by-line and cross-validate its event counts
//! against a scraped serverstats payload ([`StatsView`]) and a loadgen
//! run's client-side tallies (`mpcjoin-bench-server-v1`): every query
//! frame is either rejected or completed, server-side completion /
//! rejection / cache-hit counters equal both the log's event counts and
//! the client's, and nothing was lost or duplicated.

use crate::cache::CacheStats;
use crate::sched::SchedStats;
use mpcjoin::mpc::json::Json;
use mpcjoin::mpc::metrics::LogHistogram;
use mpcjoin::prelude::AuditVerdict;
use mpcjoin_bench::server::ServerArtifact;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag of the server stats payload.
pub const SERVERSTATS_SCHEMA: &str = "mpcjoin-serverstats-v1";
/// Schema tag of operational-log lines.
pub const LOG_SCHEMA: &str = "mpcjoin-log-v1";
/// Fraction of the audit envelope (`slack·bound + additive`) beyond
/// which a run counts as a near-violation.
pub const NEAR_FRACTION: f64 = 0.8;
/// Capacity of the watchdog's recent-ratio window.
pub const RATIO_WINDOW: usize = 512;
/// Capacity of the bounded slow-query log (oldest entries fall off).
pub const SLOW_QUERY_CAP: usize = 16;

/// The span phases, in pipeline order. `total` covers the whole trip
/// (including the phases not individually measured, e.g. validation).
pub const PHASES: [&str; 5] = ["queue", "cache", "engine", "serialize", "total"];

/// Per-phase wall-clock spans of one request's trip through the stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestSpans {
    /// Admission-queue wait (enqueue → worker pickup).
    pub queue_ns: u64,
    /// Digest + result-cache lookup.
    pub cache_ns: u64,
    /// Simulated-cluster execution (envelopes the trace's round events).
    pub engine_ns: u64,
    /// Canonical-body + recovery serialization.
    pub serialize_ns: u64,
    /// Whole trip, pickup → response frame ready.
    pub total_ns: u64,
}

impl RequestSpans {
    /// Serialize for `complete` log events.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("queue_ns".into(), Json::Num(self.queue_ns as f64)),
            ("cache_ns".into(), Json::Num(self.cache_ns as f64)),
            ("engine_ns".into(), Json::Num(self.engine_ns as f64)),
            ("serialize_ns".into(), Json::Num(self.serialize_ns as f64)),
            ("total_ns".into(), Json::Num(self.total_ns as f64)),
        ])
    }
}

/// Identity of the request a measurement belongs to (for log events and
/// slow-query records).
#[derive(Clone, Debug)]
pub struct RequestTag {
    /// Server-allocated request id (echoed on the response frame).
    pub rid: u64,
    /// Client-chosen request id.
    pub id: u64,
    /// Admission-quota session.
    pub session: String,
}

impl RequestTag {
    /// The tag's members, for embedding into log events.
    pub(crate) fn fields(&self) -> Vec<(String, Json)> {
        vec![
            ("rid".into(), Json::Num(self.rid as f64)),
            ("id".into(), Json::Num(self.id as f64)),
            ("session".into(), Json::Str(self.session.clone())),
        ]
    }

    /// The `request` member embedded into tagged trace artifacts.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields())
    }
}

/// One bounded slow-query record captured by the watchdog: everything
/// needed to diagnose a near-violation after the fact.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Who triggered it.
    pub tag: RequestTag,
    /// Plan that ran.
    pub plan: String,
    /// `measured / bound` of the offending run.
    pub ratio: f64,
    /// Measured load in units.
    pub measured: u64,
    /// The plan's Table-1 bound.
    pub bound: f64,
    /// Whether the run actually violated the envelope (vs merely near).
    pub violation: bool,
    /// The query's `mpcjoin-plan-v1` explain artifact, when compilable.
    pub explain: Option<Json>,
    /// The run's `mpcjoin-recovery-v1` report, when it ran faulted.
    pub recovery: Option<Json>,
}

impl SlowQuery {
    fn to_json(&self) -> Json {
        let mut members = self.tag.fields();
        members.extend([
            ("plan".into(), Json::Str(self.plan.clone())),
            (
                "ratio".into(),
                if self.ratio.is_finite() {
                    Json::Num(self.ratio)
                } else {
                    Json::Null
                },
            ),
            ("measured".into(), Json::Num(self.measured as f64)),
            ("bound".into(), Json::Num(self.bound)),
            ("violation".into(), Json::Bool(self.violation)),
            ("explain".into(), self.explain.clone().unwrap_or(Json::Null)),
            (
                "recovery".into(),
                self.recovery.clone().unwrap_or(Json::Null),
            ),
        ]);
        Json::Obj(members)
    }
}

#[derive(Default)]
struct Watchdog {
    audited: u64,
    near_violations: u64,
    violations: u64,
    /// Cumulative distribution of `ratio·1000` (milli-ratio).
    ratio_milli: LogHistogram,
    /// Recent ratios, newest last, capped at [`RATIO_WINDOW`].
    window: VecDeque<f64>,
    /// Bounded slow-query log, newest last.
    slow: VecDeque<SlowQuery>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    latency: BTreeMap<&'static str, LogHistogram>,
    plans: BTreeMap<String, LogHistogram>,
    watchdog: Watchdog,
}

/// The shared observability plane. One per server (owned by the
/// scheduler, shared with the executor and the connection threads);
/// internally synchronized and cheap to touch — one short-critical-
/// section mutex for aggregates, atomics for gauges, and a separate
/// writer lock for the log so file IO never blocks metrics.
pub struct Obs {
    started: Instant,
    rid: AtomicU64,
    queue_depth: AtomicI64,
    in_flight: AtomicI64,
    inner: Mutex<Inner>,
    log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A plane with metrics on and the operational log disabled.
    pub fn new() -> Obs {
        Obs {
            started: Instant::now(),
            rid: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            in_flight: AtomicI64::new(0),
            inner: Mutex::new(Inner::default()),
            log: None,
        }
    }

    /// A plane that additionally appends `mpcjoin-log-v1` lines to
    /// `path` (truncating any previous file).
    pub fn with_log(path: &Path) -> std::io::Result<Obs> {
        let file = std::fs::File::create(path)?;
        Ok(Obs {
            log: Some(Mutex::new(std::io::BufWriter::new(file))),
            ..Obs::new()
        })
    }

    /// Whether an operational log is attached.
    pub fn log_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Nanoseconds since the plane (≈ the server) started.
    pub fn uptime_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Allocate the next request id (1-based, monotone per server).
    pub fn next_rid(&self) -> u64 {
        self.rid.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bump a monotone counter.
    pub fn count(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().expect("obs lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record one request's spans into the per-phase histograms.
    pub fn observe_spans(&self, spans: &RequestSpans) {
        let mut inner = self.inner.lock().expect("obs lock");
        for (phase, ns) in [
            ("queue", spans.queue_ns),
            ("cache", spans.cache_ns),
            ("engine", spans.engine_ns),
            ("serialize", spans.serialize_ns),
            ("total", spans.total_ns),
        ] {
            inner.latency.entry(phase).or_default().observe(ns);
        }
    }

    /// Record a completed run's total latency under its plan kind.
    pub fn observe_plan(&self, plan: &str, total_ns: u64) {
        let mut inner = self.inner.lock().expect("obs lock");
        inner
            .plans
            .entry(plan.to_string())
            .or_default()
            .observe(total_ns);
    }

    /// Gauge: a job entered the admission queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Gauge: a worker picked a job up (queue → in-flight).
    pub fn job_start(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Gauge: the job's response was produced.
    pub fn job_end(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Currently executing jobs.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed).max(0) as u64
    }

    /// Feed one cold run's audit verdict to the watchdog. When the run
    /// is past [`NEAR_FRACTION`] of the envelope, `capture` is invoked
    /// (lazily — the slow path only) for the explain artifact and
    /// recovery report, the record lands in the bounded slow-query log,
    /// and a `near_violation` / `bound_violation` event is logged.
    /// Returns whether the run was a near-violation.
    pub fn record_audit(
        &self,
        tag: &RequestTag,
        verdict: &AuditVerdict,
        capture: impl FnOnce() -> (Option<Json>, Option<Json>),
    ) -> bool {
        let near = verdict.near_violation(NEAR_FRACTION);
        let violation = !verdict.within;
        let ratio = verdict.ratio;
        {
            let mut inner = self.inner.lock().expect("obs lock");
            let w = &mut inner.watchdog;
            w.audited += 1;
            if ratio.is_finite() {
                w.ratio_milli.observe((ratio * 1000.0).max(0.0) as u64);
                w.window.push_back(ratio);
                if w.window.len() > RATIO_WINDOW {
                    w.window.pop_front();
                }
            }
            if near {
                w.near_violations += 1;
                if violation {
                    w.violations += 1;
                }
            }
        }
        if near {
            let (explain, recovery) = capture();
            let slow = SlowQuery {
                tag: tag.clone(),
                plan: format!("{:?}", verdict.plan),
                ratio,
                measured: verdict.measured,
                bound: verdict.bound,
                violation,
                explain,
                recovery,
            };
            let mut fields = tag.fields();
            fields.extend([
                ("plan".into(), Json::Str(slow.plan.clone())),
                (
                    "ratio".into(),
                    if ratio.is_finite() {
                        Json::Num(ratio)
                    } else {
                        Json::Null
                    },
                ),
                ("measured".into(), Json::Num(verdict.measured as f64)),
                ("bound".into(), Json::Num(verdict.bound)),
            ]);
            let (level, event) = if violation {
                ("error", "bound_violation")
            } else {
                ("warn", "near_violation")
            };
            self.log_event(level, event, fields);
            let mut inner = self.inner.lock().expect("obs lock");
            let w = &mut inner.watchdog;
            w.slow.push_back(slow);
            if w.slow.len() > SLOW_QUERY_CAP {
                w.slow.pop_front();
            }
        }
        near
    }

    /// The current slow-query log, oldest first (for tests and dumps;
    /// scrapers read it from the stats payload).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        let inner = self.inner.lock().expect("obs lock");
        inner.watchdog.slow.iter().cloned().collect()
    }

    /// Append one event line to the operational log (no-op when the log
    /// is disabled). `ts_ns` is taken *under the writer lock*, so file
    /// order is monotone in `ts_ns` by construction. Best-effort: an IO
    /// error is reported to stderr, never to the caller — observability
    /// must not fail a query.
    pub fn log_event(&self, level: &str, event: &str, fields: Vec<(String, Json)>) {
        let Some(log) = &self.log else {
            return;
        };
        let mut w = log.lock().expect("obs log lock");
        let mut members = vec![
            ("schema".into(), Json::Str(LOG_SCHEMA.into())),
            ("ts_ns".into(), Json::Num(self.uptime_ns() as f64)),
            ("level".into(), Json::Str(level.into())),
            ("event".into(), Json::Str(event.into())),
        ];
        members.extend(fields);
        let line = Json::Obj(members).to_string_sanitized();
        if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
            eprintln!("obs log write failed: {e}");
        }
    }

    /// The full `mpcjoin-serverstats-v1` payload.
    pub fn stats_json(&self, sched: &SchedStats, cache: &CacheStats) -> Json {
        let inner = self.inner.lock().expect("obs lock");
        let hist_map = |m: &BTreeMap<String, LogHistogram>| {
            Json::Obj(m.iter().map(|(k, h)| (k.clone(), h.to_json())).collect())
        };
        let w = &inner.watchdog;
        let window = {
            let mut sorted: Vec<f64> = w.window.iter().copied().collect();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let pct = |q: f64| -> f64 {
                if sorted.is_empty() {
                    0.0
                } else {
                    sorted[((sorted.len() as f64 - 1.0) * q).floor() as usize]
                }
            };
            Json::Obj(vec![
                ("len".into(), Json::Num(sorted.len() as f64)),
                ("p50".into(), Json::Num(pct(0.50))),
                ("p95".into(), Json::Num(pct(0.95))),
                (
                    "max".into(),
                    Json::Num(sorted.last().copied().unwrap_or(0.0)),
                ),
            ])
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str(SERVERSTATS_SCHEMA.into())),
            ("uptime_ns".into(), Json::Num(self.uptime_ns() as f64)),
            ("queue_depth".into(), Json::Num(self.queue_depth() as f64)),
            ("in_flight".into(), Json::Num(self.in_flight() as f64)),
            (
                "sched".into(),
                Json::Obj(vec![
                    ("admitted".into(), Json::Num(sched.admitted as f64)),
                    ("completed".into(), Json::Num(sched.completed as f64)),
                    (
                        "rejected_overload".into(),
                        Json::Num(sched.rejected_overload as f64),
                    ),
                    (
                        "rejected_quota".into(),
                        Json::Num(sched.rejected_quota as f64),
                    ),
                    (
                        "rejected_draining".into(),
                        Json::Num(sched.rejected_draining as f64),
                    ),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(cache.hits as f64)),
                    ("misses".into(), Json::Num(cache.misses as f64)),
                    ("evictions".into(), Json::Num(cache.evictions as f64)),
                    ("len".into(), Json::Num(cache.len as f64)),
                    ("bytes".into(), Json::Num(cache.bytes as f64)),
                ]),
            ),
            (
                "counters".into(),
                Json::Obj(
                    inner
                        .counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "latency".into(),
                Json::Obj(
                    PHASES
                        .iter()
                        .map(|&p| {
                            (
                                p.to_string(),
                                inner.latency.get(p).cloned().unwrap_or_default().to_json(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("plans".into(), hist_map(&inner.plans)),
            (
                "watchdog".into(),
                Json::Obj(vec![
                    ("audited".into(), Json::Num(w.audited as f64)),
                    (
                        "near_violations".into(),
                        Json::Num(w.near_violations as f64),
                    ),
                    ("violations".into(), Json::Num(w.violations as f64)),
                    ("ratio_milli".into(), w.ratio_milli.to_json()),
                    ("window".into(), window),
                    (
                        "slow_queries".into(),
                        Json::Arr(w.slow.iter().map(SlowQuery::to_json).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// Line-oriented text exposition of [`Obs::stats_json`], suitable
    /// for scraping and for the `--obs-dump` file. Deterministic line
    /// order; `p50`/`p95` are bucket-estimates ([`LogHistogram::quantile_upper`]).
    pub fn stats_text(&self, sched: &SchedStats, cache: &CacheStats) -> String {
        let inner = self.inner.lock().expect("obs lock");
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("# {SERVERSTATS_SCHEMA} text exposition"));
        line(format!("mpcjoin_uptime_ns {}", self.uptime_ns()));
        line(format!("mpcjoin_queue_depth {}", self.queue_depth()));
        line(format!("mpcjoin_in_flight {}", self.in_flight()));
        for (name, v) in [
            ("admitted", sched.admitted),
            ("completed", sched.completed),
            ("rejected_overload", sched.rejected_overload),
            ("rejected_quota", sched.rejected_quota),
            ("rejected_draining", sched.rejected_draining),
        ] {
            line(format!("mpcjoin_sched{{counter=\"{name}\"}} {v}"));
        }
        for (name, v) in [
            ("hits", cache.hits),
            ("misses", cache.misses),
            ("evictions", cache.evictions),
            ("len", cache.len as u64),
            ("bytes", cache.bytes),
        ] {
            line(format!("mpcjoin_cache{{counter=\"{name}\"}} {v}"));
        }
        for (name, v) in &inner.counters {
            line(format!("mpcjoin_counter{{name=\"{name}\"}} {v}"));
        }
        let hist_lines =
            |out: &mut dyn FnMut(String), metric: &str, key: &str, h: &LogHistogram| {
                for (stat, v) in [
                    ("count", h.count),
                    ("sum", h.sum),
                    ("p50", h.quantile_upper(0.50)),
                    ("p95", h.quantile_upper(0.95)),
                    ("max", h.max),
                ] {
                    out(format!("{metric}{{{key},stat=\"{stat}\"}} {v}"));
                }
            };
        for phase in PHASES {
            let h = inner.latency.get(phase).cloned().unwrap_or_default();
            hist_lines(
                &mut line,
                "mpcjoin_latency_ns",
                &format!("phase=\"{phase}\""),
                &h,
            );
        }
        for (plan, h) in &inner.plans {
            hist_lines(
                &mut line,
                "mpcjoin_plan_latency_ns",
                &format!("plan=\"{plan}\""),
                h,
            );
        }
        let w = &inner.watchdog;
        for (name, v) in [
            ("audited", w.audited),
            ("near_violations", w.near_violations),
            ("violations", w.violations),
        ] {
            line(format!("mpcjoin_watchdog{{counter=\"{name}\"}} {v}"));
        }
        hist_lines(
            &mut line,
            "mpcjoin_watchdog_ratio_milli",
            "window=\"cumulative\"",
            &w.ratio_milli,
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Readers: the parsers obs_check (and the fuzz suite) drive. Strict on
// the members the cross-checks rely on, tolerant of additions.
// ---------------------------------------------------------------------------

/// A parsed `mpcjoin-log-v1` line.
#[derive(Clone, Debug)]
pub struct LogEventView {
    /// Monotone nanosecond timestamp (since server start).
    pub ts_ns: u64,
    /// `info` / `warn` / `error`.
    pub level: String,
    /// Event name (`request`, `reject`, `complete`, …).
    pub event: String,
    /// The full parsed line, for event-specific members.
    pub doc: Json,
}

impl LogEventView {
    /// Parse and validate one log line.
    pub fn parse(line: &str) -> Result<LogEventView, String> {
        let doc = Json::parse(line).map_err(|e| format!("unparseable log line: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(LOG_SCHEMA) => {}
            Some(other) => return Err(format!("unknown log schema `{other}`")),
            None => return Err("log line missing `schema`".into()),
        }
        let ts_ns = doc
            .get("ts_ns")
            .and_then(Json::as_u64)
            .ok_or("log line missing integer `ts_ns`")?;
        let level = doc
            .get("level")
            .and_then(Json::as_str)
            .ok_or("log line missing `level`")?
            .to_string();
        if !matches!(level.as_str(), "info" | "warn" | "error") {
            return Err(format!("unknown log level `{level}`"));
        }
        let event = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or("log line missing `event`")?
            .to_string();
        if event.is_empty() {
            return Err("empty `event`".into());
        }
        Ok(LogEventView {
            ts_ns,
            level,
            event,
            doc,
        })
    }
}

/// A parsed `mpcjoin-serverstats-v1` payload.
#[derive(Clone, Debug)]
pub struct StatsView {
    doc: Json,
}

impl StatsView {
    /// Parse and validate a stats payload document.
    pub fn parse(text: &str) -> Result<StatsView, String> {
        let doc = Json::parse(text).map_err(|e| format!("unparseable stats: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SERVERSTATS_SCHEMA) => {}
            Some(other) => return Err(format!("unknown stats schema `{other}`")),
            None => return Err("stats payload missing `schema`".into()),
        }
        let view = StatsView { doc };
        // The members every cross-check relies on must be present.
        for path in [
            &["uptime_ns"][..],
            &["queue_depth"],
            &["in_flight"],
            &["sched", "admitted"],
            &["sched", "completed"],
            &["sched", "rejected_overload"],
            &["sched", "rejected_quota"],
            &["sched", "rejected_draining"],
            &["cache", "hits"],
            &["cache", "misses"],
            &["watchdog", "audited"],
            &["watchdog", "near_violations"],
            &["watchdog", "violations"],
        ] {
            view.num(path)
                .ok_or_else(|| format!("stats payload missing integer `{}`", path.join(".")))?;
        }
        if view.doc.get("latency").is_none() {
            return Err("stats payload missing `latency`".into());
        }
        Ok(view)
    }

    /// Integer member at a `.`-path.
    pub fn num(&self, path: &[&str]) -> Option<u64> {
        let mut cur = &self.doc;
        for k in path {
            cur = cur.get(k)?;
        }
        cur.as_u64()
    }

    /// A named monotone counter (0 when absent — counters are created
    /// on first touch).
    pub fn counter(&self, name: &str) -> u64 {
        self.num(&["counters", name]).unwrap_or(0)
    }

    /// Bucket-estimated latency quantile of `phase`, in nanoseconds.
    pub fn latency_quantile(&self, phase: &str, q: f64) -> Option<u64> {
        let h = self.doc.get("latency")?.get(phase)?;
        let count = h.get("count")?.as_u64()?;
        if count == 0 {
            return Some(0);
        }
        let max = h.get("max")?.as_u64()?;
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for bucket in h.get("buckets")?.as_arr()? {
            let triple = bucket.as_arr()?;
            if triple.len() != 3 {
                return None;
            }
            seen += triple[2].as_u64()?;
            if seen >= rank {
                return Some((triple[1].as_u64()?.saturating_sub(1)).min(max));
            }
        }
        Some(max)
    }
}

/// Event-count summary of a validated operational log.
#[derive(Clone, Debug, Default)]
pub struct LogSummary {
    /// Total lines.
    pub lines: u64,
    /// Count per event name.
    pub events: BTreeMap<String, u64>,
    /// `request` events per frame kind (`query`, `explain`, `ping`, …).
    pub requests_by_kind: BTreeMap<String, u64>,
    /// `reject` events per reason code.
    pub rejects_by_reason: BTreeMap<String, u64>,
    /// `complete` events with `kind == "query"`.
    pub completes_query: u64,
    /// …of which served from the cache.
    pub completes_cached: u64,
    /// …of which answered with an error frame.
    pub completes_error: u64,
    /// `complete` events with `kind == "explain"`.
    pub completes_explain: u64,
}

/// Validate a full operational log: every line parses as
/// `mpcjoin-log-v1`, levels are known, `ts_ns` is non-decreasing in
/// file order, and known events carry their required members. Returns
/// the event-count summary used by [`cross_check`].
pub fn check_log(text: &str) -> Result<LogSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut summary = LogSummary::default();
    let mut last_ts = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = match LogEventView::parse(line) {
            Ok(ev) => ev,
            Err(e) => {
                errors.push(format!("line {}: {e}", lineno + 1));
                continue;
            }
        };
        if ev.ts_ns < last_ts {
            errors.push(format!(
                "line {}: ts_ns went backwards ({} < {last_ts})",
                lineno + 1,
                ev.ts_ns
            ));
        }
        last_ts = ev.ts_ns;
        summary.lines += 1;
        *summary.events.entry(ev.event.clone()).or_insert(0) += 1;
        let str_member = |k: &str| ev.doc.get(k).and_then(Json::as_str).map(str::to_string);
        match ev.event.as_str() {
            "request" => match str_member("kind") {
                Some(kind) => *summary.requests_by_kind.entry(kind).or_insert(0) += 1,
                None => errors.push(format!("line {}: request without `kind`", lineno + 1)),
            },
            "reject" => match str_member("reason") {
                Some(reason) => *summary.rejects_by_reason.entry(reason).or_insert(0) += 1,
                None => errors.push(format!("line {}: reject without `reason`", lineno + 1)),
            },
            "complete" => {
                let kind = str_member("kind");
                let outcome = str_member("outcome");
                match (kind.as_deref(), outcome.as_deref()) {
                    (Some("query"), Some(out)) => {
                        summary.completes_query += 1;
                        if matches!(ev.doc.get("cached"), Some(Json::Bool(true))) {
                            summary.completes_cached += 1;
                        }
                        if out == "error" {
                            summary.completes_error += 1;
                        } else if out != "result" {
                            errors.push(format!(
                                "line {}: unknown query outcome `{out}`",
                                lineno + 1
                            ));
                        }
                    }
                    (Some("explain"), Some(_)) => summary.completes_explain += 1,
                    _ => errors.push(format!(
                        "line {}: complete without `kind`/`outcome`",
                        lineno + 1
                    )),
                }
            }
            _ => {} // lifecycle / watchdog events need no extra members
        }
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

/// Cross-validate a log summary against a scraped stats payload and a
/// loadgen artifact. Assumes the standard CI shape: the log covers one
/// full server lifetime, the stats payload was scraped *after* all
/// query traffic, and the bench run was the server's only client.
/// Returns human-readable notes on success.
pub fn cross_check(
    log: &LogSummary,
    stats: Option<&StatsView>,
    bench: Option<&ServerArtifact>,
) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mut notes = Vec::new();
    let sched_rejects = ["overloaded", "quota_exceeded", "draining"]
        .iter()
        .map(|r| log.rejects_by_reason.get(*r).copied().unwrap_or(0))
        .sum::<u64>();

    // Internal consistency: every query frame is either rejected or
    // completed (only checkable when the wire layer logged requests).
    let query_requests = log.requests_by_kind.get("query").copied().unwrap_or(0);
    if query_requests > 0 {
        if query_requests != log.completes_query + sched_rejects {
            errors.push(format!(
                "log: {query_requests} query requests but {} completes + {sched_rejects} rejects",
                log.completes_query
            ));
        } else {
            notes.push(format!(
                "log: {query_requests} query requests = {} completes + {sched_rejects} rejects",
                log.completes_query
            ));
        }
        let explain_requests = log.requests_by_kind.get("explain").copied().unwrap_or(0);
        if explain_requests != log.completes_explain {
            errors.push(format!(
                "log: {explain_requests} explain requests but {} explain completes",
                log.completes_explain
            ));
        }
    } else {
        notes.push("log: no wire-level request events; skipping request/complete balance".into());
    }

    if let Some(stats) = stats {
        let pairs = [
            (
                "completed",
                stats.num(&["sched", "completed"]).unwrap_or(0),
                log.completes_query,
            ),
            (
                "rejected_overload",
                stats.num(&["sched", "rejected_overload"]).unwrap_or(0),
                log.rejects_by_reason
                    .get("overloaded")
                    .copied()
                    .unwrap_or(0),
            ),
            (
                "rejected_quota",
                stats.num(&["sched", "rejected_quota"]).unwrap_or(0),
                log.rejects_by_reason
                    .get("quota_exceeded")
                    .copied()
                    .unwrap_or(0),
            ),
            (
                "cache.hits",
                stats.num(&["cache", "hits"]).unwrap_or(0),
                log.completes_cached,
            ),
            (
                "watchdog.audited",
                stats.num(&["watchdog", "audited"]).unwrap_or(0),
                log.completes_query - log.completes_cached - log.completes_error,
            ),
            (
                "watchdog.near_violations",
                stats.num(&["watchdog", "near_violations"]).unwrap_or(0),
                log.events.get("near_violation").copied().unwrap_or(0)
                    + log.events.get("bound_violation").copied().unwrap_or(0),
            ),
            (
                "watchdog.violations",
                stats.num(&["watchdog", "violations"]).unwrap_or(0),
                log.events.get("bound_violation").copied().unwrap_or(0),
            ),
        ];
        for (name, from_stats, from_log) in pairs {
            if from_stats != from_log {
                errors.push(format!(
                    "stats vs log: `{name}` is {from_stats} in stats, {from_log} in the log"
                ));
            }
        }
        if errors.is_empty() {
            notes.push(format!(
                "stats vs log: {} completions, {} cache hits, {} audited — consistent",
                log.completes_query,
                log.completes_cached,
                log.completes_query - log.completes_cached - log.completes_error
            ));
        }
    }

    if let Some(bench) = bench {
        let mut sent = 0u64;
        let mut responses = 0u64;
        let mut retries = 0u64;
        let mut hits = 0u64;
        for r in &bench.records {
            sent += r.sent;
            responses += r.responses;
            retries += r.retries;
            hits += r.cache_hits;
            if r.lost != 0 || r.duplicated != 0 {
                errors.push(format!(
                    "bench: workload `{}` reports {} lost / {} duplicated",
                    r.workload, r.lost, r.duplicated
                ));
            }
        }
        if sent != responses {
            errors.push(format!(
                "bench: {sent} sent but {responses} responses (client-side loss)"
            ));
        }
        let checks = [
            ("responses vs log completes", responses, log.completes_query),
            (
                "cache hits vs log cached completes",
                hits,
                log.completes_cached,
            ),
            (
                "retries vs log backpressure rejects",
                retries,
                log.rejects_by_reason
                    .get("overloaded")
                    .copied()
                    .unwrap_or(0)
                    + log
                        .rejects_by_reason
                        .get("quota_exceeded")
                        .copied()
                        .unwrap_or(0),
            ),
        ];
        for (name, client, server) in checks {
            if client != server {
                errors.push(format!(
                    "bench vs log: {name}: client counted {client}, server logged {server}"
                ));
            }
        }
        if let Some(stats) = stats {
            let completed = stats.num(&["sched", "completed"]).unwrap_or(0);
            if responses != completed {
                errors.push(format!(
                    "bench vs stats: client received {responses} responses, server completed {completed}"
                ));
            }
        }
        if errors.is_empty() {
            notes.push(format!(
                "bench: {responses} client responses match server-side counts, 0 lost / 0 duplicated"
            ));
        }
    }

    if errors.is_empty() {
        Ok(notes)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin::prelude::PlanKind;

    fn tag(rid: u64) -> RequestTag {
        RequestTag {
            rid,
            id: rid * 10,
            session: "t".into(),
        }
    }

    fn verdict(measured: u64, bound: f64) -> AuditVerdict {
        let slack = 4.0;
        let additive = 20.0;
        AuditVerdict {
            plan: PlanKind::MatMul,
            bound,
            measured,
            ratio: if bound > 0.0 {
                measured as f64 / bound
            } else {
                0.0
            },
            slack,
            additive,
            within: (measured as f64) <= slack * bound + additive,
        }
    }

    #[test]
    fn rids_are_unique_and_monotone() {
        let obs = Obs::new();
        let a = obs.next_rid();
        let b = obs.next_rid();
        assert!(a >= 1 && b == a + 1);
    }

    #[test]
    fn watchdog_counts_near_violations_and_captures_slow_queries() {
        let obs = Obs::new();
        // envelope = 4·100 + 20 = 420; near edge at 336.
        let quiet = obs.record_audit(&tag(1), &verdict(100, 100.0), || {
            panic!("capture must be lazy")
        });
        assert!(!quiet);
        let near = obs.record_audit(&tag(2), &verdict(400, 100.0), || {
            (Some(Json::Str("plan".into())), None)
        });
        assert!(near);
        let violating = obs.record_audit(&tag(3), &verdict(500, 100.0), || (None, None));
        assert!(violating);
        let stats = obs.stats_json(&SchedStats::default(), &CacheStats::default());
        let w = stats.get("watchdog").unwrap();
        assert_eq!(w.get("audited").and_then(Json::as_u64), Some(3));
        assert_eq!(w.get("near_violations").and_then(Json::as_u64), Some(2));
        assert_eq!(w.get("violations").and_then(Json::as_u64), Some(1));
        let slow = obs.slow_queries();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].tag.rid, 2);
        assert!(!slow[0].violation);
        assert!(slow[0].explain.is_some());
        assert!(slow[1].violation);
    }

    #[test]
    fn slow_query_log_is_bounded() {
        let obs = Obs::new();
        for i in 0..(SLOW_QUERY_CAP as u64 + 9) {
            obs.record_audit(&tag(i), &verdict(10_000, 100.0), || (None, None));
        }
        let slow = obs.slow_queries();
        assert_eq!(slow.len(), SLOW_QUERY_CAP);
        assert_eq!(slow[0].tag.rid, 9, "oldest entries fall off");
    }

    #[test]
    fn stats_payload_round_trips_through_the_view() {
        let obs = Obs::new();
        obs.count("frames.query", 3);
        obs.observe_spans(&RequestSpans {
            queue_ns: 10,
            cache_ns: 5,
            engine_ns: 100,
            serialize_ns: 7,
            total_ns: 130,
        });
        obs.observe_plan("MatMul", 130);
        obs.queue_enter();
        let sched = SchedStats {
            admitted: 3,
            completed: 2,
            ..SchedStats::default()
        };
        let cache = CacheStats {
            hits: 1,
            misses: 2,
            bytes: 40,
            ..CacheStats::default()
        };
        let text = obs.stats_json(&sched, &cache).to_string_sanitized();
        let view = StatsView::parse(&text).expect("valid payload");
        assert_eq!(view.num(&["sched", "completed"]), Some(2));
        assert_eq!(view.num(&["cache", "bytes"]), Some(40));
        assert_eq!(view.num(&["queue_depth"]), Some(1));
        assert_eq!(view.counter("frames.query"), 3);
        assert_eq!(view.counter("missing"), 0);
        let p50 = view.latency_quantile("total", 0.5).unwrap();
        assert!((130..256).contains(&p50), "{p50}");
        assert_eq!(view.latency_quantile("queue", 1.0), Some(10));
    }

    #[test]
    fn text_exposition_is_scrapable() {
        let obs = Obs::new();
        obs.count("frames.ping", 1);
        obs.observe_plan("Tree", 1000);
        let text = obs.stats_text(&SchedStats::default(), &CacheStats::default());
        assert!(text.starts_with("# mpcjoin-serverstats-v1"));
        for needle in [
            "mpcjoin_uptime_ns ",
            "mpcjoin_queue_depth 0",
            "mpcjoin_sched{counter=\"completed\"} 0",
            "mpcjoin_counter{name=\"frames.ping\"} 1",
            "mpcjoin_latency_ns{phase=\"total\",stat=\"p50\"} 0",
            "mpcjoin_plan_latency_ns{plan=\"Tree\",stat=\"count\"} 1",
            "mpcjoin_watchdog{counter=\"audited\"} 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn log_lines_parse_and_stay_monotone() {
        let dir = std::env::temp_dir().join(format!("mpcjoin_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let obs = Obs::with_log(&path).expect("log file");
        obs.log_event("info", "server_start", vec![]);
        obs.log_event(
            "info",
            "request",
            vec![("kind".into(), Json::Str("query".into()))],
        );
        obs.log_event(
            "info",
            "complete",
            vec![
                ("kind".into(), Json::Str("query".into())),
                ("outcome".into(), Json::Str("result".into())),
                ("cached".into(), Json::Bool(false)),
            ],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = check_log(&text).expect("valid log");
        assert_eq!(summary.lines, 3);
        assert_eq!(summary.completes_query, 1);
        assert_eq!(summary.requests_by_kind.get("query"), Some(&1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_log_flags_broken_lines() {
        let good = "{\"schema\":\"mpcjoin-log-v1\",\"ts_ns\":5,\"level\":\"info\",\"event\":\"x\"}";
        assert!(check_log(good).is_ok());
        for bad in [
            "{\"ts_ns\":1,\"level\":\"info\",\"event\":\"x\"}", // no schema
            "{\"schema\":\"mpcjoin-log-v1\",\"ts_ns\":1,\"level\":\"loud\",\"event\":\"x\"}",
            "{\"schema\":\"mpcjoin-log-v1\",\"ts_ns\":1,\"level\":\"info\"}", // no event
            "not json",
        ] {
            assert!(check_log(bad).is_err(), "{bad}");
        }
        // Backwards time across lines.
        let text = format!("{}\n{}", good.replace("\"ts_ns\":5", "\"ts_ns\":9"), good);
        let errors = check_log(&text).unwrap_err();
        assert!(errors[0].contains("backwards"), "{errors:?}");
    }

    #[test]
    fn cross_check_balances_requests_against_outcomes() {
        let mut log = LogSummary::default();
        log.requests_by_kind.insert("query".into(), 5);
        log.completes_query = 3;
        log.rejects_by_reason.insert("overloaded".into(), 2);
        assert!(cross_check(&log, None, None).is_ok());
        log.completes_query = 2;
        let errors = cross_check(&log, None, None).unwrap_err();
        assert!(errors[0].contains("5 query requests"), "{errors:?}");
    }
}

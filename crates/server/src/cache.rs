//! Plan/result cache: canonical request digests → serialized result
//! bodies, with LRU eviction.
//!
//! ## Why caching serialized bytes is sound
//!
//! The engine's determinism guarantees (pinned by the `determinism` and
//! `engine_reuse` integration tests) make the canonical result body a
//! pure function of *(query structure, instance, semiring, cluster
//! width, plan choice, row limit)*: thread counts, tracing, metrics, and
//! recovered faults never perturb the output or the cost ledger. So the
//! cache keys on a digest of exactly those inputs and stores the body
//! **as serialized bytes**; a hit splices the stored bytes back into the
//! response frame verbatim. Bit-identity of hits to cold runs is then a
//! construction property, not a replay property — there is no second
//! execution whose output could drift.
//!
//! Requests carrying a fault plan are *never* cached (in either
//! direction): they exist to exercise the recovery path, and serving
//! them from the clean twin's entry would silently skip it. The executor
//! encodes this by digesting such requests to `None`.
//!
//! ## The digest
//!
//! The executor canonicalizes before hashing, so two requests that mean
//! the same run share an entry even when spelled differently: attribute
//! and relation *names* are erased (attributes are numbered by first
//! appearance; relations are bound to body atoms by position), member
//! order in the JSON frame is irrelevant (the frame was parsed into a
//! struct), and relation rows are sorted. The token stream is hashed
//! twice with independent seeds into a `u128` via [`digest_tokens`],
//! making accidental collisions (the only way a hit could be wrong) a
//! ~2⁻¹²⁸ event rather than a realistic one.

use mpcjoin::mpc::hash::seeded_hash;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache statistics (monotone counters + current occupancy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Cacheable requests that ran cold.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Total serialized-body bytes currently resident (an occupancy
    /// gauge for the stats plane, not a budget — capacity is entries).
    pub bytes: u64,
}

struct Entry {
    body: Arc<str>,
    /// The touch tick this entry was last used at; stale queue records
    /// (from earlier touches) are recognized by mismatch.
    tick: u64,
}

/// An LRU map from request digests to serialized canonical bodies.
///
/// Recency is tracked lazily: every touch pushes a `(key, tick)` record
/// and bumps the entry's tick; eviction pops records until one matches
/// its entry's current tick — that entry is genuinely least-recently
/// used. This keeps both hit and insert O(1) amortized without an
/// intrusive list.
pub struct ResultCache {
    cap: usize,
    map: HashMap<u128, Entry>,
    order: VecDeque<(u128, u64)>,
    tick: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache holding at most `cap` entries (`cap == 0` disables
    /// caching entirely: every lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self, key: u128) -> u64 {
        self.tick += 1;
        self.order.push_back((key, self.tick));
        self.tick
    }

    /// Look up a digest, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                self.order.push_back((key, tick));
                self.stats.hits += 1;
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a cold run's body, evicting the least-recently-used entry
    /// when full. Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: u128, body: Arc<str>) {
        if self.cap == 0 {
            return;
        }
        let tick = self.next_tick(key);
        self.stats.bytes += body.len() as u64;
        if let Some(old) = self.map.insert(key, Entry { body, tick }) {
            self.stats.bytes -= old.body.len() as u64;
        }
        while self.map.len() > self.cap {
            let Some((victim, at)) = self.order.pop_front() else {
                break; // unreachable: map non-empty ⇒ a live record exists
            };
            if self.map.get(&victim).is_some_and(|e| e.tick == at) {
                let evicted = self.map.remove(&victim).expect("checked above");
                self.stats.bytes -= evicted.body.len() as u64;
                self.stats.evictions += 1;
            }
        }
    }

    /// Counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            ..self.stats
        }
    }
}

/// Digest a canonical token stream into a 128-bit key.
pub fn digest_tokens(tokens: &[u64]) -> u128 {
    const SEED_HI: u64 = 0x6d70_636a_6f69_6e31; // "mpcjoin1"
    const SEED_LO: u64 = 0x6d70_636a_6f69_6e32; // "mpcjoin2"
    ((seeded_hash(SEED_HI, tokens) as u128) << 64) | seeded_hash(SEED_LO, tokens) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_returns_the_exact_bytes() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, body("{\"load\":7}"));
        assert_eq!(cache.get(1).as_deref(), Some("{\"load\":7}"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert_eq!(s.bytes, "{\"load\":7}".len() as u64);
    }

    #[test]
    fn byte_gauge_tracks_replacement_and_eviction() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, body("aaaa"));
        cache.insert(2, body("bb"));
        assert_eq!(cache.stats().bytes, 6);
        cache.insert(1, body("c")); // replace: 4 bytes out, 1 in
        assert_eq!(cache.stats().bytes, 3);
        cache.insert(3, body("dddddddd")); // evicts 2 (LRU)
        assert_eq!(cache.stats().bytes, 9);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, body("a"));
        cache.insert(2, body("b"));
        assert!(cache.get(1).is_some()); // 2 is now the LRU entry
        cache.insert(3, body("c"));
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinsert_refreshes_rather_than_duplicates() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, body("a"));
        cache.insert(2, body("b"));
        cache.insert(1, body("a2")); // refresh: 2 becomes the LRU entry
        cache.insert(3, body("c"));
        assert_eq!(cache.get(1).as_deref(), Some("a2"));
        assert!(cache.get(2).is_none());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, body("a"));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn many_touches_do_not_wedge_eviction() {
        // Stale recency records must be skipped, not counted as victims.
        let mut cache = ResultCache::new(2);
        cache.insert(1, body("a"));
        for _ in 0..100 {
            assert!(cache.get(1).is_some());
        }
        cache.insert(2, body("b"));
        cache.insert(3, body("c")); // must evict 2 or 1 — exactly one
        let alive = [1u128, 2, 3]
            .iter()
            .filter(|&&k| cache.get(k).is_some())
            .count();
        assert_eq!(alive, 2);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn digests_separate_and_agree() {
        let a = digest_tokens(&[1, 2, 3]);
        assert_eq!(a, digest_tokens(&[1, 2, 3]));
        assert_ne!(a, digest_tokens(&[1, 2, 4]));
        assert_ne!(a, digest_tokens(&[3, 2, 1]));
        // Both halves carry entropy (independent seeds).
        assert_ne!(a as u64, (a >> 64) as u64);
    }
}

//! The `mpcjoin-wire-v1` protocol: JSONL frames over TCP.
//!
//! Every frame is one JSON document on one line. Clients send request
//! frames (`type`: `query`, `explain`, `ping`, `stats`, `shutdown`); the
//! server answers each with exactly one response frame (`result`,
//! `explain`, `error`, `pong`, `stats`, `shutdown_ack`). Responses carry the request's `id`,
//! so clients may pipeline; ordering across distinct ids is *not*
//! guaranteed — queries complete in scheduler order, not arrival order.
//!
//! ## Query frames
//!
//! ```json
//! {"schema":"mpcjoin-wire-v1","type":"query","id":1,"session":"tenant-a",
//!  "query":"Q(a, c) :- R(a, b), S(b, c)","semiring":"count","servers":8,
//!  "plan":"auto","limit":64,
//!  "relations":{"R":[[1,2],[3,4,2]],"S":[[2,5]]}}
//! ```
//!
//! Relations are keyed by the body atom's name; each row is an integer
//! array — the edge's attribute values in atom order, plus an optional
//! trailing weight whose meaning depends on `semiring` (exactly the
//! CLI's file-input convention). Optional fields: `session` (admission
//! quotas are per-session; defaults to a per-connection identity),
//! `servers` (simulated cluster width), `plan`
//! (`auto|costbased|heuristic|baseline|matmul|line|star|starlike|tree|yannakakis|cec`),
//! `limit` (maximum output rows echoed back; all by default), `delay_ms`
//! (artificial pre-execution stall — a load-testing/straggler knob),
//! `fault_plan` (an embedded `mpcjoin-faultplan-v1` document injected
//! into the run; such runs bypass the result cache) and `fault_seed`.
//!
//! ## Explain frames
//!
//! A `type: "explain"` request carries the same members as a query frame
//! and asks the server to *compile* the query — collect statistics,
//! enumerate and price every applicable plan against the Table-1 cost
//! model, and lower the winner — without executing it. The response is
//! an `explain` frame whose `plan` member is the `mpcjoin-plan-v1`
//! document (see `mpcjoin::compiler`). Explain requests bypass the
//! result cache and the execution queue: compilation is statistics-only
//! and runs inline.
//!
//! ## Result frames and the cache-determinism invariant
//!
//! ```json
//! {"schema":"mpcjoin-wire-v1","type":"result","id":1,"cached":false,
//!  "elapsed_ns":123456,"recovery":null,"result":{…}}
//! ```
//!
//! The `result` member is the *canonical body*: plan, measured cost,
//! audit verdict, and the output rows in canonical order — everything
//! deterministic about the run, and nothing that is not (wall-clock and
//! recovery live outside it). The cache stores the body **as serialized
//! bytes** and a hit splices those bytes back verbatim, so a cache hit
//! is bit-identical to the cold run *by construction*, not by replay.
//!
//! ## Error frames
//!
//! ```json
//! {"schema":"mpcjoin-wire-v1","type":"error","id":7,"code":"overloaded",
//!  "detail":"admission queue full (64 queued)","retry_after_ms":25}
//! ```
//!
//! `code` is machine-readable: engine failures carry
//! [`MpcError::code`]'s value (`invalid_instance`, `unsupported_plan`,
//! `unrecoverable`, …); the serving layer adds `bad_frame` (unparseable
//! line — the detail names the byte offset), `bad_request` (well-formed
//! but invalid), `bad_query` (query syntax), `overloaded` (admission
//! queue full), `quota_exceeded` (per-session cap) and `draining`
//! (server is shutting down). `overloaded` and `quota_exceeded` carry
//! `retry_after_ms` — backpressure is always an explicit, retryable
//! protocol answer, never a dropped connection.

use mpcjoin::mpc::json::{escape_str, Json};
use mpcjoin::mpc::{FaultPlan, MpcError};

/// The protocol schema tag (shared with the CLI's structured errors).
pub const WIRE_SCHEMA: &str = mpcjoin::mpc::ERROR_FRAME_SCHEMA;

/// A parsed client→server frame.
#[derive(Debug)]
pub enum Frame {
    /// Run a query.
    Query(Box<QueryRequest>),
    /// Compile a query without executing it (cost-based plan selection;
    /// answered with an `explain` frame carrying the `mpcjoin-plan-v1`
    /// document).
    Explain(Box<QueryRequest>),
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Scheduler / cache / observability statistics. `format` selects
    /// the payload shape: absent (JSON, `mpcjoin-serverstats-v1`) or
    /// `"text"` (line-oriented exposition).
    Stats {
        /// Echoed request id.
        id: Option<u64>,
        /// Requested payload format (`None` = JSON).
        format: Option<String>,
    },
    /// Graceful drain-and-shutdown: stop admitting, finish in-flight
    /// queries, acknowledge, exit.
    Shutdown {
        /// Echoed request id.
        id: Option<u64>,
    },
}

/// A `type: "query"` frame, validated for shape (not yet for semantics —
/// query syntax and instance validation happen at execution).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Client-chosen request id, echoed on the response.
    pub id: u64,
    /// Admission-quota identity. Empty means "use the connection's".
    pub session: String,
    /// Datalog-style query text (see `mpcjoin::query::parse_query`).
    pub query: String,
    /// Semiring name: `count` / `bool` / `minplus` / `mincount`.
    pub semiring: String,
    /// Simulated MPC cluster width for this run.
    pub servers: usize,
    /// Plan choice: `auto`, `baseline`, or a forced algorithm name.
    pub plan: String,
    /// `(relation name, rows)`; each row is attribute values in atom
    /// order with an optional trailing weight.
    pub relations: Vec<(String, Vec<Vec<i64>>)>,
    /// Maximum output rows echoed in the body (`None` = all).
    pub limit: Option<usize>,
    /// Artificial pre-execution stall in milliseconds (testing knob).
    pub delay_ms: u64,
    /// Deterministic fault schedule to inject (bypasses the cache).
    pub fault_plan: Option<FaultPlan>,
}

/// A rejected frame: the protocol error to answer with.
#[derive(Debug)]
pub struct WireError {
    /// The offending request's id, when it could still be extracted.
    pub id: Option<u64>,
    /// Machine-readable error code (`bad_frame` / `bad_request` / …).
    pub code: &'static str,
    /// Human-readable description (byte offsets for parse errors).
    pub detail: String,
}

impl WireError {
    fn frame(code: &'static str, detail: impl Into<String>) -> WireError {
        WireError {
            id: None,
            code,
            detail: detail.into(),
        }
    }

    /// Render as an error frame line.
    pub fn to_frame(&self) -> String {
        error_frame(self.id, self.code, &self.detail, None)
    }
}

/// JSON member `key` as a `u64`, with a typed error.
fn get_u64(doc: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WireError::frame(
                "bad_request",
                format!("`{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn get_str(doc: &Json, key: &str) -> Result<Option<String>, WireError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| WireError::frame("bad_request", format!("`{key}` must be a string"))),
    }
}

/// Parse one JSONL line into a [`Frame`].
pub fn parse_frame(line: &str) -> Result<Frame, WireError> {
    let doc = Json::parse(line)
        .map_err(|e| WireError::frame("bad_frame", format!("unparseable frame: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(WireError::frame("bad_frame", "frame must be a JSON object"));
    }
    if let Some(schema) = doc.get("schema") {
        if schema.as_str() != Some(WIRE_SCHEMA) {
            return Err(WireError::frame(
                "bad_frame",
                format!("unknown schema (expected `{WIRE_SCHEMA}`)"),
            ));
        }
    }
    // From here on the id is extractable, so semantic errors echo it.
    let id = get_u64(&doc, "id")?;
    let with_id = |mut e: WireError| {
        e.id = id;
        e
    };
    let kind = get_str(&doc, "type")?
        .ok_or_else(|| with_id(WireError::frame("bad_frame", "missing `type`")))?;
    match kind.as_str() {
        "ping" => Ok(Frame::Ping { id }),
        "stats" => Ok(Frame::Stats {
            id,
            format: get_str(&doc, "format").map_err(with_id)?,
        }),
        "shutdown" => Ok(Frame::Shutdown { id }),
        "query" => parse_query_frame(&doc, id)
            .map(|req| Frame::Query(Box::new(req)))
            .map_err(with_id),
        "explain" => parse_query_frame(&doc, id)
            .map(|req| Frame::Explain(Box::new(req)))
            .map_err(with_id),
        other => Err(with_id(WireError::frame(
            "bad_frame",
            format!("unknown frame type `{other}`"),
        ))),
    }
}

fn parse_query_frame(doc: &Json, id: Option<u64>) -> Result<QueryRequest, WireError> {
    let id = id.ok_or_else(|| WireError::frame("bad_request", "query frames require an `id`"))?;
    let query =
        get_str(doc, "query")?.ok_or_else(|| WireError::frame("bad_request", "missing `query`"))?;
    let relations = match doc.get("relations") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(name, rows)| Ok((name.clone(), parse_rows(name, rows)?)))
            .collect::<Result<_, WireError>>()?,
        Some(_) => {
            return Err(WireError::frame(
                "bad_request",
                "`relations` must be an object of name -> row arrays",
            ))
        }
    };
    let fault_plan = match doc.get("fault_plan") {
        None | Some(Json::Null) => None,
        Some(plan) => {
            let text = plan
                .to_string_compact()
                .map_err(|e| WireError::frame("bad_request", format!("`fault_plan`: {e}")))?;
            let mut plan = FaultPlan::from_json(&text)
                .map_err(|e| WireError::frame("invalid_fault_plan", e.to_string()))?;
            if let Some(seed) = get_u64(doc, "fault_seed")? {
                plan = plan.with_seed(seed);
            }
            Some(plan)
        }
    };
    Ok(QueryRequest {
        id,
        session: get_str(doc, "session")?.unwrap_or_default(),
        query,
        semiring: get_str(doc, "semiring")?.unwrap_or_else(|| "count".into()),
        servers: get_u64(doc, "servers")?.unwrap_or(8) as usize,
        plan: get_str(doc, "plan")?.unwrap_or_else(|| "auto".into()),
        relations,
        limit: get_u64(doc, "limit")?.map(|n| n as usize),
        delay_ms: get_u64(doc, "delay_ms")?.unwrap_or(0),
        fault_plan,
    })
}

fn parse_rows(name: &str, rows: &Json) -> Result<Vec<Vec<i64>>, WireError> {
    let rows = rows.as_arr().ok_or_else(|| {
        WireError::frame("bad_request", format!("relation `{name}` must be an array"))
    })?;
    rows.iter()
        .map(|row| {
            let row = row.as_arr().ok_or_else(|| {
                WireError::frame(
                    "bad_request",
                    format!("relation `{name}`: each row must be an array"),
                )
            })?;
            row.iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|f| f.fract() == 0.0 && f.abs() <= i64::MAX as f64)
                        .map(|f| f as i64)
                        .ok_or_else(|| {
                            WireError::frame(
                                "bad_request",
                                format!("relation `{name}`: row values must be integers"),
                            )
                        })
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Response frame builders. Result frames splice the canonical body in as
// raw bytes (see the module docs): the cache's bit-identity guarantee
// rests on never re-encoding a stored body.
// ---------------------------------------------------------------------------

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// A `result` frame around an already-serialized canonical body.
pub fn result_frame(
    id: u64,
    cached: bool,
    elapsed_ns: u128,
    recovery: Option<&Json>,
    body: &str,
) -> String {
    let recovery = recovery.map_or_else(|| "null".to_string(), Json::to_string_sanitized);
    format!(
        "{{\"schema\":\"{WIRE_SCHEMA}\",\"type\":\"result\",\"id\":{id},\"cached\":{cached},\
         \"elapsed_ns\":{elapsed_ns},\"recovery\":{recovery},\"result\":{body}}}"
    )
}

/// An `explain` frame around an already-serialized `mpcjoin-plan-v1`
/// document (spliced as raw bytes, like result bodies).
pub fn explain_frame(id: u64, plan_body: &str) -> String {
    format!(
        "{{\"schema\":\"{WIRE_SCHEMA}\",\"type\":\"explain\",\"id\":{id},\"plan\":{plan_body}}}"
    )
}

/// An `error` frame.
pub fn error_frame(
    id: Option<u64>,
    code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let retry = retry_after_ms.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"schema\":\"{WIRE_SCHEMA}\",\"type\":\"error\",\"id\":{},\"code\":{},\"detail\":{},\
         \"retry_after_ms\":{retry}}}",
        id_json(id),
        escape_str(code),
        escape_str(detail),
    )
}

/// The error frame for an engine failure (reuses [`MpcError::code`]).
pub fn mpc_error_frame(id: u64, e: &MpcError) -> String {
    error_frame(Some(id), e.code(), &e.to_string(), None)
}

/// A `pong` frame.
pub fn pong_frame(id: Option<u64>) -> String {
    format!(
        "{{\"schema\":\"{WIRE_SCHEMA}\",\"type\":\"pong\",\"id\":{}}}",
        id_json(id)
    )
}

/// A `shutdown_ack` frame reporting how many queries the server completed
/// over its lifetime (in-flight work included — the ack is sent only
/// after the drain).
pub fn shutdown_ack_frame(id: Option<u64>, completed: u64) -> String {
    format!(
        "{{\"schema\":\"{WIRE_SCHEMA}\",\"type\":\"shutdown_ack\",\"id\":{},\"completed\":{completed}}}",
        id_json(id)
    )
}

/// Splice the server-allocated request id into a finished response
/// frame, as a final `"rid"` member. Operates on the serialized bytes —
/// every frame builder emits a JSON object, and the splice point (the
/// closing brace) is *after* any verbatim-spliced body, so cached
/// result bytes are untouched and bit-identity is preserved.
pub fn stamp_rid(frame: &str, rid: u64) -> String {
    match frame.rfind('}') {
        Some(at) => format!("{},\"rid\":{rid}{}", &frame[..at], &frame[at..]),
        None => frame.to_string(), // not an object — leave it alone
    }
}

/// A client-side view of one response line.
#[derive(Debug)]
pub struct ResponseView {
    /// Frame type (`result`, `error`, `pong`, `stats`, `shutdown_ack`).
    pub kind: String,
    /// Echoed request id (absent on connection-level errors).
    pub id: Option<u64>,
    /// `cached` marker of a result frame.
    pub cached: bool,
    /// The canonical body of a result frame, re-serialized compactly.
    /// The serializer is deterministic, so two byte-identical bodies
    /// compare equal here and vice versa.
    pub result: Option<String>,
    /// Error code of an error frame.
    pub code: Option<String>,
    /// Error detail of an error frame.
    pub detail: Option<String>,
    /// Retry hint of a backpressure rejection.
    pub retry_after_ms: Option<u64>,
    /// `load` from a result body (convenience for load accounting).
    pub load: Option<u64>,
    /// The `mpcjoin-plan-v1` document of an `explain` frame,
    /// re-serialized compactly.
    pub plan: Option<String>,
    /// Whether the frame carried a non-null recovery report.
    pub recovered: bool,
    /// `completed` of a `shutdown_ack`.
    pub completed: Option<u64>,
    /// Server-allocated request id ([`stamp_rid`]), when present.
    pub rid: Option<u64>,
}

impl ResponseView {
    /// Parse a server response line.
    pub fn parse(line: &str) -> Result<ResponseView, String> {
        let doc = Json::parse(line).map_err(|e| format!("unparseable response: {e}"))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response missing `type`")?
            .to_string();
        let result = doc.get("result");
        Ok(ResponseView {
            kind,
            id: doc.get("id").and_then(Json::as_u64),
            cached: matches!(doc.get("cached"), Some(Json::Bool(true))),
            load: result.and_then(|r| r.get("load")).and_then(Json::as_u64),
            result: result
                .map(|r| r.to_string_compact().map_err(|e| e.to_string()))
                .transpose()?,
            plan: doc
                .get("plan")
                .map(|p| p.to_string_compact().map_err(|e| e.to_string()))
                .transpose()?,
            code: doc.get("code").and_then(Json::as_str).map(str::to_string),
            detail: doc.get("detail").and_then(Json::as_str).map(str::to_string),
            retry_after_ms: doc.get("retry_after_ms").and_then(Json::as_u64),
            recovered: doc
                .get("recovery")
                .is_some_and(|r| !matches!(r, Json::Null)),
            completed: doc.get("completed").and_then(Json::as_u64),
            rid: doc.get("rid").and_then(Json::as_u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_frame_round_trips() {
        let line = "{\"schema\":\"mpcjoin-wire-v1\",\"type\":\"query\",\"id\":7,\
                    \"session\":\"t1\",\"query\":\"Q(a,c) :- R(a,b), S(b,c)\",\
                    \"servers\":4,\"plan\":\"baseline\",\"limit\":10,\
                    \"relations\":{\"R\":[[1,2],[3,4,2]],\"S\":[[2,5]]}}";
        let Frame::Query(req) = parse_frame(line).unwrap() else {
            panic!("expected a query frame");
        };
        assert_eq!(req.id, 7);
        assert_eq!(req.session, "t1");
        assert_eq!(req.servers, 4);
        assert_eq!(req.plan, "baseline");
        assert_eq!(req.limit, Some(10));
        assert_eq!(req.relations[0].1, vec![vec![1, 2], vec![3, 4, 2]]);
        assert!(req.fault_plan.is_none());
    }

    #[test]
    fn defaults_are_filled_in() {
        let Frame::Query(req) =
            parse_frame("{\"type\":\"query\",\"id\":1,\"query\":\"Q(a) :- R(a)\"}").unwrap()
        else {
            panic!("expected a query frame");
        };
        assert_eq!(req.semiring, "count");
        assert_eq!(req.servers, 8);
        assert_eq!(req.plan, "auto");
        assert_eq!(req.limit, None);
        assert!(req.relations.is_empty());
    }

    #[test]
    fn malformed_frames_are_bad_frame_with_offsets() {
        let err = parse_frame("{\"type\":\"query\",").unwrap_err();
        assert_eq!(err.code, "bad_frame");
        assert!(err.detail.contains("byte "), "{}", err.detail);
        let err = parse_frame("[]").unwrap_err();
        assert_eq!(err.code, "bad_frame");
        let err = parse_frame("{\"schema\":\"other-v9\",\"type\":\"ping\"}").unwrap_err();
        assert_eq!(err.code, "bad_frame");
    }

    #[test]
    fn semantic_errors_echo_the_id() {
        let err = parse_frame("{\"type\":\"query\",\"id\":42}").unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(err.id, Some(42));
        let err = parse_frame("{\"type\":\"warp\",\"id\":3}").unwrap_err();
        assert_eq!(err.id, Some(3));
        // Bad row shapes are caught at the frame boundary.
        let err = parse_frame(
            "{\"type\":\"query\",\"id\":1,\"query\":\"Q(a) :- R(a)\",\"relations\":{\"R\":[[1.5]]}}",
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.detail.contains("integers"));
    }

    #[test]
    fn embedded_fault_plans_parse_and_reject() {
        let line = "{\"type\":\"query\",\"id\":1,\"query\":\"Q(a) :- R(a)\",\
                    \"fault_plan\":{\"schema\":\"mpcjoin-faultplan-v1\",\"seed\":9,\
                    \"max_retries\":4,\"backoff_us\":0,\"faults\":[{\"kind\":\"reorder\",\"round\":1}]}}";
        let Frame::Query(req) = parse_frame(line).unwrap() else {
            panic!("expected a query frame");
        };
        assert!(req.fault_plan.is_some());
        let err = parse_frame(
            "{\"type\":\"query\",\"id\":1,\"query\":\"Q(a) :- R(a)\",\"fault_plan\":{\"nope\":1}}",
        )
        .unwrap_err();
        assert_eq!(err.code, "invalid_fault_plan");
    }

    #[test]
    fn explain_frames_parse_like_queries_and_answer_with_a_plan() {
        let line = "{\"type\":\"explain\",\"id\":5,\"query\":\"Q(a,c) :- R(a,b), S(b,c)\",\
                    \"relations\":{\"R\":[[1,2]],\"S\":[[2,3]]}}";
        let Frame::Explain(req) = parse_frame(line).unwrap() else {
            panic!("expected an explain frame");
        };
        assert_eq!(req.id, 5);
        assert_eq!(req.plan, "auto");

        let body = "{\"schema\":\"mpcjoin-plan-v1\",\"chosen\":\"MatMul\"}";
        let view = ResponseView::parse(&explain_frame(5, body)).unwrap();
        assert_eq!(view.kind, "explain");
        assert_eq!(view.id, Some(5));
        assert_eq!(view.plan.as_deref(), Some(body));
    }

    #[test]
    fn response_frames_parse_back() {
        let body = "{\"plan\":\"MatMul\",\"load\":12,\"rows\":[]}";
        let line = result_frame(9, true, 1234, None, body);
        let view = ResponseView::parse(&line).unwrap();
        assert_eq!(view.kind, "result");
        assert_eq!(view.id, Some(9));
        assert!(view.cached);
        assert_eq!(view.load, Some(12));
        assert_eq!(view.result.as_deref(), Some(body));
        assert!(!view.recovered);

        let line = error_frame(Some(3), "overloaded", "queue full", Some(25));
        let view = ResponseView::parse(&line).unwrap();
        assert_eq!(view.kind, "error");
        assert_eq!(view.code.as_deref(), Some("overloaded"));
        assert_eq!(view.retry_after_ms, Some(25));

        let view = ResponseView::parse(&pong_frame(Some(1))).unwrap();
        assert_eq!(view.kind, "pong");
        let view = ResponseView::parse(&shutdown_ack_frame(None, 17)).unwrap();
        assert_eq!(view.completed, Some(17));
    }

    #[test]
    fn stats_frames_carry_an_optional_format() {
        let Frame::Stats { id, format } = parse_frame("{\"type\":\"stats\",\"id\":2}").unwrap()
        else {
            panic!("expected a stats frame");
        };
        assert_eq!((id, format), (Some(2), None));
        let Frame::Stats { format, .. } =
            parse_frame("{\"type\":\"stats\",\"format\":\"text\"}").unwrap()
        else {
            panic!("expected a stats frame");
        };
        assert_eq!(format.as_deref(), Some("text"));
        let err = parse_frame("{\"type\":\"stats\",\"id\":1,\"format\":7}").unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(err.id, Some(1));
    }

    #[test]
    fn stamp_rid_appends_without_touching_the_body() {
        let body = "{\"plan\":\"Line\",\"load\":3,\"rows\":[[[1,7],\"Count(2)\"]]}";
        let stamped = stamp_rid(&result_frame(9, true, 5, None, body), 42);
        let view = ResponseView::parse(&stamped).unwrap();
        assert_eq!(view.rid, Some(42));
        assert_eq!(view.id, Some(9));
        assert_eq!(view.result.as_deref(), Some(body), "body bytes untouched");
        // Every response-frame builder stays parseable after stamping.
        for frame in [
            error_frame(None, "overloaded", "queue full", Some(25)),
            pong_frame(Some(1)),
            explain_frame(5, "{\"schema\":\"mpcjoin-plan-v1\"}"),
            shutdown_ack_frame(None, 3),
        ] {
            let view = ResponseView::parse(&stamp_rid(&frame, 7)).unwrap();
            assert_eq!(view.rid, Some(7), "{frame}");
        }
    }

    #[test]
    fn result_frame_splices_the_body_verbatim() {
        // The body is spliced as raw bytes: any deterministic serializer
        // output survives the frame round-trip bit-exactly.
        let body = "{\"plan\":\"Line\",\"load\":3,\"rows\":[[[1,7],\"Count(2)\"]]}";
        let cold = result_frame(1, false, 111, None, body);
        let hit = result_frame(2, true, 222, None, body);
        let a = ResponseView::parse(&cold).unwrap().result.unwrap();
        let b = ResponseView::parse(&hit).unwrap().result.unwrap();
        assert_eq!(a, b);
        assert_eq!(a, body);
    }
}

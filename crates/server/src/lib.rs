//! # mpcjoin-server
//!
//! A multi-tenant query *service* over the simulated MPC engine: the
//! `mpcjoin-serve` binary speaks a JSONL-over-TCP protocol
//! (`mpcjoin-wire-v1`, [`wire`]), schedules query jobs on a bounded
//! worker pool with per-session admission quotas ([`sched`]), and caches
//! canonical results keyed by a request digest ([`cache`]) — cache hits
//! are bit-identical to cold runs by construction. The `loadgen` binary
//! replays mixed workloads against a running server and reports
//! throughput and latency as a `mpcjoin-bench-server-v1` artifact.
//!
//! Everything is `std`-only (TCP via `std::net`, concurrency via
//! `Mutex`/`Condvar`), in keeping with the workspace's
//! zero-third-party-dependency rule.
//!
//! ## Layering
//!
//! ```text
//! serve.rs (TCP accept loop, connection framing)
//!    │ submit(QueryRequest, respond)
//! sched.rs (admission queue → worker pool → drain)
//!    │ execute(&QueryRequest) → frame
//! run.rs  (digest → cache | QueryEngine run → canonical body)
//!    │
//! wire.rs (frame parsing/rendering)   cache.rs (LRU digest → bytes)
//! ```
//!
//! The serving layer never touches engine internals: it goes through
//! `mpcjoin::QueryEngine` exactly like the CLI does, and leans on the
//! engine's documented determinism guarantees (see `crates/core`) for
//! cache soundness.
//!
//! The observability plane ([`obs`]) is threaded through every layer —
//! request ids at the wire, queue-wait spans in the scheduler, cache /
//! engine / serialization spans and the bound-regression watchdog in
//! the executor — and is *measurement-only*: results and the cost
//! ledger are bit-identical with it enabled or disabled.

pub mod cache;
pub mod obs;
pub mod run;
pub mod sched;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use obs::{Obs, RequestSpans, RequestTag, LOG_SCHEMA, SERVERSTATS_SCHEMA};
pub use run::Executor;
pub use sched::{SchedStats, Scheduler, ServerConfig};

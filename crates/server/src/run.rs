//! The executor: turn a validated [`QueryRequest`] into exactly one
//! response frame.
//!
//! One [`Executor`] is shared by every scheduler worker. It owns the
//! [`ResultCache`] and a pool of [`QueryEngine`]s keyed by
//! `(servers, plan, instrumented)` — engines are deliberately *reused*
//! across requests, sessions, and semirings; the `engine_reuse`
//! integration test pins that a reused engine's runs are bit-identical
//! to fresh-engine runs, which is what makes both the pool and the
//! result cache sound.
//!
//! ## The canonical result body
//!
//! A successful run serializes to a *canonical body*: plan, measured
//! cost ledger, audit verdict, and the output rows in canonical order.
//! Everything in it is deterministic; wall-clock time and the recovery
//! report are deliberately excluded (they ride on the outer frame),
//! because the body is what the cache stores and replays bit-exactly.
//! Output rows are `[[value…], "annotation"]` pairs using the
//! semiring's `Debug` rendering — the same rendering for cold and
//! cached responses, trivially, since cached responses are the cold
//! response's bytes.

use crate::cache::{digest_tokens, CacheStats, ResultCache};
use crate::obs::{Obs, RequestSpans, RequestTag};
use crate::wire::{
    error_frame, explain_frame, mpc_error_frame, result_frame, QueryRequest, ResponseView,
};
use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;
use mpcjoin::query::{parse_query, ParsedQuery};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Executes requests against the simulated cluster. Shared (behind an
/// `Arc`) by all scheduler workers; internally synchronized.
pub struct Executor {
    /// Upper bound on a request's simulated cluster width.
    pub max_servers: usize,
    /// Worker threads for per-server local computation inside one run.
    pub threads_per_job: usize,
    /// When set, per-query trace/metrics artifacts are written here.
    pub artifact_dir: Option<PathBuf>,
    /// The observability plane (shared with the scheduler and the wire
    /// layer). Measures and counts *around* runs, never inside them.
    obs: Arc<Obs>,
    cache: Mutex<ResultCache>,
    engines: Mutex<HashMap<(usize, String, bool), Arc<QueryEngine>>>,
}

impl Executor {
    /// An executor with a result cache of `cache_cap` entries.
    pub fn new(
        max_servers: usize,
        threads_per_job: usize,
        cache_cap: usize,
        artifact_dir: Option<PathBuf>,
        obs: Arc<Obs>,
    ) -> Self {
        Executor {
            max_servers,
            threads_per_job,
            artifact_dir,
            obs,
            cache: Mutex::new(ResultCache::new(cache_cap)),
            engines: Mutex::new(HashMap::new()),
        }
    }

    /// Current cache counters (for `stats` frames).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Execute one query request, returning its response frame (a result
    /// frame or an error frame — never nothing, never a panic).
    pub fn execute(&self, req: &QueryRequest) -> String {
        self.execute_observed(req, 0, 0)
    }

    /// [`Executor::execute`] under a server-allocated request id, with
    /// the queue-wait span already measured by the scheduler. Records
    /// per-phase spans and the completion event; the frame itself is the
    /// same either way — observation never changes a response byte.
    pub fn execute_observed(&self, req: &QueryRequest, rid: u64, queue_ns: u64) -> String {
        if req.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(req.delay_ms));
        }
        let started = Instant::now();
        let tag = RequestTag {
            rid,
            id: req.id,
            session: req.session.clone(),
        };
        match self.respond(req, started, &tag, queue_ns) {
            Ok(frame) => frame,
            Err(frame) => {
                let code = ResponseView::parse(&frame)
                    .ok()
                    .and_then(|v| v.code)
                    .unwrap_or_else(|| "unknown".into());
                self.obs.count(&format!("error.{code}"), 1);
                let mut fields = tag.fields();
                fields.extend([
                    ("kind".into(), Json::Str("query".into())),
                    ("outcome".into(), Json::Str("error".into())),
                    ("code".into(), Json::Str(code)),
                    ("cached".into(), Json::Bool(false)),
                ]);
                self.obs.log_event("info", "complete", fields);
                frame
            }
        }
    }

    /// Compile one explain request, returning its response frame (an
    /// `explain` frame carrying the `mpcjoin-plan-v1` document, or an
    /// error frame). Compilation is statistics-only — no simulated
    /// cluster runs — so callers may answer explain requests inline
    /// without going through the execution queue.
    pub fn explain(&self, req: &QueryRequest) -> String {
        self.explain_observed(req, 0)
    }

    /// [`Executor::explain`] under a server-allocated request id.
    pub fn explain_observed(&self, req: &QueryRequest, rid: u64) -> String {
        let tag = RequestTag {
            rid,
            id: req.id,
            session: req.session.clone(),
        };
        let (outcome, code, frame) = match self.respond_explain(req) {
            Ok(frame) => ("result", None, frame),
            Err(frame) => {
                let code = ResponseView::parse(&frame)
                    .ok()
                    .and_then(|v| v.code)
                    .unwrap_or_else(|| "unknown".into());
                self.obs.count(&format!("error.{code}"), 1);
                ("error", Some(code), frame)
            }
        };
        let mut fields = tag.fields();
        fields.extend([
            ("kind".into(), Json::Str("explain".into())),
            ("outcome".into(), Json::Str(outcome.into())),
        ]);
        if let Some(code) = code {
            fields.push(("code".into(), Json::Str(code)));
        }
        self.obs.log_event("info", "complete", fields);
        frame
    }

    /// Parse + validate the request-level fields shared by query and
    /// explain frames. `Err` carries an already-rendered error frame.
    fn validate(&self, req: &QueryRequest) -> Result<(ParsedQuery, PlanChoice), String> {
        let parsed = parse_query(&req.query)
            .map_err(|e| error_frame(Some(req.id), "bad_query", &e.to_string(), None))?;
        if req.servers == 0 || req.servers > self.max_servers {
            return Err(error_frame(
                Some(req.id),
                "bad_request",
                &format!(
                    "`servers` must be between 1 and {} (got {})",
                    self.max_servers, req.servers
                ),
                None,
            ));
        }
        let choice =
            mpcjoin::parse_plan_choice(&req.plan).map_err(|e| mpc_error_frame(req.id, &e))?;
        Ok((parsed, choice))
    }

    fn respond_explain(&self, req: &QueryRequest) -> Result<String, String> {
        let (parsed, choice) = self.validate(req)?;
        match req.semiring.as_str() {
            "count" => {
                self.explain_semiring(
                    req,
                    &parsed,
                    choice,
                    |w| Count(w.unwrap_or(1).max(0) as u64),
                )
            }
            "bool" => self.explain_semiring(req, &parsed, choice, |_| BoolRing(true)),
            "minplus" => self.explain_semiring(req, &parsed, choice, |w| {
                TropicalMin::finite(w.unwrap_or(0))
            }),
            "mincount" => {
                self.explain_semiring(req, &parsed, choice, |w| MinCount::path(w.unwrap_or(0)))
            }
            other => Err(error_frame(
                Some(req.id),
                "bad_request",
                &format!("unknown semiring `{other}` (expected count|bool|minplus|mincount)"),
                None,
            )),
        }
    }

    fn explain_semiring<S: Semiring>(
        &self,
        req: &QueryRequest,
        parsed: &ParsedQuery,
        choice: PlanChoice,
        weight: impl FnMut(Option<i64>) -> S + Copy,
    ) -> Result<String, String> {
        let rels = build_relations(req, parsed, weight)?;
        let engine = self.engine_for(req.servers, &req.plan, choice, false);
        let ex = engine
            .explain(&parsed.query, &rels)
            .map_err(|e| mpc_error_frame(req.id, &e))?;
        let body = ex.to_json(Some(&parsed.names)).to_string_sanitized();
        Ok(explain_frame(req.id, &body))
    }

    /// `Err` carries an already-rendered error frame.
    fn respond(
        &self,
        req: &QueryRequest,
        started: Instant,
        tag: &RequestTag,
        queue_ns: u64,
    ) -> Result<String, String> {
        let (parsed, choice) = self.validate(req)?;
        match req.semiring.as_str() {
            "count" => self.run_semiring(req, &parsed, choice, started, tag, queue_ns, |w| {
                Count(w.unwrap_or(1).max(0) as u64)
            }),
            "bool" => self.run_semiring(req, &parsed, choice, started, tag, queue_ns, |_| {
                BoolRing(true)
            }),
            "minplus" => self.run_semiring(req, &parsed, choice, started, tag, queue_ns, |w| {
                TropicalMin::finite(w.unwrap_or(0))
            }),
            "mincount" => self.run_semiring(req, &parsed, choice, started, tag, queue_ns, |w| {
                MinCount::path(w.unwrap_or(0))
            }),
            other => Err(error_frame(
                Some(req.id),
                "bad_request",
                &format!("unknown semiring `{other}` (expected count|bool|minplus|mincount)"),
                None,
            )),
        }
    }

    #[allow(clippy::too_many_arguments)] // internal plumbing of one call chain
    fn run_semiring<S: Semiring + std::fmt::Debug>(
        &self,
        req: &QueryRequest,
        parsed: &ParsedQuery,
        choice: PlanChoice,
        started: Instant,
        tag: &RequestTag,
        queue_ns: u64,
        weight: impl FnMut(Option<i64>) -> S + Copy,
    ) -> Result<String, String> {
        self.obs.count(&format!("semiring.{}", req.semiring), 1);
        let rels = build_relations(req, parsed, weight)?;

        // Faulted requests bypass the cache in both directions: they must
        // actually exercise the recovery path, and their (identical)
        // output must not shadow the clean run's entry semantics.
        let cache_started = Instant::now();
        let key = if req.fault_plan.is_none() {
            Some(digest_tokens(&digest_stream(req, parsed)))
        } else {
            None
        };
        let hit = key.and_then(|k| self.cache.lock().expect("cache lock").get(k));
        let cache_ns = elapsed_ns(cache_started);
        if let Some(body) = hit {
            let frame = result_frame(req.id, true, started.elapsed().as_nanos(), None, &body);
            self.finish(
                tag,
                None,
                true,
                None,
                RequestSpans {
                    queue_ns,
                    cache_ns,
                    engine_ns: 0,
                    serialize_ns: 0,
                    total_ns: elapsed_ns(started),
                },
            );
            return Ok(frame);
        }

        let instrumented = self.artifact_dir.is_some();
        let engine = self.engine_for(req.servers, &req.plan, choice, instrumented);
        let engine_started = Instant::now();
        let result = match &req.fault_plan {
            // A fault plan is per-request state, so it runs on a derived
            // engine; the pooled one stays fault-free.
            Some(plan) => (*engine).clone().faults(plan.clone()),
            None => (*engine).clone(),
        }
        .run(&parsed.query, &rels)
        .map_err(|e| mpc_error_frame(req.id, &e))?;
        let engine_ns = elapsed_ns(engine_started);

        self.write_artifacts(req, &result, tag);
        let serialize_started = Instant::now();
        let body = canonical_body(&result, req.limit);
        let recovery = result.recovery.as_ref().map(RecoveryReport::to_json);
        let serialize_ns = elapsed_ns(serialize_started);
        if let Some(k) = key {
            self.cache
                .lock()
                .expect("cache lock")
                .insert(k, Arc::from(body.as_str()));
        }

        // Watchdog: feed the verdict; on a near-violation, capture the
        // explain artifact (a statistics-only recompile — read-only, so
        // it cannot perturb the run or the ledger) and recovery report.
        self.obs.record_audit(tag, &result.audit, || {
            let explain = engine
                .explain(&parsed.query, &rels)
                .ok()
                .map(|ex| ex.to_json(Some(&parsed.names)));
            (explain, recovery.clone())
        });

        let plan = format!("{:?}", result.plan);
        let frame = result_frame(
            req.id,
            false,
            started.elapsed().as_nanos(),
            recovery.as_ref(),
            &body,
        );
        self.finish(
            tag,
            Some(&plan),
            false,
            result.audit.ratio.is_finite().then_some(result.audit.ratio),
            RequestSpans {
                queue_ns,
                cache_ns,
                engine_ns,
                serialize_ns,
                total_ns: elapsed_ns(started),
            },
        );
        Ok(frame)
    }

    /// Record a successful run's spans + histograms and log its
    /// `complete` event.
    fn finish(
        &self,
        tag: &RequestTag,
        plan: Option<&str>,
        cached: bool,
        ratio: Option<f64>,
        spans: RequestSpans,
    ) {
        self.obs.observe_spans(&spans);
        if let Some(plan) = plan {
            self.obs.observe_plan(plan, spans.total_ns);
        }
        let mut fields = tag.fields();
        fields.extend([
            ("kind".into(), Json::Str("query".into())),
            ("outcome".into(), Json::Str("result".into())),
            ("cached".into(), Json::Bool(cached)),
            (
                "plan".into(),
                plan.map_or(Json::Null, |p| Json::Str(p.into())),
            ),
            ("ratio".into(), ratio.map_or(Json::Null, Json::Num)),
            ("spans".into(), spans.to_json()),
        ]);
        self.obs.log_event("info", "complete", fields);
    }

    fn engine_for(
        &self,
        servers: usize,
        plan_name: &str,
        choice: PlanChoice,
        instrumented: bool,
    ) -> Arc<QueryEngine> {
        let mut pool = self.engines.lock().expect("engine pool lock");
        Arc::clone(
            pool.entry((servers, plan_name.to_string(), instrumented))
                .or_insert_with(|| {
                    Arc::new(
                        QueryEngine::new(servers)
                            .threads(self.threads_per_job)
                            .plan(choice)
                            .trace(instrumented)
                            .metrics(instrumented),
                    )
                }),
        )
    }

    /// Flush this run's trace/metrics artifacts (observability is
    /// best-effort: a full disk must not fail the query). Traces carry
    /// the request tag (`rid`/`id`/`session`), linking the artifact's
    /// `mpcjoin-trace-v3` round events to the span + log plane, and the
    /// rid lands in the filename so pipelined duplicates of one client
    /// id never overwrite each other.
    fn write_artifacts<S: Semiring>(
        &self,
        req: &QueryRequest,
        result: &ExecutionResult<S>,
        tag: &RequestTag,
    ) {
        let Some(dir) = &self.artifact_dir else {
            return;
        };
        let session: String = req
            .session
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if let Some(trace) = &result.trace {
            let path = dir.join(format!("trace_{session}_{}_r{}.json", req.id, tag.rid));
            let doc = trace.to_json_tagged(
                Some(&result.audit.to_json()),
                result.recovery.as_ref(),
                Some(&tag.to_json()),
            );
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("artifact write failed: {}: {e}", path.display());
            }
        }
        if let Some(snap) = &result.metrics {
            let path = dir.join(format!("metrics_{session}_{}_r{}.json", req.id, tag.rid));
            if let Err(e) = std::fs::write(&path, snap.to_json()) {
                eprintln!("artifact write failed: {}: {e}", path.display());
            }
        }
    }
}

/// Saturating nanosecond elapsed-time read.
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Bind the request's relation rows to the parsed query's body atoms and
/// build annotated relations; row values follow the edge's attribute
/// order, with an optional trailing weight.
fn build_relations<S: Semiring>(
    req: &QueryRequest,
    parsed: &ParsedQuery,
    mut weight: impl FnMut(Option<i64>) -> S,
) -> Result<Vec<Relation<S>>, String> {
    let bad = |detail: String| error_frame(Some(req.id), "bad_request", &detail, None);
    let mut rels = Vec::with_capacity(parsed.relation_names.len());
    for (i, name) in parsed.relation_names.iter().enumerate() {
        let rows = req
            .relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| rows)
            .ok_or_else(|| bad(format!("no rows provided for relation `{name}`")))?;
        let edge = &parsed.query.edges()[i];
        let arity = edge.attrs().len();
        let mut rel = Relation::empty(Schema::new(edge.attrs().to_vec()));
        for (j, row) in rows.iter().enumerate() {
            if row.len() != arity && row.len() != arity + 1 {
                return Err(bad(format!(
                    "relation `{name}` row {j}: expected {arity} values (plus an optional weight), got {}",
                    row.len()
                )));
            }
            let values: Vec<Value> = row[..arity]
                .iter()
                .map(|&v| {
                    Value::try_from(v)
                        .map_err(|_| bad(format!("relation `{name}` row {j}: negative value {v}")))
                })
                .collect::<Result<_, _>>()?;
            rel.push(values, weight(row.get(arity).copied()));
        }
        rels.push(rel);
    }
    Ok(rels)
}

/// The canonical token stream a cacheable request digests to. Relation
/// and attribute *names* never enter the stream (attributes are the
/// parser's appearance-ordered ids; relations bind to atoms by
/// position), and rows are sorted, so renamed or reordered spellings of
/// the same run share a cache entry.
fn digest_stream(req: &QueryRequest, parsed: &ParsedQuery) -> Vec<u64> {
    let mut tokens: Vec<u64> = vec![
        match req.semiring.as_str() {
            "count" => 0,
            "bool" => 1,
            "minplus" => 2,
            _ => 3, // mincount (unknown semirings never reach the digest)
        },
        req.servers as u64,
        mpcjoin::mpc::hash::stable_hash(req.plan.as_str()),
        req.limit.map_or(u64::MAX, |n| n as u64),
        // Query structure: edges (attr ids in edge order), then outputs.
        parsed.query.edges().len() as u64,
    ];
    for edge in parsed.query.edges() {
        tokens.push(edge.attrs().len() as u64);
        tokens.extend(edge.attrs().iter().map(|a| a.0 as u64));
    }
    for a in parsed.query.output() {
        tokens.push(a.0 as u64);
    }
    // Relation data, bound in atom order, rows sorted.
    for name in &parsed.relation_names {
        let rows = req
            .relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| rows.clone())
            .unwrap_or_default();
        let mut rows = rows;
        rows.sort_unstable();
        tokens.push(rows.len() as u64);
        for row in rows {
            tokens.push(row.len() as u64);
            tokens.extend(row.iter().map(|&v| v as u64));
        }
    }
    tokens
}

/// Serialize a run's deterministic summary + output rows. Excludes
/// wall-clock and recovery by design (see the module docs).
fn canonical_body<S: Semiring + std::fmt::Debug>(
    result: &ExecutionResult<S>,
    limit: Option<usize>,
) -> String {
    let canonical = result.output.canonical();
    let shown = limit.unwrap_or(canonical.len()).min(canonical.len());
    let rows: Vec<Json> = canonical[..shown]
        .iter()
        .map(|(row, annot)| {
            Json::Arr(vec![
                Json::Arr(row.iter().map(|&v| Json::Num(v as f64)).collect()),
                Json::Str(format!("{annot:?}")),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("plan".into(), Json::Str(format!("{:?}", result.plan))),
        ("load".into(), Json::Num(result.cost.load as f64)),
        ("rounds".into(), Json::Num(result.cost.rounds as f64)),
        (
            "total_units".into(),
            Json::Num(result.cost.total_units as f64),
        ),
        ("output_rows".into(), Json::Num(result.output.len() as f64)),
        ("output_skew".into(), Json::Num(result.output_skew)),
        ("audit".into(), result.audit.to_json()),
        ("rows".into(), Json::Arr(rows)),
    ])
    // The sanitized printer is deterministic and total (non-finite
    // numbers — e.g. the skew of an empty output — become null instead
    // of failing), which is exactly the cache's requirement.
    .to_string_sanitized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{parse_frame, Frame, ResponseView};

    fn request(line: &str) -> QueryRequest {
        match parse_frame(line).expect("frame parses") {
            Frame::Query(req) => *req,
            other => panic!("expected a query frame, got {other:?}"),
        }
    }

    fn mm_request(id: u64) -> QueryRequest {
        request(&format!(
            "{{\"type\":\"query\",\"id\":{id},\"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\
             \"servers\":4,\
             \"relations\":{{\"R\":[[1,10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
        ))
    }

    fn executor() -> Executor {
        Executor::new(64, 1, 16, None, Arc::new(Obs::new()))
    }

    #[test]
    fn cold_run_then_cache_hit_bit_identical() {
        let ex = executor();
        let cold = ResponseView::parse(&ex.execute(&mm_request(1))).unwrap();
        assert_eq!(cold.kind, "result");
        assert!(!cold.cached);
        let hit = ResponseView::parse(&ex.execute(&mm_request(2))).unwrap();
        assert!(hit.cached, "identical request must hit");
        assert_eq!(cold.result, hit.result, "hit must be bit-identical");
        let stats = ex.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_result_matches_oracle_and_body_shape() {
        let ex = executor();
        let view = ResponseView::parse(&ex.execute(&mm_request(1))).unwrap();
        let body = Json::parse(view.result.as_deref().unwrap()).unwrap();
        assert_eq!(body.get("plan").and_then(Json::as_str), Some("MatMul"));
        // (1, 7) reachable via b = 10 and b = 11 ⇒ Count(2).
        let rows = body.get("rows").and_then(Json::as_arr).unwrap();
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| r.to_string_compact().unwrap())
            .collect();
        assert!(
            rendered.iter().any(|r| r == "[[1,7],\"Count(2)\"]"),
            "{rendered:?}"
        );
        assert!(body.get("elapsed_ns").is_none(), "body is wall-clock-free");
        assert!(body.get("recovery").is_none(), "recovery rides the frame");
    }

    #[test]
    fn digest_ignores_names_and_row_order() {
        let ex = executor();
        assert!(
            !ResponseView::parse(&ex.execute(&mm_request(1)))
                .unwrap()
                .cached
        );
        // Same run, different spelling: renamed attrs/relations, rows
        // shuffled, members reordered.
        let renamed = request(
            "{\"type\":\"query\",\"id\":9,\"servers\":4,\
             \"relations\":{\"Hop2\":[[11,7],[10,7]],\"Hop1\":[[2,10],[1,11],[1,10]]},\
             \"query\":\"Out(u, w) :- Hop1(u, v), Hop2(v, w)\"}",
        );
        let view = ResponseView::parse(&ex.execute(&renamed)).unwrap();
        assert!(view.cached, "canonicalized digest must match");
    }

    #[test]
    fn digest_separates_different_runs() {
        let ex = executor();
        let base = mm_request(1);
        assert!(!ResponseView::parse(&ex.execute(&base)).unwrap().cached);
        for tweak in [
            "\"servers\":8",
            "\"semiring\":\"bool\"",
            "\"plan\":\"tree\"",
            "\"limit\":1",
        ] {
            let line = format!(
                "{{\"type\":\"query\",\"id\":5,{tweak},\
                 \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\
                 \"relations\":{{\"R\":[[1,10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}}}"
            );
            let mut req = request(&line);
            if !line.contains("servers") {
                req.servers = base.servers;
            }
            let view = ResponseView::parse(&ex.execute(&req)).unwrap();
            assert!(!view.cached, "{tweak} must change the digest");
        }
    }

    #[test]
    fn faulted_requests_bypass_the_cache_and_recover() {
        let ex = executor();
        let clean = ResponseView::parse(&ex.execute(&mm_request(1))).unwrap();
        let mut faulted = mm_request(2);
        faulted.fault_plan = Some(FaultPlan::new(11).retries(10).reorder(1));
        let view = ResponseView::parse(&ex.execute(&faulted)).unwrap();
        assert_eq!(view.kind, "result");
        assert!(!view.cached, "faulted twin must not be served from cache");
        assert!(view.recovered, "recovery report must ride the frame");
        assert_eq!(
            view.result, clean.result,
            "recovered output is bit-identical to the clean twin"
        );
        // And the faulted run must not have poisoned the cache either.
        let mut again = mm_request(3);
        again.fault_plan = Some(FaultPlan::new(11).retries(10).reorder(1));
        assert!(!ResponseView::parse(&ex.execute(&again)).unwrap().cached);
    }

    #[test]
    fn errors_are_frames_with_engine_codes() {
        let ex = executor();
        let mut req = mm_request(1);
        req.query = "Q(a c) :- R(a, b)".into();
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.code.as_deref(), Some("bad_query"));

        let mut req = mm_request(2);
        req.plan = "star".into(); // wrong shape for a matmul query
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.code.as_deref(), Some("unsupported_plan"));

        let mut req = mm_request(3);
        req.relations.pop();
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.code.as_deref(), Some("bad_request"));

        let mut req = mm_request(4);
        req.servers = 10_000;
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.code.as_deref(), Some("bad_request"));

        let mut req = mm_request(5);
        req.semiring = "tropical".into();
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.code.as_deref(), Some("bad_request"));
        assert_eq!(view.id, Some(5));
    }

    #[test]
    fn explain_requests_compile_without_executing() {
        let ex = executor();
        let req = request(
            "{\"type\":\"query\",\"id\":11,\"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\
             \"servers\":4,\
             \"relations\":{\"R\":[[1,10],[1,11],[2,10]],\"S\":[[10,7],[11,7]]}}",
        );
        let view = ResponseView::parse(&ex.explain(&req)).unwrap();
        assert_eq!(view.kind, "explain");
        assert_eq!(view.id, Some(11));
        let plan = Json::parse(view.plan.as_deref().unwrap()).unwrap();
        assert_eq!(
            plan.get("schema").and_then(Json::as_str),
            Some("mpcjoin-plan-v1")
        );
        assert_eq!(plan.get("chosen").and_then(Json::as_str), Some("MatMul"));
        assert!(plan.get("candidates").and_then(Json::as_arr).is_some());
        // Compilation is side-effect-free: no cache entry was created.
        let stats = ex.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn unknown_plan_names_get_the_typed_error() {
        let ex = executor();
        let mut req = mm_request(8);
        req.plan = "warp".into();
        let view = ResponseView::parse(&ex.execute(&req)).unwrap();
        assert_eq!(view.kind, "error");
        assert_eq!(view.code.as_deref(), Some("unknown_plan"));
        assert!(view.detail.as_deref().unwrap().contains("cec"));
    }

    #[test]
    fn weighted_semirings_execute() {
        let line = "{\"type\":\"query\",\"id\":1,\"semiring\":\"minplus\",\"servers\":4,\
                    \"query\":\"Q(a, c) :- R(a, b), S(b, c)\",\
                    \"relations\":{\"R\":[[1,10,5],[1,11,2]],\"S\":[[10,7,1],[11,7,9]]}}";
        let view = ResponseView::parse(&executor().execute(&request(line))).unwrap();
        let body = Json::parse(view.result.as_deref().unwrap()).unwrap();
        let rows = body.get("rows").and_then(Json::as_arr).unwrap();
        // Shortest 1→7 cost: min(5 + 1, 2 + 9) = 6.
        let rendered = rows[0].to_string_compact().unwrap();
        assert!(rendered.contains('6'), "{rendered}");
    }
}

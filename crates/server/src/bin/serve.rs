//! `mpcjoin-serve` — the query service daemon.
//!
//! ```text
//! mpcjoin-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!               [--session-quota N] [--cache-cap N] [--max-servers P]
//!               [--threads N] [--retry-after-ms MS] [--artifact-dir DIR]
//! ```
//!
//! Binds a TCP listener (`--addr 127.0.0.1:0` by default — port 0 picks
//! a free port, printed on the first stdout line as
//! `mpcjoin-serve listening on <addr>` so harnesses can scrape it),
//! then serves the `mpcjoin-wire-v1` JSONL protocol (see
//! `mpcjoin_server::wire`): one thread per connection reads frames, query
//! jobs go through the shared scheduler (bounded queue, per-session
//! quotas, explicit backpressure), and responses are written back on the
//! requesting connection as they complete — pipelined requests may
//! complete out of order; match on `id`.
//!
//! A `shutdown` frame triggers the graceful path: admission closes
//! (later submissions get `draining` errors), every queued and in-flight
//! query runs to completion and its response is delivered, per-query
//! artifacts are flushed (they are written synchronously at the end of
//! each run), the `shutdown_ack` frame reports the lifetime completion
//! count, and the process exits 0.

use mpcjoin_server::wire::{self, Frame};
use mpcjoin_server::{Scheduler, ServerConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn usage() -> &'static str {
    "usage: mpcjoin-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
     \x20      [--session-quota N] [--cache-cap N] [--max-servers P]\n\
     \x20      [--threads N] [--retry-after-ms MS] [--artifact-dir DIR]"
}

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        let parse_usize = |name: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("{name} expects a non-negative integer, got `{v}`"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => cfg.workers = parse_usize("--workers", value("--workers")?)?.max(1),
            "--queue-cap" => cfg.queue_cap = parse_usize("--queue-cap", value("--queue-cap")?)?,
            "--session-quota" => {
                cfg.session_quota =
                    parse_usize("--session-quota", value("--session-quota")?)?.max(1)
            }
            "--cache-cap" => cfg.cache_cap = parse_usize("--cache-cap", value("--cache-cap")?)?,
            "--max-servers" => {
                cfg.max_servers = parse_usize("--max-servers", value("--max-servers")?)?.max(1)
            }
            "--threads" => {
                cfg.threads_per_job = parse_usize("--threads", value("--threads")?)?.max(1)
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms =
                    parse_usize("--retry-after-ms", value("--retry-after-ms")?)? as u64
            }
            "--artifact-dir" => {
                cfg.artifact_dir = Some(std::path::PathBuf::from(value("--artifact-dir")?))
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok((addr, cfg))
}

/// Write one frame line to a shared connection writer; returns `false`
/// when the peer has gone away (the job's result is then dropped — the
/// work itself already completed and was cached/counted normally).
fn send(writer: &Mutex<BufWriter<TcpStream>>, frame: &str) -> bool {
    let mut w = writer.lock().expect("connection writer lock");
    writeln!(w, "{frame}").and_then(|()| w.flush()).is_ok()
}

fn stats_frame(id: Option<u64>, sched: &Scheduler) -> String {
    let s = sched.stats();
    let c = sched.executor().cache_stats();
    let id = id.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"schema\":\"{}\",\"type\":\"stats\",\"id\":{id},\
         \"admitted\":{},\"completed\":{},\"rejected_overload\":{},\
         \"rejected_quota\":{},\"rejected_draining\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{}}}}}",
        wire::WIRE_SCHEMA,
        s.admitted,
        s.completed,
        s.rejected_overload,
        s.rejected_quota,
        s.rejected_draining,
        c.hits,
        c.misses,
        c.evictions,
        c.len,
    )
}

fn handle_connection(
    stream: TcpStream,
    conn_id: u64,
    sched: Arc<Scheduler>,
    stopping: Arc<AtomicBool>,
    local: SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    // Sessions default to a per-connection identity so anonymous clients
    // are quota'd individually rather than pooled under "".
    let default_session = format!("conn-{conn_id}");
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else {
            break; // peer reset mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        match wire::parse_frame(&line) {
            Err(e) => {
                if !send(&writer, &e.to_frame()) {
                    break;
                }
            }
            Ok(Frame::Ping { id }) => {
                if !send(&writer, &wire::pong_frame(id)) {
                    break;
                }
            }
            Ok(Frame::Stats { id }) => {
                if !send(&writer, &stats_frame(id, &sched)) {
                    break;
                }
            }
            Ok(Frame::Shutdown { id }) => {
                // Drain synchronously: by the time the ack goes out, every
                // admitted query has been answered and its artifacts
                // flushed.
                let completed = sched.drain();
                send(&writer, &wire::shutdown_ack_frame(id, completed));
                stopping.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the process can exit.
                let _ = TcpStream::connect(local);
                return;
            }
            Ok(Frame::Explain(req)) => {
                // Compilation is statistics-only (no simulated cluster
                // run), so it is answered inline rather than queued.
                if !send(&writer, &sched.executor().explain(&req)) {
                    break;
                }
            }
            Ok(Frame::Query(req)) => {
                let mut req = *req;
                if req.session.is_empty() {
                    req.session = default_session.clone();
                }
                let writer = Arc::clone(&writer);
                sched.submit(req, move |frame| {
                    send(&writer, &frame);
                });
            }
        }
    }
}

fn main() -> ExitCode {
    let (addr, cfg) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &cfg.artifact_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("--artifact-dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("mpcjoin-serve listening on {local}");
    let _ = std::io::stdout().flush();

    let sched = Arc::new(Scheduler::new(cfg));
    let stopping = Arc::new(AtomicBool::new(false));
    let conn_counter = AtomicU64::new(0);
    for stream in listener.incoming() {
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let conn_id = conn_counter.fetch_add(1, Ordering::Relaxed);
        let sched = Arc::clone(&sched);
        let stopping = Arc::clone(&stopping);
        std::thread::spawn(move || handle_connection(stream, conn_id, sched, stopping, local));
    }
    // Drain is idempotent; on the shutdown path the work already finished
    // and this just stops the worker threads. Connection reader threads
    // still blocked on idle peers die with the process.
    let completed = sched.shutdown();
    println!("mpcjoin-serve: drained, {completed} queries completed");
    ExitCode::SUCCESS
}

//! `mpcjoin-serve` — the query service daemon.
//!
//! ```text
//! mpcjoin-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!               [--session-quota N] [--cache-cap N] [--max-servers P]
//!               [--threads N] [--retry-after-ms MS] [--artifact-dir DIR]
//!               [--log FILE] [--obs-dump FILE]
//! ```
//!
//! Binds a TCP listener (`--addr 127.0.0.1:0` by default — port 0 picks
//! a free port, printed on the first stdout line as
//! `mpcjoin-serve listening on <addr>` so harnesses can scrape it),
//! then serves the `mpcjoin-wire-v1` JSONL protocol (see
//! `mpcjoin_server::wire`): one thread per connection reads frames, query
//! jobs go through the shared scheduler (bounded queue, per-session
//! quotas, explicit backpressure), and responses are written back on the
//! requesting connection as they complete — pipelined requests may
//! complete out of order; match on `id`.
//!
//! A `shutdown` frame triggers the graceful path: admission closes
//! (later submissions get `draining` errors), every queued and in-flight
//! query runs to completion and its response is delivered, per-query
//! artifacts are flushed (they are written synchronously at the end of
//! each run), the `shutdown_ack` frame reports the lifetime completion
//! count, and the process exits 0.
//!
//! ## Observability
//!
//! Every incoming line gets a server-allocated request id; every
//! response frame echoes it as a final `rid` member. `--log FILE`
//! appends `mpcjoin-log-v1` JSONL events (lifecycle, request, reject,
//! complete-with-spans, watchdog); `--obs-dump FILE` writes the text
//! exposition of the server metrics at drain time. A `stats` frame
//! returns the legacy counters *plus* queue depth, in-flight count,
//! uptime, per-error-code counters, and the full
//! `mpcjoin-serverstats-v1` payload under `stats`;
//! `{"type":"stats","format":"text"}` returns the text exposition.

use mpcjoin::mpc::json::{escape_str, Json};
use mpcjoin_server::wire::{self, Frame};
use mpcjoin_server::{Scheduler, ServerConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn usage() -> &'static str {
    "usage: mpcjoin-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
     \x20      [--session-quota N] [--cache-cap N] [--max-servers P]\n\
     \x20      [--threads N] [--retry-after-ms MS] [--artifact-dir DIR]\n\
     \x20      [--log FILE] [--obs-dump FILE]"
}

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        let parse_usize = |name: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("{name} expects a non-negative integer, got `{v}`"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => cfg.workers = parse_usize("--workers", value("--workers")?)?.max(1),
            "--queue-cap" => cfg.queue_cap = parse_usize("--queue-cap", value("--queue-cap")?)?,
            "--session-quota" => {
                cfg.session_quota =
                    parse_usize("--session-quota", value("--session-quota")?)?.max(1)
            }
            "--cache-cap" => cfg.cache_cap = parse_usize("--cache-cap", value("--cache-cap")?)?,
            "--max-servers" => {
                cfg.max_servers = parse_usize("--max-servers", value("--max-servers")?)?.max(1)
            }
            "--threads" => {
                cfg.threads_per_job = parse_usize("--threads", value("--threads")?)?.max(1)
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms =
                    parse_usize("--retry-after-ms", value("--retry-after-ms")?)? as u64
            }
            "--artifact-dir" => {
                cfg.artifact_dir = Some(std::path::PathBuf::from(value("--artifact-dir")?))
            }
            "--log" => cfg.log_file = Some(std::path::PathBuf::from(value("--log")?)),
            "--obs-dump" => cfg.obs_dump = Some(std::path::PathBuf::from(value("--obs-dump")?)),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok((addr, cfg))
}

/// Write one frame line to a shared connection writer; returns `false`
/// when the peer has gone away (the job's result is then dropped — the
/// work itself already completed and was cached/counted normally).
fn send(writer: &Mutex<BufWriter<TcpStream>>, frame: &str) -> bool {
    let mut w = writer.lock().expect("connection writer lock");
    writeln!(w, "{frame}").and_then(|()| w.flush()).is_ok()
}

/// The `stats` response. The legacy top-level members (lifetime
/// scheduler counters, `cache{hits,misses,evictions,len}`) are kept
/// bit-compatible for existing parsers; the expansion adds gauges
/// (`queue_depth`, `in_flight`, `uptime_ns`), per-error-code counters
/// (`errors`), and the full `mpcjoin-serverstats-v1` payload (`stats`).
fn stats_frame(id: Option<u64>, sched: &Scheduler) -> String {
    let s = sched.stats();
    let c = sched.executor().cache_stats();
    let obs = sched.obs();
    let doc = sched.stats_doc();
    let errors = match doc.get("counters") {
        Some(Json::Obj(counters)) => counters
            .iter()
            .filter_map(|(name, v)| {
                name.strip_prefix("error.")
                    .map(|code| (code.to_string(), v.clone()))
            })
            .collect(),
        _ => Vec::new(),
    };
    Json::Obj(vec![
        ("schema".into(), Json::Str(wire::WIRE_SCHEMA.into())),
        ("type".into(), Json::Str("stats".into())),
        ("id".into(), id.map_or(Json::Null, |v| Json::Num(v as f64))),
        ("admitted".into(), Json::Num(s.admitted as f64)),
        ("completed".into(), Json::Num(s.completed as f64)),
        (
            "rejected_overload".into(),
            Json::Num(s.rejected_overload as f64),
        ),
        ("rejected_quota".into(), Json::Num(s.rejected_quota as f64)),
        (
            "rejected_draining".into(),
            Json::Num(s.rejected_draining as f64),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(c.hits as f64)),
                ("misses".into(), Json::Num(c.misses as f64)),
                ("evictions".into(), Json::Num(c.evictions as f64)),
                ("len".into(), Json::Num(c.len as f64)),
                ("bytes".into(), Json::Num(c.bytes as f64)),
            ]),
        ),
        ("queue_depth".into(), Json::Num(obs.queue_depth() as f64)),
        ("in_flight".into(), Json::Num(obs.in_flight() as f64)),
        ("uptime_ns".into(), Json::Num(obs.uptime_ns() as f64)),
        ("errors".into(), Json::Obj(errors)),
        ("stats".into(), doc),
    ])
    .to_string_sanitized()
}

/// The `stats` response in text-exposition form (the payload is a
/// single escaped string member).
fn stats_text_frame(id: Option<u64>, sched: &Scheduler) -> String {
    format!(
        "{{\"schema\":\"{}\",\"type\":\"stats\",\"id\":{},\"text\":{}}}",
        wire::WIRE_SCHEMA,
        id.map_or_else(|| "null".to_string(), |v| v.to_string()),
        escape_str(&sched.stats_text()),
    )
}

fn handle_connection(
    stream: TcpStream,
    conn_id: u64,
    sched: Arc<Scheduler>,
    stopping: Arc<AtomicBool>,
    local: SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    // Sessions default to a per-connection identity so anonymous clients
    // are quota'd individually rather than pooled under "".
    let default_session = format!("conn-{conn_id}");
    let obs = Arc::clone(sched.obs());
    obs.log_event(
        "info",
        "conn_open",
        vec![("conn".into(), Json::Num(conn_id as f64))],
    );
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else {
            break; // peer reset mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        // Every line — parseable or not — gets a server request id; all
        // responses echo it via `stamp_rid`.
        let rid = obs.next_rid();
        let request_event = |kind: &str, id: Option<u64>, session: &str| {
            obs.count(&format!("frames.{kind}"), 1);
            obs.log_event(
                "info",
                "request",
                vec![
                    ("rid".into(), Json::Num(rid as f64)),
                    ("id".into(), id.map_or(Json::Null, |v| Json::Num(v as f64))),
                    ("session".into(), Json::Str(session.into())),
                    ("kind".into(), Json::Str(kind.into())),
                    ("conn".into(), Json::Num(conn_id as f64)),
                ],
            );
        };
        match wire::parse_frame(&line) {
            Err(e) => {
                obs.count(&format!("error.{}", e.code), 1);
                obs.log_event(
                    "info",
                    "reject",
                    vec![
                        ("rid".into(), Json::Num(rid as f64)),
                        (
                            "id".into(),
                            e.id.map_or(Json::Null, |v| Json::Num(v as f64)),
                        ),
                        ("reason".into(), Json::Str(e.code.into())),
                        ("conn".into(), Json::Num(conn_id as f64)),
                    ],
                );
                if !send(&writer, &wire::stamp_rid(&e.to_frame(), rid)) {
                    break;
                }
            }
            Ok(Frame::Ping { id }) => {
                request_event("ping", id, &default_session);
                if !send(&writer, &wire::stamp_rid(&wire::pong_frame(id), rid)) {
                    break;
                }
            }
            Ok(Frame::Stats { id, format }) => {
                request_event("stats", id, &default_session);
                let frame = match format.as_deref() {
                    None => stats_frame(id, &sched),
                    Some("text") => stats_text_frame(id, &sched),
                    Some(other) => {
                        obs.count("error.bad_request", 1);
                        wire::error_frame(
                            id,
                            "bad_request",
                            &format!("unknown stats format `{other}` (expected `text`)"),
                            None,
                        )
                    }
                };
                if !send(&writer, &wire::stamp_rid(&frame, rid)) {
                    break;
                }
            }
            Ok(Frame::Shutdown { id }) => {
                request_event("shutdown", id, &default_session);
                // Drain synchronously: by the time the ack goes out, every
                // admitted query has been answered and its artifacts
                // flushed.
                let completed = sched.drain();
                send(
                    &writer,
                    &wire::stamp_rid(&wire::shutdown_ack_frame(id, completed), rid),
                );
                stopping.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the process can exit.
                let _ = TcpStream::connect(local);
                return;
            }
            Ok(Frame::Explain(req)) => {
                request_event("explain", Some(req.id), &req.session);
                // Compilation is statistics-only (no simulated cluster
                // run), so it is answered inline rather than queued.
                let frame = sched.executor().explain_observed(&req, rid);
                if !send(&writer, &wire::stamp_rid(&frame, rid)) {
                    break;
                }
            }
            Ok(Frame::Query(req)) => {
                let mut req = *req;
                if req.session.is_empty() {
                    req.session = default_session.clone();
                }
                request_event("query", Some(req.id), &req.session);
                let writer = Arc::clone(&writer);
                sched.submit(rid, req, move |frame| {
                    send(&writer, &wire::stamp_rid(&frame, rid));
                });
            }
        }
    }
    obs.log_event(
        "info",
        "conn_close",
        vec![("conn".into(), Json::Num(conn_id as f64))],
    );
}

fn main() -> ExitCode {
    let (addr, cfg) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &cfg.artifact_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("--artifact-dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("mpcjoin-serve listening on {local}");
    let _ = std::io::stdout().flush();

    let sched = Arc::new(Scheduler::new(cfg));
    let stopping = Arc::new(AtomicBool::new(false));
    let conn_counter = AtomicU64::new(0);
    for stream in listener.incoming() {
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let conn_id = conn_counter.fetch_add(1, Ordering::Relaxed);
        let sched = Arc::clone(&sched);
        let stopping = Arc::clone(&stopping);
        std::thread::spawn(move || handle_connection(stream, conn_id, sched, stopping, local));
    }
    // Drain is idempotent; on the shutdown path the work already finished
    // and this just stops the worker threads. Connection reader threads
    // still blocked on idle peers die with the process.
    let completed = sched.shutdown();
    println!("mpcjoin-serve: drained, {completed} queries completed");
    ExitCode::SUCCESS
}

//! `loadgen` — drive a running `mpcjoin-serve` with a mixed workload and
//! verify the serving invariants end to end.
//!
//! ```text
//! loadgen --addr HOST:PORT [--sessions N] [--queries K] [--seed S]
//!         [--servers P] [--artifact FILE] [--fault-plan FILE]
//!         [--stats-out FILE] [--wait-ready] [--shutdown]
//! ```
//!
//! The flags compose in sequence: `--wait-ready` polls (ping → pong,
//! 30 s budget) before the run, then the workload runs, then
//! `--shutdown` sends a graceful drain + ack after it. `--sessions 0`
//! skips the workload, so `loadgen --addr X --sessions 0 --shutdown`
//! is a standalone drain and `--sessions 0 --wait-ready` a standalone
//! readiness probe.
//!
//! The default mode opens one TCP connection per session (default 32)
//! and replays, per session, `K` seed-generated queries from each
//! workload class — matrix multiplication (`count`), a 3-hop line query
//! (`minplus`), and a 3-arm star query (`bool`) — then re-sends the
//! session's first matrix query verbatim, asserting the response is a
//! cache hit whose `result` member is byte-identical to the cold
//! response. With `--fault-plan FILE`, session 0 additionally re-sends
//! its first matrix query with the fault schedule embedded, asserting
//! the recovered output is byte-identical to the clean twin and that a
//! recovery report rode the frame (recorded as workload `fault`).
//!
//! Requests are serial per session (concurrency = sessions); a
//! backpressure rejection (`overloaded` / `quota_exceeded`) sleeps the
//! advertised `retry_after_ms` and resends — retries are counted, never
//! failures. The run **fails** (nonzero exit) if any query goes
//! unanswered or double-answered, any cache-hit or fault-twin
//! bit-identity check fails, or — when at least one cache check ran —
//! the server produced zero cache hits.
//!
//! After the workload the final `stats` frame is scraped and the
//! server's own counters are cross-checked against the client-side
//! tallies (completions vs responses, rejections vs retries, cache
//! hits) — the scheduler bumps its counters *before* responding, so
//! once the last response has been read any drift is a lost or
//! duplicated frame and the run fails. `--stats-out FILE` saves the
//! scraped frame for `obs_check` / CI.
//!
//! `--artifact FILE` writes a `mpcjoin-bench-server-v1` document (see
//! `mpcjoin_bench::server`): per-class query counts and summed simulated
//! loads are deterministic (diffed by `bench_check` against
//! `results/BENCH_baseline_server.json`); throughput and latency
//! percentiles — client-side per class plus the server's own
//! end-to-end p50/p95 from the scraped histogram — are informational.

use mpcjoin::mpc::hash::seeded_hash;
use mpcjoin::mpc::json::Json;
use mpcjoin::mpc::DetRng;
use mpcjoin::prelude::*;
use mpcjoin_bench::server::{ServerArtifact, ServerRecord};
use mpcjoin_server::obs::StatsView;
use mpcjoin_server::wire::ResponseView;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const CLASSES: [&str; 3] = ["mm", "line", "star"];

struct Args {
    addr: String,
    sessions: usize,
    queries: usize,
    seed: u64,
    servers: usize,
    artifact: Option<String>,
    fault_plan: Option<String>,
    stats_out: Option<String>,
    wait_ready: bool,
    shutdown: bool,
}

fn usage() -> &'static str {
    "usage: loadgen --addr HOST:PORT [--sessions N] [--queries K] [--seed S]\n\
     \x20      [--servers P] [--artifact FILE] [--fault-plan FILE]\n\
     \x20      [--stats-out FILE] [--wait-ready] [--shutdown]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        sessions: 32,
        queries: 2,
        seed: 7,
        servers: 8,
        artifact: None,
        fault_plan: None,
        stats_out: None,
        wait_ready: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|_| "--sessions expects a positive integer".to_string())?
            }
            "--queries" => {
                args.queries = value("--queries")?
                    .parse()
                    .map_err(|_| "--queries expects a positive integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--servers" => {
                args.servers = value("--servers")?
                    .parse()
                    .map_err(|_| "--servers expects a positive integer".to_string())?
            }
            "--artifact" => args.artifact = Some(value("--artifact")?),
            "--fault-plan" => args.fault_plan = Some(value("--fault-plan")?),
            "--stats-out" => args.stats_out = Some(value("--stats-out")?),
            "--wait-ready" => args.wait_ready = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    if args.queries == 0 {
        return Err("--queries must be at least 1".into());
    }
    Ok(args)
}

/// One connection with line-oriented request/response helpers.
struct Conn {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Conn {
            writer: BufWriter::new(stream),
            reader: BufReader::new(read_half),
        })
    }

    fn send(&mut self, frame: &str) -> Result<(), String> {
        writeln!(self.writer, "{frame}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))
    }

    fn recv_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("connection closed by server".into()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    fn recv(&mut self) -> Result<ResponseView, String> {
        let line = self.recv_line()?;
        ResponseView::parse(&line)
    }
}

/// A prepared query: the request frame minus id/session (filled per
/// send), plus everything needed to re-send it verbatim.
struct PreparedQuery {
    query: String,
    semiring: &'static str,
    /// `(name, rows)` with rows in the relation's entry order.
    relations: Vec<(String, Vec<Vec<u64>>)>,
}

impl PreparedQuery {
    fn frame(&self, id: u64, session: &str, servers: usize, fault_plan: Option<&Json>) -> String {
        let rels: Vec<(String, Json)> = self
            .relations
            .iter()
            .map(|(name, rows)| {
                (
                    name.clone(),
                    Json::Arr(
                        rows.iter()
                            .map(|row| {
                                Json::Arr(row.iter().map(|&v| Json::Num(v as f64)).collect())
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        let mut members = vec![
            (
                "schema".into(),
                Json::Str(mpcjoin_server::wire::WIRE_SCHEMA.into()),
            ),
            ("type".into(), Json::Str("query".into())),
            ("id".into(), Json::Num(id as f64)),
            ("session".into(), Json::Str(session.into())),
            ("query".into(), Json::Str(self.query.clone())),
            ("semiring".into(), Json::Str(self.semiring.into())),
            ("servers".into(), Json::Num(servers as f64)),
            ("relations".into(), Json::Obj(rels)),
        ];
        if let Some(plan) = fault_plan {
            members.push(("fault_plan".into(), plan.clone()));
        }
        Json::Obj(members)
            .to_string_compact()
            .expect("request frames contain only finite numbers")
    }
}

fn rows_of(rel: &Relation<Count>) -> Vec<Vec<u64>> {
    rel.entries().iter().map(|(row, _)| row.clone()).collect()
}

/// Deterministically generate the `i`-th query of `class` for `session`.
fn prepare(class: &'static str, session: usize, i: usize, seed: u64) -> PreparedQuery {
    let mut rng = DetRng::seed_from_u64(seeded_hash(seed, &(class, session as u64, i as u64)));
    match class {
        "mm" => {
            let inst = mpcjoin::workload::matrix::uniform::<Count>(
                &mut rng,
                (Attr(0), Attr(1), Attr(2)),
                48,
                48,
                (12, 8, 12),
            );
            PreparedQuery {
                query: "Q(a, c) :- R0(a, b), R1(b, c)".into(),
                semiring: "count",
                relations: vec![
                    ("R0".into(), rows_of(&inst.r1)),
                    ("R1".into(), rows_of(&inst.r2)),
                ],
            }
        }
        "line" => {
            let inst = mpcjoin::workload::chain::uniform::<Count>(&mut rng, 3, 40, 10);
            PreparedQuery {
                query: "Q(x0, x3) :- R0(x0, x1), R1(x1, x2), R2(x2, x3)".into(),
                semiring: "minplus",
                relations: inst
                    .rels
                    .iter()
                    .enumerate()
                    .map(|(h, r)| (format!("R{h}"), rows_of(r)))
                    .collect(),
            }
        }
        _ => {
            let inst = mpcjoin::workload::star::uniform::<Count>(&mut rng, 3, 30, 8, 6);
            PreparedQuery {
                query: "Q(a0, a1, a2) :- R0(a0, b), R1(a1, b), R2(a2, b)".into(),
                semiring: "bool",
                relations: inst
                    .rels
                    .iter()
                    .enumerate()
                    .map(|(k, r)| (format!("R{k}"), rows_of(r)))
                    .collect(),
            }
        }
    }
}

/// Per-(session, class) accumulator, summed into [`ServerRecord`]s.
#[derive(Default)]
struct Agg {
    sent: u64,
    responses: u64,
    lost: u64,
    duplicated: u64,
    retries: u64,
    cache_hits: u64,
    load_sum: u64,
    latencies_ns: Vec<u64>,
}

/// Send one query, retrying through backpressure, and record the
/// outcome. Returns the response view of the final (non-backpressure)
/// answer, or `None` when the query was ultimately lost.
fn run_query(
    conn: &mut Conn,
    frame: &str,
    expected_id: u64,
    agg: &mut Agg,
    failures: &mut Vec<String>,
) -> Option<ResponseView> {
    agg.sent += 1;
    let started = Instant::now();
    for _attempt in 0..10_000u32 {
        if let Err(e) = conn.send(frame) {
            failures.push(e);
            agg.lost += 1;
            return None;
        }
        let view = match conn.recv() {
            Ok(v) => v,
            Err(e) => {
                failures.push(e);
                agg.lost += 1;
                return None;
            }
        };
        // Sessions are strictly serial request/response, so an id
        // mismatch means a duplicated or misdelivered frame.
        if view.id != Some(expected_id) {
            agg.duplicated += 1;
            failures.push(format!(
                "response id {:?} does not match request {expected_id}",
                view.id
            ));
            return None;
        }
        match view.code.as_deref() {
            Some("overloaded") | Some("quota_exceeded") => {
                agg.retries += 1;
                std::thread::sleep(Duration::from_millis(view.retry_after_ms.unwrap_or(25)));
                continue;
            }
            _ => {}
        }
        agg.responses += 1;
        agg.latencies_ns
            .push(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        if view.cached {
            agg.cache_hits += 1;
        }
        agg.load_sum += view.load.unwrap_or(0);
        return Some(view);
    }
    failures.push("gave up after 10000 backpressure retries".into());
    agg.lost += 1;
    None
}

struct SessionReport {
    /// Aggregates indexed like [`CLASSES`], plus `fault` at the end.
    per_class: Vec<Agg>,
    failures: Vec<String>,
}

fn run_session(args: &Args, session: usize, fault_plan: Option<&Json>) -> SessionReport {
    let mut per_class: Vec<Agg> = (0..CLASSES.len() + 1).map(|_| Agg::default()).collect();
    let mut failures = Vec::new();
    let mut conn = match Conn::open(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            failures.push(e);
            return SessionReport {
                per_class,
                failures,
            };
        }
    };
    let session_name = format!("s{session}");
    let mut next_id = (session as u64) * 1_000_000;
    let mut id = || {
        next_id += 1;
        next_id
    };
    // The session's first matrix query, kept for the repeat + fault twin.
    let mut first_mm: Option<(PreparedQuery, String)> = None;

    for (c, class) in CLASSES.iter().enumerate() {
        for i in 0..args.queries {
            let q = prepare(class, session, i, args.seed);
            let qid = id();
            let frame = q.frame(qid, &session_name, args.servers, None);
            let Some(view) = run_query(&mut conn, &frame, qid, &mut per_class[c], &mut failures)
            else {
                continue;
            };
            if view.kind != "result" {
                failures.push(format!(
                    "session {session} {class}#{i}: unexpected {} frame ({:?}: {:?})",
                    view.kind, view.code, view.detail
                ));
                continue;
            }
            if *class == "mm" && i == 0 {
                first_mm = Some((q, view.result.clone().unwrap_or_default()));
            }
        }
    }

    // Forced cache hit: re-send the first matrix query; the response must
    // be marked cached and its result member byte-identical to the cold
    // run's.
    if let Some((q, cold_body)) = &first_mm {
        let qid = id();
        let frame = q.frame(qid, &session_name, args.servers, None);
        if let Some(view) = run_query(&mut conn, &frame, qid, &mut per_class[0], &mut failures) {
            if !view.cached {
                failures.push(format!(
                    "session {session}: repeated query was not served from the cache"
                ));
            }
            if view.result.as_deref() != Some(cold_body.as_str()) {
                failures.push(format!(
                    "session {session}: cached response is not bit-identical to the cold run"
                ));
            }
        }
    }

    // Fault twin (session 0 only): same query with a fault schedule —
    // must bypass the cache, recover, and reproduce the clean bytes.
    if session == 0 {
        if let (Some(plan), Some((q, cold_body))) = (fault_plan, &first_mm) {
            let fault_agg = CLASSES.len();
            let qid = id();
            let frame = q.frame(qid, &session_name, args.servers, Some(plan));
            if let Some(view) = run_query(
                &mut conn,
                &frame,
                qid,
                &mut per_class[fault_agg],
                &mut failures,
            ) {
                if view.kind != "result" {
                    failures.push(format!(
                        "fault twin: unexpected {} frame ({:?}: {:?})",
                        view.kind, view.code, view.detail
                    ));
                } else {
                    if view.cached {
                        failures.push("fault twin: faulted request hit the cache".into());
                    }
                    if !view.recovered {
                        failures.push("fault twin: no recovery report on the frame".into());
                    }
                    if view.result.as_deref() != Some(cold_body.as_str()) {
                        failures
                            .push("fault twin: recovered output differs from clean twin".into());
                    }
                }
            }
        }
    }
    SessionReport {
        per_class,
        failures,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Fetch the server's `stats` frame, returning the raw frame line.
fn scrape_stats(addr: &str) -> Result<String, String> {
    let mut conn = Conn::open(addr)?;
    conn.send(&format!(
        "{{\"schema\":\"{}\",\"type\":\"stats\",\"id\":0}}",
        mpcjoin_server::wire::WIRE_SCHEMA
    ))?;
    conn.recv_line()
}

fn wait_ready(addr: &str) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut conn) = Conn::open(addr) {
            let ping = format!(
                "{{\"schema\":\"{}\",\"type\":\"ping\",\"id\":0}}",
                mpcjoin_server::wire::WIRE_SCHEMA
            );
            if conn.send(&ping).is_ok() {
                if let Ok(view) = conn.recv() {
                    if view.kind == "pong" {
                        return Ok(());
                    }
                }
            }
        }
        if Instant::now() > deadline {
            return Err(format!("server at {addr} not ready after 30s"));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn shutdown(addr: &str) -> Result<u64, String> {
    let mut conn = Conn::open(addr)?;
    conn.send(&format!(
        "{{\"schema\":\"{}\",\"type\":\"shutdown\",\"id\":0}}",
        mpcjoin_server::wire::WIRE_SCHEMA
    ))?;
    let view = conn.recv()?;
    if view.kind != "shutdown_ack" {
        return Err(format!("expected shutdown_ack, got `{}`", view.kind));
    }
    Ok(view.completed.unwrap_or(0))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.wait_ready {
        match wait_ready(&args.addr) {
            Ok(()) => println!("ready"),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let finish = |run_ok: bool| {
        if args.shutdown {
            match shutdown(&args.addr) {
                Ok(completed) => println!("server drained: {completed} queries completed"),
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if run_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    };
    if args.sessions == 0 {
        return finish(true);
    }

    let fault_plan = match &args.fault_plan {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("{path}: {e}")))
        {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let started = Instant::now();
    let reports: Vec<SessionReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|s| {
                let args = &args;
                let fault_plan = fault_plan.as_ref();
                scope.spawn(move || run_session(args, s, fault_plan))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    let wall = started.elapsed();

    // Aggregate per class (+ the fault twin pseudo-class).
    let mut failures: Vec<String> = Vec::new();
    let mut records = Vec::new();
    let labels: Vec<&str> = CLASSES.iter().copied().chain(["fault"]).collect();
    for (c, label) in labels.iter().enumerate() {
        let mut total = Agg::default();
        for report in &reports {
            let a = &report.per_class[c];
            total.sent += a.sent;
            total.responses += a.responses;
            total.lost += a.lost;
            total.duplicated += a.duplicated;
            total.retries += a.retries;
            total.cache_hits += a.cache_hits;
            total.load_sum += a.load_sum;
            total.latencies_ns.extend(&a.latencies_ns);
        }
        if total.sent == 0 {
            continue; // e.g. no --fault-plan ⇒ no `fault` record
        }
        total.latencies_ns.sort_unstable();
        records.push(ServerRecord {
            workload: (*label).to_string(),
            sent: total.sent,
            responses: total.responses,
            lost: total.lost,
            duplicated: total.duplicated,
            retries: total.retries,
            cache_hits: total.cache_hits,
            load_sum: total.load_sum,
            p50_ns: percentile(&total.latencies_ns, 0.50),
            p95_ns: percentile(&total.latencies_ns, 0.95),
            max_ns: total.latencies_ns.last().copied().unwrap_or(0),
        });
    }
    for report in &reports {
        failures.extend(report.failures.iter().cloned());
    }
    let total_responses: u64 = records.iter().map(|r| r.responses).sum();
    let total_hits: u64 = records.iter().map(|r| r.cache_hits).sum();
    let total_retries: u64 = records.iter().map(|r| r.retries).sum();
    if total_hits == 0 {
        failures.push("no response was ever served from the cache".into());
    }

    // Scrape the server's own counters and cross-check them against the
    // client-side tallies. The scheduler moves its counters before it
    // responds, so once every response has been read the two views must
    // agree exactly; drift means a lost or duplicated response.
    let (mut server_p50_ns, mut server_p95_ns) = (0u64, 0u64);
    match scrape_stats(&args.addr) {
        Err(e) => failures.push(format!("stats scrape: {e}")),
        Ok(raw) => {
            if let Some(path) = &args.stats_out {
                if let Err(e) = std::fs::write(path, format!("{raw}\n")) {
                    failures.push(format!("write {path}: {e}"));
                } else {
                    println!("wrote {path}");
                }
            }
            match Json::parse(&raw) {
                Err(e) => failures.push(format!("stats frame does not parse: {e}")),
                Ok(doc) => {
                    fn check(
                        failures: &mut Vec<String>,
                        name: &str,
                        server: Option<u64>,
                        client: u64,
                    ) {
                        match server {
                            None => failures.push(format!("stats frame is missing `{name}`")),
                            Some(s) if s != client => failures.push(format!(
                                "stats cross-check: {name}: server says {s}, client counted {client}"
                            )),
                            Some(_) => {}
                        }
                    }
                    let top = |name: &str| doc.get(name).and_then(Json::as_u64);
                    check(
                        &mut failures,
                        "completed",
                        top("completed"),
                        total_responses,
                    );
                    check(&mut failures, "admitted", top("admitted"), total_responses);
                    check(
                        &mut failures,
                        "rejected_overload + rejected_quota",
                        top("rejected_overload")
                            .zip(top("rejected_quota"))
                            .map(|(a, b)| a + b),
                        total_retries,
                    );
                    check(
                        &mut failures,
                        "cache.hits",
                        doc.get("cache")
                            .and_then(|c| c.get("hits"))
                            .and_then(Json::as_u64),
                        total_hits,
                    );
                    match doc.get("stats").map(Json::to_string_sanitized) {
                        None => failures
                            .push("stats frame is missing the nested `stats` payload".into()),
                        Some(nested) => match StatsView::parse(&nested) {
                            Err(e) => failures.push(format!("nested stats payload: {e}")),
                            Ok(view) => {
                                check(
                                    &mut failures,
                                    "stats.sched.completed",
                                    view.num(&["sched", "completed"]),
                                    total_responses,
                                );
                                server_p50_ns = view.latency_quantile("total", 0.50).unwrap_or(0);
                                server_p95_ns = view.latency_quantile("total", 0.95).unwrap_or(0);
                            }
                        },
                    }
                }
            }
        }
    }

    let throughput = total_responses as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {} sessions, {total_responses} responses in {wall:.2?} ({throughput:.0} q/s), {} cache hits",
        args.sessions, total_hits
    );
    for r in &records {
        println!(
            "  {:<6} sent {:>5}  responses {:>5}  retries {:>4}  hits {:>4}  load_sum {:>8}  \
             p50 {:>8.3?}  p95 {:>8.3?}  max {:>8.3?}",
            r.workload,
            r.sent,
            r.responses,
            r.retries,
            r.cache_hits,
            r.load_sum,
            Duration::from_nanos(r.p50_ns),
            Duration::from_nanos(r.p95_ns),
            Duration::from_nanos(r.max_ns),
        );
    }
    println!(
        "  server-side end-to-end latency: p50 {:>8.3?}  p95 {:>8.3?}",
        Duration::from_nanos(server_p50_ns),
        Duration::from_nanos(server_p95_ns),
    );

    let artifact = ServerArtifact {
        sessions: args.sessions as u64,
        per_session: args.queries as u64,
        seed: args.seed,
        records,
        wall_ns: wall.as_nanos().min(u64::MAX as u128) as u64,
        throughput_qps: throughput,
        server_p50_ns,
        server_p95_ns,
    };
    if let Some(path) = &args.artifact {
        if let Err(e) = std::fs::write(path, artifact.to_json_string()) {
            eprintln!("loadgen: write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if !failures.is_empty() {
        eprintln!("loadgen: {} failure(s):", failures.len());
        for f in failures.iter().take(20) {
            eprintln!("  {f}");
        }
        if failures.len() > 20 {
            eprintln!("  … and {} more", failures.len() - 20);
        }
        return finish(false);
    }
    println!(
        "loadgen: all invariants held (no lost/duplicated responses, cache hits bit-identical)"
    );
    finish(true)
}

//! `obs_check` — validate an `mpcjoin-log-v1` operational log and
//! cross-check it against a scraped `mpcjoin-serverstats-v1` payload and
//! a loadgen `mpcjoin-bench-server-v1` artifact.
//!
//! ```text
//! obs_check LOG.jsonl [--stats STATS.json] [--bench BENCH.json]
//! ```
//!
//! The sibling of `trace_check` / `bench_check` for the observability
//! plane. Three layers of checks (each optional input adds one):
//!
//! 1. **Log validity** — every line parses under the schema, levels are
//!    known, timestamps are monotone in file order, and each known event
//!    carries its required members.
//! 2. **Log ↔ stats** — the server's own counters agree with the log's
//!    event counts: completions, per-reason rejections, cache hits, and
//!    the watchdog's audited / near-violation / violation tallies.
//! 3. **Log ↔ bench** — the *client's* tallies agree with both: every
//!    response the client received is a logged completion, every retry a
//!    logged backpressure rejection, every observed cache hit a logged
//!    cached completion, and nothing was lost or duplicated.
//!
//! Assumes the standard CI shape: the log covers one full server
//! lifetime, the stats payload was scraped after all query traffic, and
//! the bench run was the server's only client. Exits nonzero with every
//! discrepancy listed; prints the consistency notes on success.

use mpcjoin_bench::server::ServerArtifact;
use mpcjoin_server::obs::{check_log, cross_check, StatsView};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: obs_check LOG.jsonl [--stats STATS.json] [--bench BENCH.json]"
}

fn read(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {what} `{path}`: {e}"))
}

fn run() -> Result<Vec<String>, Vec<String>> {
    let mut log_path = None;
    let mut stats_path = None;
    let mut bench_path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stats" => {
                stats_path = Some(it.next().ok_or_else(|| vec![usage().to_string()])?);
            }
            "--bench" => {
                bench_path = Some(it.next().ok_or_else(|| vec![usage().to_string()])?);
            }
            "--help" | "-h" => return Err(vec![usage().to_string()]),
            other if log_path.is_none() && !other.starts_with('-') => {
                log_path = Some(other.to_string());
            }
            other => return Err(vec![format!("unexpected argument `{other}`\n{}", usage())]),
        }
    }
    let log_path = log_path.ok_or_else(|| vec![usage().to_string()])?;

    let log_text = read(&log_path, "log").map_err(|e| vec![e])?;
    let summary = check_log(&log_text)?;

    // A `stats` frame (as scraped by loadgen) nests the payload under
    // `stats`; a bare payload dump is accepted too.
    let stats = match &stats_path {
        None => None,
        Some(path) => {
            let text = read(path, "stats").map_err(|e| vec![e])?;
            let view = StatsView::parse(&text).or_else(|outer| {
                mpcjoin::mpc::json::Json::parse(&text)
                    .ok()
                    .and_then(|doc| {
                        doc.get("stats")
                            .map(mpcjoin::mpc::json::Json::to_string_sanitized)
                    })
                    .ok_or(outer)
                    .and_then(|nested| StatsView::parse(&nested))
            });
            Some(view.map_err(|e| vec![format!("{path}: {e}")])?)
        }
    };

    let bench = match &bench_path {
        None => None,
        Some(path) => {
            let text = read(path, "bench artifact").map_err(|e| vec![e])?;
            Some(ServerArtifact::parse(&text).map_err(|e| vec![format!("{path}: {e}")])?)
        }
    };

    let mut notes = vec![format!(
        "log: {} lines, {} query completes ({} cached, {} errors), {} explain completes",
        summary.lines,
        summary.completes_query,
        summary.completes_cached,
        summary.completes_error,
        summary.completes_explain,
    )];
    notes.extend(cross_check(&summary, stats.as_ref(), bench.as_ref())?);
    Ok(notes)
}

fn main() -> ExitCode {
    match run() {
        Ok(notes) => {
            for note in notes {
                println!("obs_check: {note}");
            }
            println!("obs_check: OK");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in errors {
                eprintln!("obs_check: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

//! The annotated relation container.

use crate::schema::{Attr, Schema};
use crate::{Row, Value};
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;

/// A bag of `(row, annotation)` pairs under a [`Schema`].
///
/// The container is a *bag*: the same row may appear several times with
/// different (or equal) annotations, which is exactly the state of data
/// mid-algorithm before a reduce-by-key pass. [`Relation::coalesce`]
/// normalizes to one entry per distinct row by ⊕-combining annotations and
/// dropping ⊕-zeros; most operators do not implicitly coalesce, because in
/// the MPC simulation aggregation is an explicit, costed step.
#[derive(Clone, Debug)]
pub struct Relation<S: Semiring> {
    schema: Schema,
    entries: Vec<(Row, S)>,
}

impl<S: Semiring> Relation<S> {
    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            entries: Vec::new(),
        }
    }

    /// Build from `(row, annotation)` pairs; panics if any row's arity
    /// disagrees with the schema.
    pub fn from_entries(schema: Schema, entries: Vec<(Row, S)>) -> Self {
        for (row, _) in &entries {
            assert_eq!(
                row.len(),
                schema.arity(),
                "row arity {} does not match schema {schema}",
                row.len()
            );
        }
        Relation { schema, entries }
    }

    /// Convenience constructor for binary relations annotated with
    /// [`Semiring::one`] — the common "unweighted" input shape.
    pub fn binary_ones(a: Attr, b: Attr, pairs: impl IntoIterator<Item = (Value, Value)>) -> Self {
        let entries = pairs
            .into_iter()
            .map(|(x, y)| (vec![x, y], S::one()))
            .collect();
        Relation {
            schema: Schema::binary(a, b),
            entries,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The `(row, annotation)` entries, in insertion order.
    pub fn entries(&self) -> &[(Row, S)] {
        &self.entries
    }

    /// Consume into entries.
    pub fn into_entries(self) -> Vec<(Row, S)> {
        self.entries
    }

    /// Number of entries (bag size, not distinct rows).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one entry; panics on arity mismatch.
    pub fn push(&mut self, row: Row, annot: S) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.entries.push((row, annot));
    }

    /// Project a row onto the positions `pos` (helper for operators).
    pub(crate) fn project_row(row: &[Value], pos: &[usize]) -> Row {
        pos.iter().map(|&i| row[i]).collect()
    }

    /// Combine duplicate rows with ⊕ and drop rows annotated ⊕-zero.
    ///
    /// Zero-annotated tuples are semantically absent (they contribute the
    /// identity to any aggregate), so dropping them is sound over any
    /// semiring and keeps hard-instance sizes honest.
    pub fn coalesce(&self) -> Relation<S> {
        let mut index: HashMap<Row, S> = HashMap::with_capacity(self.entries.len());
        for (row, annot) in &self.entries {
            match index.get_mut(row) {
                Some(acc) => acc.add_assign(annot),
                None => {
                    index.insert(row.clone(), annot.clone());
                }
            }
        }
        let entries = index
            .into_iter()
            .filter(|(_, s)| !s.is_zero())
            .collect::<Vec<_>>();
        Relation {
            schema: self.schema.clone(),
            entries,
        }
    }

    /// Reorder columns to `target` (same attribute set, any order).
    pub fn reorder(&self, target: &Schema) -> Relation<S> {
        assert_eq!(
            {
                let mut a = self.schema.attrs().to_vec();
                a.sort();
                a
            },
            {
                let mut b = target.attrs().to_vec();
                b.sort();
                b
            },
            "reorder requires identical attribute sets"
        );
        let pos = self.schema.positions_of(target.attrs());
        let entries = self
            .entries
            .iter()
            .map(|(row, s)| (Self::project_row(row, &pos), s.clone()))
            .collect();
        Relation {
            schema: target.clone(),
            entries,
        }
    }

    /// Rename attribute `from` to `to` (schema-level only; rows unchanged).
    pub fn rename(&self, from: Attr, to: Attr) -> Relation<S> {
        let attrs = self
            .schema
            .attrs()
            .iter()
            .map(|&a| if a == from { to } else { a })
            .collect();
        Relation {
            schema: Schema::new(attrs),
            entries: self.entries.clone(),
        }
    }

    /// Keep entries whose row satisfies `pred`.
    pub fn filter(&self, mut pred: impl FnMut(&[Value]) -> bool) -> Relation<S> {
        Relation {
            schema: self.schema.clone(),
            entries: self
                .entries
                .iter()
                .filter(|(row, _)| pred(row))
                .cloned()
                .collect(),
        }
    }

    /// Keep entries whose value at attribute `a` satisfies `pred`.
    pub fn filter_on(&self, a: Attr, mut pred: impl FnMut(Value) -> bool) -> Relation<S> {
        let i = self
            .schema
            .position(a)
            .unwrap_or_else(|| panic!("attribute {a} not in schema"));
        self.filter(|row| pred(row[i]))
    }

    /// The distinct values appearing in attribute `a`.
    pub fn distinct_values(&self, a: Attr) -> Vec<Value> {
        let i = self
            .schema
            .position(a)
            .unwrap_or_else(|| panic!("attribute {a} not in schema"));
        let mut vals: Vec<Value> = self.entries.iter().map(|(row, _)| row[i]).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Degree of each value of attribute `a`: the number of entries holding
    /// that value (the paper's `|σ_{a=v} R|`), as a map `value → count`.
    pub fn degrees(&self, a: Attr) -> HashMap<Value, u64> {
        let i = self
            .schema
            .position(a)
            .unwrap_or_else(|| panic!("attribute {a} not in schema"));
        let mut deg = HashMap::new();
        for (row, _) in &self.entries {
            *deg.entry(row[i]).or_insert(0u64) += 1;
        }
        deg
    }

    /// Canonical form for equality tests: coalesced entries sorted by row.
    ///
    /// Two relations are *semantically equal* iff their canonical forms are
    /// equal; this is the comparison every oracle test in the workspace
    /// uses.
    pub fn canonical(&self) -> Vec<(Row, S)> {
        let mut entries = self.coalesce().entries;
        entries.sort_by(|(r1, _), (r2, _)| r1.cmp(r2));
        entries
    }

    /// Semantic equality: same schema attribute order and same canonical
    /// entries.
    pub fn semantically_eq(&self, other: &Relation<S>) -> bool {
        self.schema == other.schema && self.canonical() == other.canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::Count;

    fn r(pairs: &[(u64, u64, u64)]) -> Relation<Count> {
        Relation::from_entries(
            Schema::binary(Attr(0), Attr(1)),
            pairs
                .iter()
                .map(|&(a, b, w)| (vec![a, b], Count(w)))
                .collect(),
        )
    }

    #[test]
    fn coalesce_merges_and_drops_zero() {
        let rel = r(&[(1, 2, 3), (1, 2, 4), (5, 6, 0)]);
        let c = rel.coalesce();
        assert_eq!(c.len(), 1);
        assert_eq!(c.canonical(), vec![(vec![1, 2], Count(7))]);
    }

    #[test]
    fn semantic_equality_ignores_order_and_duplication() {
        let r1 = r(&[(1, 2, 3), (3, 4, 1)]);
        let r2 = r(&[(3, 4, 1), (1, 2, 1), (1, 2, 2)]);
        assert!(r1.semantically_eq(&r2));
        assert!(!r1.semantically_eq(&r(&[(1, 2, 3)])));
    }

    #[test]
    fn reorder_swaps_columns() {
        let rel = r(&[(1, 2, 9)]);
        let swapped = rel.reorder(&Schema::binary(Attr(1), Attr(0)));
        assert_eq!(swapped.entries()[0].0, vec![2, 1]);
    }

    #[test]
    fn degrees_count_occurrences() {
        let rel = r(&[(1, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let deg = rel.degrees(Attr(0));
        assert_eq!(deg[&1], 2);
        assert_eq!(deg[&2], 1);
    }

    #[test]
    fn distinct_values_sorted() {
        let rel = r(&[(5, 2, 1), (1, 3, 1), (5, 9, 1)]);
        assert_eq!(rel.distinct_values(Attr(0)), vec![1, 5]);
    }

    #[test]
    fn rename_changes_schema_only() {
        let rel = r(&[(1, 2, 1)]);
        let renamed = rel.rename(Attr(1), Attr(7));
        assert_eq!(renamed.schema().attrs(), &[Attr(0), Attr(7)]);
        assert_eq!(renamed.entries()[0].0, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked_on_push() {
        let mut rel = r(&[]);
        rel.push(vec![1], Count(1));
    }
}

//! Attributes and schemas.

use std::fmt;

/// An interned attribute identifier.
///
/// Attribute *names* are a presentation concern; algorithms only ever need
/// identity and ordering, so an attribute is a plain `u32`. Queries mint
/// fresh attributes for "combined" columns (§6–§7 of the paper) without a
/// global registry: callers manage their own id space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(pub u32);

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An ordered list of distinct attributes; the column layout of a
/// [`crate::Relation`].
///
/// Order is significant: row values are stored positionally. Two schemas
/// with the same attribute set but different orders describe the same
/// logical relation; [`crate::Relation::reorder`] converts between them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<Attr>,
}

impl Schema {
    /// Build a schema; panics on duplicate attributes (a malformed query,
    /// not a data error).
    pub fn new(attrs: Vec<Attr>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute {a} in schema {attrs:?}"
            );
        }
        Schema { attrs }
    }

    /// A binary schema — the common case for the paper's input relations.
    pub fn binary(a: Attr, b: Attr) -> Self {
        Schema::new(vec![a, b])
    }

    /// A unary schema.
    pub fn unary(a: Attr) -> Self {
        Schema::new(vec![a])
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in positional order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Position of `a`, or `None` if absent.
    pub fn position(&self, a: Attr) -> Option<usize> {
        self.attrs.iter().position(|x| *x == a)
    }

    /// Whether `a` is part of this schema.
    pub fn contains(&self, a: Attr) -> bool {
        self.position(a).is_some()
    }

    /// Attributes shared with `other`, in *this* schema's order.
    pub fn common(&self, other: &Schema) -> Vec<Attr> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| other.contains(*a))
            .collect()
    }

    /// Attributes of this schema *not* in `keep`.
    pub fn minus(&self, drop: &[Attr]) -> Vec<Attr> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| !drop.contains(a))
            .collect()
    }

    /// The positions of `attrs` within this schema; panics if any is absent
    /// (algorithms only project onto attributes they know are present).
    pub fn positions_of(&self, attrs: &[Attr]) -> Vec<usize> {
        match self.try_positions_of(attrs) {
            Ok(pos) => pos,
            Err(a) => panic!("attribute {a} not in schema {:?}", self.attrs),
        }
    }

    /// The positions of `attrs` within this schema, or the first missing
    /// attribute — the fallible twin of [`Schema::positions_of`] for
    /// callers handling untrusted queries.
    pub fn try_positions_of(&self, attrs: &[Attr]) -> Result<Vec<usize>, Attr> {
        attrs.iter().map(|a| self.position(*a).ok_or(*a)).collect()
    }

    /// Schema of the natural join of `self` and `other`: this schema's
    /// attributes followed by `other`'s non-shared attributes.
    pub fn join_schema(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        for a in &other.attrs {
            if !self.contains(*a) {
                attrs.push(*a);
            }
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    /// Renders as `(x0, x1, …)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_common() {
        let a = Attr(0);
        let b = Attr(1);
        let c = Attr(2);
        let s1 = Schema::binary(a, b);
        let s2 = Schema::binary(b, c);
        assert_eq!(s1.common(&s2), vec![b]);
        assert_eq!(s1.position(b), Some(1));
        assert_eq!(s1.position(c), None);
        assert_eq!(s1.join_schema(&s2).attrs(), &[a, b, c]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn rejects_duplicates() {
        let _ = Schema::new(vec![Attr(3), Attr(3)]);
    }

    #[test]
    fn minus_removes() {
        let s = Schema::new(vec![Attr(0), Attr(1), Attr(2)]);
        assert_eq!(s.minus(&[Attr(1)]), vec![Attr(0), Attr(2)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attr(4).to_string(), "x4");
        assert_eq!(Schema::binary(Attr(0), Attr(1)).to_string(), "(x0, x1)");
    }
}

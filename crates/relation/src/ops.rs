//! Local relational operators: natural join, semijoin, project-aggregate.
//!
//! These run on a single simulated server; their *inputs* arrive through
//! costed MPC exchanges, but local computation itself is free in the MPC
//! model (§1.3: the load is the communication metric, and local work is an
//! increasing function of it).

use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::Row;
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;

impl<S: Semiring> Relation<S> {
    /// Natural join. Joins on all shared attributes (cartesian product when
    /// none are shared); the annotation of each result is the ⊗-product of
    /// the two sides' annotations, per §1.1 of the paper.
    ///
    /// Hash join keyed on the shared-attribute projection, building on the
    /// smaller side.
    pub fn natural_join(&self, other: &Relation<S>) -> Relation<S> {
        if self.len() > other.len() {
            // Build on the smaller side, then restore this side's column
            // order so the output schema is deterministic for callers.
            let flipped = other.natural_join_impl(self);
            let target = self.schema().join_schema(other.schema());
            return flipped.reorder(&target);
        }
        self.natural_join_impl(other)
    }

    fn natural_join_impl(&self, other: &Relation<S>) -> Relation<S> {
        let common = self.schema().common(other.schema());
        let left_key = self.schema().positions_of(&common);
        let right_key = other.schema().positions_of(&common);
        let out_schema = self.schema().join_schema(other.schema());
        // Positions in `other` of the attributes appended to the output.
        let appended: Vec<usize> = other
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(_, a)| !self.schema().contains(**a))
            .map(|(i, _)| i)
            .collect();

        let mut build: HashMap<Row, Vec<usize>> = HashMap::with_capacity(self.len());
        for (i, (row, _)) in self.entries().iter().enumerate() {
            build
                .entry(Self::project_row(row, &left_key))
                .or_default()
                .push(i);
        }

        let mut out = Vec::new();
        for (row, annot) in other.entries() {
            let key = Self::project_row(row, &right_key);
            if let Some(matches) = build.get(&key) {
                for &i in matches {
                    let (lrow, lannot) = &self.entries()[i];
                    let mut new_row = lrow.clone();
                    new_row.extend(appended.iter().map(|&j| row[j]));
                    out.push((new_row, lannot.mul(annot)));
                }
            }
        }
        Relation::from_entries(out_schema, out)
    }

    /// Semijoin `self ⋉ other`: keep entries whose shared-attribute
    /// projection appears in `other`. Annotations are untouched — a
    /// semijoin filters, it does not aggregate (§2.1).
    pub fn semijoin(&self, other: &Relation<S>) -> Relation<S> {
        let common = self.schema().common(other.schema());
        if common.is_empty() {
            // Degenerate case: every row survives iff `other` is non-empty.
            return if other.is_empty() {
                Relation::empty(self.schema().clone())
            } else {
                self.clone()
            };
        }
        let left_key = self.schema().positions_of(&common);
        let right_key = other.schema().positions_of(&common);
        let probe: std::collections::HashSet<Row> = other
            .entries()
            .iter()
            .map(|(row, _)| Self::project_row(row, &right_key))
            .collect();
        self.filter(|row| probe.contains(&Relation::<S>::project_row(row, &left_key)))
    }

    /// Project onto `keep` and ⊕-aggregate annotations within each group:
    /// the `∑_{ȳ}` operator of §1.1 applied locally. Rows whose aggregate
    /// is ⊕-zero are dropped.
    pub fn project_aggregate(&self, keep: &[Attr]) -> Relation<S> {
        let pos = self.schema().positions_of(keep);
        let mut groups: HashMap<Row, S> = HashMap::new();
        for (row, annot) in self.entries() {
            let key = Self::project_row(row, &pos);
            match groups.get_mut(&key) {
                Some(acc) => acc.add_assign(annot),
                None => {
                    groups.insert(key, annot.clone());
                }
            }
        }
        let entries = groups.into_iter().filter(|(_, s)| !s.is_zero()).collect();
        Relation::from_entries(Schema::new(keep.to_vec()), entries)
    }

    /// Join then immediately project-aggregate: `∑_{ȳ}(self ⋈ other)` with
    /// `keep` as the output attributes. Semantically equal to
    /// `natural_join(..).project_aggregate(keep)`, provided as one call
    /// because the algorithms use this "join + local aggregation" shape
    /// constantly.
    pub fn join_aggregate(&self, other: &Relation<S>, keep: &[Attr]) -> Relation<S> {
        self.natural_join(other).project_aggregate(keep)
    }

    /// ⊕-aggregate of *all* annotations: the `y = ∅` query (e.g. the full
    /// join size under the counting semiring).
    pub fn aggregate_all(&self) -> S {
        let mut acc = S::zero();
        for (_, annot) in self.entries() {
            acc.add_assign(annot);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::{Count, TropicalMin};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn rel(schema: Schema, rows: &[(&[u64], u64)]) -> Relation<Count> {
        Relation::from_entries(
            schema,
            rows.iter().map(|(r, w)| (r.to_vec(), Count(*w))).collect(),
        )
    }

    #[test]
    fn join_matches_on_common_attribute() {
        let r1 = rel(
            Schema::binary(A, B),
            &[(&[1, 10], 2), (&[2, 10], 3), (&[3, 11], 5)],
        );
        let r2 = rel(Schema::binary(B, C), &[(&[10, 100], 7), (&[12, 200], 1)]);
        let j = r1.natural_join(&r2);
        assert_eq!(j.schema().attrs(), &[A, B, C]);
        let mut rows = j.canonical();
        rows.sort();
        assert_eq!(
            rows,
            vec![(vec![1, 10, 100], Count(14)), (vec![2, 10, 100], Count(21)),]
        );
    }

    #[test]
    fn join_build_side_flip_preserves_schema() {
        // Force the "flip" path by making the left side larger.
        let r1 = rel(
            Schema::binary(A, B),
            &[(&[1, 10], 1), (&[2, 10], 1), (&[3, 10], 1)],
        );
        let r2 = rel(Schema::binary(B, C), &[(&[10, 5], 1)]);
        let j = r1.natural_join(&r2);
        assert_eq!(j.schema().attrs(), &[A, B, C]);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_without_common_attrs_is_cartesian() {
        let r1 = rel(Schema::unary(A), &[(&[1], 2), (&[2], 3)]);
        let r2 = rel(Schema::unary(B), &[(&[7], 5)]);
        let j = r1.natural_join(&r2);
        assert_eq!(j.len(), 2);
        assert_eq!(j.aggregate_all(), Count(2 * 5 + 3 * 5));
    }

    #[test]
    fn semijoin_filters_without_touching_annotations() {
        let r1 = rel(Schema::binary(A, B), &[(&[1, 10], 9), (&[2, 11], 9)]);
        let r2 = rel(Schema::binary(B, C), &[(&[10, 0], 1)]);
        let s = r1.semijoin(&r2);
        assert_eq!(s.canonical(), vec![(vec![1, 10], Count(9))]);
    }

    #[test]
    fn semijoin_no_common_attrs_depends_on_emptiness() {
        let r1 = rel(Schema::unary(A), &[(&[1], 1)]);
        let nonempty = rel(Schema::unary(B), &[(&[5], 1)]);
        let empty: Relation<Count> = Relation::empty(Schema::unary(B));
        assert_eq!(r1.semijoin(&nonempty).len(), 1);
        assert!(r1.semijoin(&empty).is_empty());
    }

    #[test]
    fn project_aggregate_groups() {
        let r1 = rel(
            Schema::binary(A, B),
            &[(&[1, 10], 2), (&[1, 11], 3), (&[2, 12], 4)],
        );
        let p = r1.project_aggregate(&[A]);
        assert_eq!(
            p.canonical(),
            vec![(vec![1], Count(5)), (vec![2], Count(4))]
        );
    }

    #[test]
    fn join_aggregate_is_matrix_multiply() {
        // 2x2 boolean-count matrices: R1 = {(1,1),(1,2)}, R2 = {(1,5),(2,5)}
        let r1 = rel(Schema::binary(A, B), &[(&[1, 1], 1), (&[1, 2], 1)]);
        let r2 = rel(Schema::binary(B, C), &[(&[1, 5], 1), (&[2, 5], 1)]);
        let out = r1.join_aggregate(&r2, &[A, C]);
        // (1,5) reachable via two b's → count 2.
        assert_eq!(out.canonical(), vec![(vec![1, 5], Count(2))]);
    }

    #[test]
    fn tropical_join_takes_min_over_paths() {
        let s1 = Relation::from_entries(
            Schema::binary(A, B),
            vec![
                (vec![0, 1], TropicalMin::finite(3)),
                (vec![0, 2], TropicalMin::finite(1)),
            ],
        );
        let s2 = Relation::from_entries(
            Schema::binary(B, C),
            vec![
                (vec![1, 9], TropicalMin::finite(1)),
                (vec![2, 9], TropicalMin::finite(10)),
            ],
        );
        let out = s1.join_aggregate(&s2, &[A, C]);
        assert_eq!(out.canonical(), vec![(vec![0, 9], TropicalMin::finite(4))]);
    }

    #[test]
    fn aggregate_all_counts_full_join() {
        let r1 = rel(Schema::binary(A, B), &[(&[1, 10], 1), (&[2, 10], 1)]);
        let r2 = rel(Schema::binary(B, C), &[(&[10, 1], 1), (&[10, 2], 1)]);
        assert_eq!(r1.natural_join(&r2).aggregate_all(), Count(4));
    }
}

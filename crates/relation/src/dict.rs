//! Dictionary encoding of value combinations ("combined attributes").
//!
//! Several reductions in the paper treat a *set* of attributes as one
//! attribute: §6 step (2.2) regards `A^small` as "a combined attribute",
//! and §7 replaces a whole star-like subtree `T_B` by a fresh edge
//! `(B, V_B ∩ y)`. Concretely that requires mapping each distinct value
//! combination to a single fresh `u64`, with an inverse map to expand final
//! results back to their constituent columns.

use crate::{Row, Value};
use std::collections::HashMap;

/// A bijective dictionary `row ↦ code` for combining multiple columns into
/// one synthetic column.
///
/// Codes are assigned densely from 0 in first-seen order, which keeps them
/// usable as array indices and makes encodings deterministic for a fixed
/// insertion order.
#[derive(Clone, Debug, Default)]
pub struct ValueDict {
    forward: HashMap<Row, Value>,
    backward: Vec<Row>,
}

impl ValueDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Code for `combo`, allocating a fresh one on first sight.
    pub fn encode(&mut self, combo: &[Value]) -> Value {
        if let Some(&code) = self.forward.get(combo) {
            return code;
        }
        let code = self.backward.len() as Value;
        self.forward.insert(combo.to_vec(), code);
        self.backward.push(combo.to_vec());
        code
    }

    /// Code for `combo` if already present.
    pub fn lookup(&self, combo: &[Value]) -> Option<Value> {
        self.forward.get(combo).copied()
    }

    /// The combination behind `code`; panics on an unallocated code (that
    /// is a logic error in the calling algorithm, not a data condition).
    pub fn decode(&self, code: Value) -> &[Value] {
        self.backward
            .get(code as usize)
            .unwrap_or_else(|| panic!("decode of unallocated code {code}"))
            .as_slice()
    }

    /// Number of distinct combinations seen.
    pub fn len(&self) -> usize {
        self.backward.len()
    }

    /// Whether no combination has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.backward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = ValueDict::new();
        let c1 = d.encode(&[3, 4]);
        let c2 = d.encode(&[3, 4]);
        assert_eq!(c1, c2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn codes_are_dense_and_decodable() {
        let mut d = ValueDict::new();
        let a = d.encode(&[1]);
        let b = d.encode(&[2, 2]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.decode(a), &[1]);
        assert_eq!(d.decode(b), &[2, 2]);
    }

    #[test]
    fn lookup_does_not_allocate() {
        let d = ValueDict::new();
        assert_eq!(d.lookup(&[9]), None);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "unallocated code")]
    fn decode_unallocated_panics() {
        ValueDict::new().decode(0);
    }
}

//! Annotated relations and local (single-server) relational operators.
//!
//! An *annotated relation* pairs every tuple with an element of a
//! commutative semiring (see `mpcjoin-semiring`). All the MPC algorithms
//! in this workspace ultimately bottom out in local computation on one
//! simulated server, and this crate provides that local layer:
//!
//! * [`Attr`] — interned attribute identifiers,
//! * [`Schema`] — an ordered set of attributes,
//! * [`Relation`] — a bag of `(row, annotation)` pairs under a schema,
//!   with natural join, semijoin, projection-with-aggregation, selection,
//!   renaming and normalization,
//! * [`ValueDict`] — dictionary-encoding of value combinations, used by the
//!   algorithms of §6–§7 of the paper when they treat a set of attributes
//!   as one "combined" attribute.
//!
//! Representation choices follow the paper's data model: every relation in
//! an input query has arity ≤ 2 (the join hypergraph is a tree over binary
//! edges), but *intermediate* relations produced by Yannakakis-style passes
//! can be wider, so [`Relation`] supports arbitrary arity with a fast path
//! for the binary case. Values are dictionary-encoded `u64`s throughout.

mod dict;
mod ops;
mod relation;
mod schema;

pub use dict::ValueDict;
pub use relation::Relation;
pub use schema::{Attr, Schema};

/// A dictionary-encoded attribute value.
pub type Value = u64;

/// A tuple of values, positionally aligned with a [`Schema`].
pub type Row = Vec<Value>;

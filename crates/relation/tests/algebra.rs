//! Property-based tests of relational-algebra identities that the
//! distributed algorithms rely on implicitly.

use mpcjoin_relation::{Attr, Relation, Schema};
use mpcjoin_semiring::{Count, Semiring};
use proptest::prelude::*;

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn rel_strategy(
    left: Attr,
    right: Attr,
    max_val: u64,
) -> impl Strategy<Value = Relation<Count>> {
    proptest::collection::vec(((0..max_val), (0..max_val), (1u64..5)), 0..25).prop_map(
        move |rows| {
            Relation::from_entries(
                Schema::binary(left, right),
                rows.into_iter()
                    .map(|(x, y, w)| (vec![x, y], Count(w)))
                    .collect(),
            )
        },
    )
}

proptest! {
    /// Join is commutative up to column order and annotation values.
    #[test]
    fn join_commutes(r1 in rel_strategy(A, B, 6), r2 in rel_strategy(B, C, 6)) {
        let left = r1.natural_join(&r2);
        let right = r2.natural_join(&r1).reorder(left.schema());
        prop_assert!(left.semantically_eq(&right));
    }

    /// Aggregating after the join equals aggregating the coalesced join:
    /// coalescing is transparent to downstream aggregation.
    #[test]
    fn coalesce_transparent_to_aggregation(
        r1 in rel_strategy(A, B, 6),
        r2 in rel_strategy(B, C, 6),
    ) {
        let j = r1.natural_join(&r2);
        prop_assert!(
            j.project_aggregate(&[A, C])
                .semantically_eq(&j.coalesce().project_aggregate(&[A, C]))
        );
    }

    /// Semijoin is idempotent and only shrinks.
    #[test]
    fn semijoin_idempotent(r1 in rel_strategy(A, B, 6), r2 in rel_strategy(B, C, 6)) {
        let once = r1.semijoin(&r2);
        let twice = once.semijoin(&r2);
        prop_assert!(once.semantically_eq(&twice));
        prop_assert!(once.len() <= r1.len());
    }

    /// Semijoin before join does not change the join result (dangling
    /// tuples contribute nothing) — the correctness core of the paper's
    /// "remove dangling tuples" preprocessing.
    #[test]
    fn semijoin_preserves_join(r1 in rel_strategy(A, B, 6), r2 in rel_strategy(B, C, 6)) {
        let direct = r1.natural_join(&r2).project_aggregate(&[A, C]);
        let reduced = r1.semijoin(&r2).natural_join(&r2.semijoin(&r1)).project_aggregate(&[A, C]);
        prop_assert!(direct.semantically_eq(&reduced));
    }

    /// Aggregation can be pushed through a join on the non-join attribute:
    /// ∑_B (R1 ⋈ R2) grouped on A equals joining then grouping — the
    /// distributivity the Yannakakis algorithm exploits.
    #[test]
    fn early_aggregation_is_sound(r1 in rel_strategy(A, B, 6), r2 in rel_strategy(B, C, 6)) {
        // Late: full join, then drop B and C.
        let late = r1.natural_join(&r2).project_aggregate(&[A]);
        // Early: pre-aggregate R2 onto B, join, then drop B.
        let r2_agg = r2.project_aggregate(&[B]);
        let early = r1.natural_join(&r2_agg).project_aggregate(&[A]);
        prop_assert!(late.semantically_eq(&early));
    }

    /// aggregate_all equals project_aggregate onto the empty attribute list.
    #[test]
    fn aggregate_all_is_empty_projection(r1 in rel_strategy(A, B, 6)) {
        let total = r1.aggregate_all();
        let via_project = r1.project_aggregate(&[]);
        if total.is_zero() {
            prop_assert!(via_project.is_empty());
        } else {
            prop_assert_eq!(via_project.entries().len(), 1);
            prop_assert_eq!(&via_project.entries()[0].1, &total);
        }
    }
}

//! Randomized tests of relational-algebra identities that the distributed
//! algorithms rely on implicitly. Inputs come from the deterministic
//! in-tree generator with fixed seeds (reproducible, offline).

use mpcjoin_mpc::DetRng;
use mpcjoin_relation::{Attr, Relation, Schema};
use mpcjoin_semiring::{Count, Semiring};

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

const CASES: u64 = 64;

fn random_rel(rng: &mut DetRng, left: Attr, right: Attr, max_val: u64) -> Relation<Count> {
    let n = rng.gen_range(0usize..25);
    Relation::from_entries(
        Schema::binary(left, right),
        (0..n)
            .map(|_| {
                (
                    vec![rng.gen_range(0..max_val), rng.gen_range(0..max_val)],
                    Count(rng.gen_range(1u64..5)),
                )
            })
            .collect(),
    )
}

/// Join is commutative up to column order and annotation values.
#[test]
fn join_commutes() {
    let mut rng = DetRng::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let r2 = random_rel(&mut rng, B, C, 6);
        let left = r1.natural_join(&r2);
        let right = r2.natural_join(&r1).reorder(left.schema());
        assert!(left.semantically_eq(&right));
    }
}

/// Aggregating after the join equals aggregating the coalesced join:
/// coalescing is transparent to downstream aggregation.
#[test]
fn coalesce_transparent_to_aggregation() {
    let mut rng = DetRng::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let r2 = random_rel(&mut rng, B, C, 6);
        let j = r1.natural_join(&r2);
        assert!(j
            .project_aggregate(&[A, C])
            .semantically_eq(&j.coalesce().project_aggregate(&[A, C])));
    }
}

/// Semijoin is idempotent and only shrinks.
#[test]
fn semijoin_idempotent() {
    let mut rng = DetRng::seed_from_u64(0xC003);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let r2 = random_rel(&mut rng, B, C, 6);
        let once = r1.semijoin(&r2);
        let twice = once.semijoin(&r2);
        assert!(once.semantically_eq(&twice));
        assert!(once.len() <= r1.len());
    }
}

/// Semijoin before join does not change the join result (dangling tuples
/// contribute nothing) — the correctness core of the paper's "remove
/// dangling tuples" preprocessing.
#[test]
fn semijoin_preserves_join() {
    let mut rng = DetRng::seed_from_u64(0xC004);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let r2 = random_rel(&mut rng, B, C, 6);
        let direct = r1.natural_join(&r2).project_aggregate(&[A, C]);
        let reduced = r1
            .semijoin(&r2)
            .natural_join(&r2.semijoin(&r1))
            .project_aggregate(&[A, C]);
        assert!(direct.semantically_eq(&reduced));
    }
}

/// Aggregation can be pushed through a join on the non-join attribute:
/// ∑_B (R1 ⋈ R2) grouped on A equals joining then grouping — the
/// distributivity the Yannakakis algorithm exploits.
#[test]
fn early_aggregation_is_sound() {
    let mut rng = DetRng::seed_from_u64(0xC005);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let r2 = random_rel(&mut rng, B, C, 6);
        // Late: full join, then drop B and C.
        let late = r1.natural_join(&r2).project_aggregate(&[A]);
        // Early: pre-aggregate R2 onto B, join, then drop B.
        let r2_agg = r2.project_aggregate(&[B]);
        let early = r1.natural_join(&r2_agg).project_aggregate(&[A]);
        assert!(late.semantically_eq(&early));
    }
}

/// aggregate_all equals project_aggregate onto the empty attribute list.
#[test]
fn aggregate_all_is_empty_projection() {
    let mut rng = DetRng::seed_from_u64(0xC006);
    for _ in 0..CASES {
        let r1 = random_rel(&mut rng, A, B, 6);
        let total = r1.aggregate_all();
        let via_project = r1.project_aggregate(&[]);
        if total.is_zero() {
            assert!(via_project.is_empty());
        } else {
            assert_eq!(via_project.entries().len(), 1);
            assert_eq!(&via_project.entries()[0].1, &total);
        }
    }
}

//! The trivial cases of §1.5: `N1 = 1` or `N2 = 1`.
//!
//! Broadcasting the one-tuple side costs `O(1)` load; every `(a, c)`
//! output pair then has a unique witnessing `b`, so no semiring addition
//! is needed and each server finishes locally on its share of the big
//! side. Results are disjoint across servers because input relations are
//! sets (no duplicate `(b, c)` tuples).

use crate::problem::MatMulAttrs;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::Row;
use mpcjoin_semiring::Semiring;

/// Whether the trivial algorithm applies.
pub fn is_trivial<S: Semiring>(r1: &DistRelation<S>, r2: &DistRelation<S>) -> bool {
    r1.total_len() <= 1 || r2.total_len() <= 1
}

/// Compute `∑_B R1 ⋈ R2` when one side has at most one tuple.
pub fn trivial_matmul<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> DistRelation<S> {
    let m = MatMulAttrs::infer(r1, r2);
    assert!(is_trivial(r1, r2), "trivial algorithm needs a 1-tuple side");
    let (tiny, big, tiny_is_r1) = if r1.total_len() <= 1 {
        (r1, r2, true)
    } else {
        (r2, r1, false)
    };

    let everywhere = tiny.broadcast(cluster);
    let tiny_pos_b = tiny.schema().positions_of(&[m.b])[0];
    let tiny_pos_out = tiny
        .schema()
        .positions_of(&[if tiny_is_r1 { m.a } else { m.c }])[0];
    let big_pos_b = big.schema().positions_of(&[m.b])[0];
    let big_pos_out = big
        .schema()
        .positions_of(&[if tiny_is_r1 { m.c } else { m.a }])[0];

    let out = big.data().clone().map_local(|server, local| {
        let small: &Vec<(Row, S)> = everywhere.data().local(server);
        let mut results = Vec::new();
        for (row, s) in local {
            for (trow, ts) in small {
                if trow[tiny_pos_b] == row[big_pos_b] {
                    // Output row in (A, C) order.
                    let (a_val, c_val) = if tiny_is_r1 {
                        (trow[tiny_pos_out], row[big_pos_out])
                    } else {
                        (row[big_pos_out], trow[tiny_pos_out])
                    };
                    results.push((vec![a_val, c_val], ts.mul(&s)));
                }
            }
        }
        results
    });
    DistRelation::from_distributed(m.out_schema(), Distributed::from_parts(out.into_parts()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    #[test]
    fn one_row_matrix_times_big_matrix() {
        let mut cluster = Cluster::new(4);
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(7, 3)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, (0..100).map(|i| (i % 5, i)));
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let got = trivial_matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
        // Load is O(1): just the broadcast of the single tuple.
        assert_eq!(cluster.report().load, 1);
    }

    #[test]
    fn tiny_right_side() {
        let mut cluster = Cluster::new(4);
        let r1: Relation<Count> = Relation::binary_ones(A, B, (0..50).map(|i| (i, i % 7)));
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(3, 42)]);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let got = trivial_matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
    }

    #[test]
    fn empty_tiny_side() {
        let mut cluster = Cluster::new(2);
        let r1: Relation<Count> = Relation::binary_ones(A, B, []);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(1, 2)]);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let got = trivial_matmul(&mut cluster, &d1, &d2);
        assert!(got.is_empty());
    }
}

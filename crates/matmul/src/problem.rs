//! The matrix multiplication problem shape shared by all §3 algorithms.

use mpcjoin_mpc::DistRelation;
use mpcjoin_relation::{Attr, Schema};
use mpcjoin_semiring::Semiring;

/// The attributes of `∑_B R1(A, B) ⋈ R2(B, C)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatMulAttrs {
    /// Row attribute (output).
    pub a: Attr,
    /// The shared, aggregated-away attribute.
    pub b: Attr,
    /// Column attribute (output).
    pub c: Attr,
}

impl MatMulAttrs {
    /// Derive the attribute roles from the two input schemas: the shared
    /// attribute is `B`; the remaining attribute of `r1` is `A`, of `r2`
    /// is `C`. Panics when the schemas are not a valid matrix
    /// multiplication shape.
    pub fn infer<S: Semiring>(r1: &DistRelation<S>, r2: &DistRelation<S>) -> Self {
        assert_eq!(r1.schema().arity(), 2, "R1 must be binary");
        assert_eq!(r2.schema().arity(), 2, "R2 must be binary");
        let shared = r1.schema().common(r2.schema());
        let [b] = shared[..] else {
            panic!("matrix multiplication needs exactly one shared attribute, got {shared:?}");
        };
        let a = r1.schema().attrs()[usize::from(r1.schema().attrs()[0] == b)];
        let c = r2.schema().attrs()[usize::from(r2.schema().attrs()[0] == b)];
        MatMulAttrs { a, b, c }
    }

    /// The output schema `(A, C)`.
    pub fn out_schema(&self) -> Schema {
        Schema::binary(self.a, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_mpc::Cluster;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::Count;

    #[test]
    fn infers_roles_regardless_of_column_order() {
        let cluster = Cluster::new(2);
        let r1: Relation<Count> = Relation::binary_ones(Attr(5), Attr(9), [(1, 2)]);
        let r2: Relation<Count> = Relation::binary_ones(Attr(9), Attr(7), [(2, 3)]);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let m = MatMulAttrs::infer(&d1, &d2);
        assert_eq!((m.a, m.b, m.c), (Attr(5), Attr(9), Attr(7)));

        // B first in R1's schema.
        let r1b: Relation<Count> = Relation::binary_ones(Attr(9), Attr(5), [(2, 1)]);
        let d1b = DistRelation::scatter(&cluster, &r1b);
        let m2 = MatMulAttrs::infer(&d1b, &d2);
        assert_eq!((m2.a, m2.b, m2.c), (Attr(5), Attr(9), Attr(7)));
    }

    #[test]
    #[should_panic(expected = "exactly one shared attribute")]
    fn rejects_disjoint_schemas() {
        let cluster = Cluster::new(2);
        let r1: Relation<Count> = Relation::binary_ones(Attr(0), Attr(1), [(1, 2)]);
        let r2: Relation<Count> = Relation::binary_ones(Attr(2), Attr(3), [(2, 3)]);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let _ = MatMulAttrs::infer(&d1, &d2);
    }
}

//! The output-sensitive matrix multiplication algorithm of §3.2
//! (Lemma 2): load `O((N1+N2)/p + (N1·N2·OUT)^{1/3}/p^{2/3})`.
//!
//! Structure, following the paper (inputs must be dangling-free):
//!
//! 1. `OUT ≤ N/p` → [`crate::linear_sparse_mm`].
//! 2. *Heavy rows* — `a` with `OUT_a ≥ √(N2·OUT·L/N1)` join few enough
//!    rows that the intermediate join is `O(√(N1N2OUT/L))`; they are
//!    handled by the worst-case-optimal two-way join with eager
//!    aggregation (within the same load budget as the paper's Yannakakis
//!    step).
//! 3. *Light rows* — parallel-packed by `OUT_a` into groups `A_i`; each
//!    group gets `⌈(|σ_{A_i}R1| + N2)/L⌉` servers holding its rows plus a
//!    replica of `R2` (the paper's step-3 allocation; total `O(p)`).
//!    Inside each group the §2.2 estimator computes, for every column `c`,
//!    the group-local output `|π_A σ_{A_i}R1 ⋈ R2(B,c)|`; heavy columns
//!    (`≥ L` results) are joined inside the group.
//! 4. *Light × light* — each group packs its light columns into windows
//!    `C_{ij}` of `O(L)` group-local output. Tuples are replicated to
//!    their `(i, j)` subqueries by joining against the assignment tables
//!    (a skew-optimal join; the replication volume `√(OUT/L)·√(N1N2)` is
//!    the paper's step-4 shuffle volume, i.e. `O(p·L)`), and all
//!    subqueries are evaluated by one joint `(group, b)`-keyed join with
//!    eager `(a, c)` aggregation. Every elementary product is formed in
//!    exactly one subquery, so no double counting can occur — verified by
//!    the non-idempotent-semiring oracle tests.
//!
//! The outputs of steps 2, 3 and 4 cover disjoint `(a, c)` ranges and are
//! simply concatenated.

use crate::linear::linear_sparse_mm;
use crate::problem::MatMulAttrs;
use mpcjoin_mpc::hash::stable_hash;
use mpcjoin_mpc::join::{full_join, join_aggregate};
use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::primitives::scan::parallel_packing;
use mpcjoin_mpc::primitives::search::lookup_exact;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::{Attr, Row, Schema, Value};
use mpcjoin_semiring::Semiring;
use mpcjoin_sketch::estimate_out_chain_default;

/// Output-size estimates for a matrix multiplication, from §2.2.
pub struct MatMulEstimate {
    /// Constant-factor approximation of `OUT`.
    pub out: u64,
    /// Per-row estimates `OUT_a`, keyed by `a`.
    pub per_a: Distributed<(Value, u64)>,
}

/// Run the §2.2 estimator on the two-relation chain (call after dangling
/// removal, as the paper does).
pub fn estimate_matmul_out<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> MatMulEstimate {
    let m = MatMulAttrs::infer(r1, r2);
    let est = estimate_out_chain_default(cluster, &[r1, r2], &[m.a, m.b, m.c]);
    MatMulEstimate {
        out: est.total,
        per_a: est.per_group,
    }
}

/// Compute `∑_B R1 ⋈ R2` with the §3.2 output-sensitive algorithm.
/// `r1` and `r2` must be dangling-free.
pub fn output_sensitive_matmul<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
    est: MatMulEstimate,
) -> DistRelation<S> {
    let m = MatMulAttrs::infer(r1, r2);
    let p = cluster.p();
    let n1 = r1.total_len() as u64;
    let n2 = r2.total_len() as u64;
    let n = n1 + n2;
    if n1 == 0 || n2 == 0 {
        return DistRelation::empty(cluster, m.out_schema());
    }
    let out = est.out.max(1);
    if out <= n / p as u64 {
        return linear_sparse_mm(cluster, r1, r2);
    }

    let load = (((n1 as f64) * (n2 as f64) * (out as f64) / (p as f64 * p as f64))
        .cbrt()
        .ceil() as u64
        + n / p as u64)
        .max(1);
    let cap_a = (((n2 as f64) * (out as f64) * (load as f64) / (n1 as f64))
        .sqrt()
        .ceil() as u64)
        .max(1);

    // --- Split R1 into heavy and light rows by OUT_a. ---
    let per_a_catalog = est.per_a.clone().map(|(a, e)| (vec![a], e));
    let pos_a = r1.schema().positions_of(&[m.a])[0];
    let attached = r1.attach_stat(cluster, &[m.a], per_a_catalog);
    let mut heavy_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    let mut light_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    for (i, local) in attached.into_parts().into_iter().enumerate() {
        for ((row, s), stat) in local {
            // Dangling-free inputs always have an estimate; treat a
            // missing one as light (correct either way).
            if stat.unwrap_or(0) >= cap_a {
                heavy_parts[i].push((row, s));
            } else {
                light_parts[i].push((row, s));
            }
        }
    }
    let r1_schema = r1.schema().clone();
    let r1_heavy =
        DistRelation::from_distributed(r1_schema.clone(), Distributed::from_parts(heavy_parts));
    let r1_light =
        DistRelation::from_distributed(r1_schema.clone(), Distributed::from_parts(light_parts));

    let mut result_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];

    // --- Step 2: heavy rows via the skew-optimal two-way join. ---
    if !r1_heavy.is_empty() {
        let out_heavy = join_aggregate(cluster, &r1_heavy, r2, &[m.a, m.c]);
        for (i, local) in out_heavy.into_data().into_parts().into_iter().enumerate() {
            result_parts[i].extend(local);
        }
    }

    if r1_light.is_empty() {
        return DistRelation::from_distributed(
            m.out_schema(),
            Distributed::from_parts(result_parts),
        );
    }

    // --- Step 3: pack light rows into groups A_i by OUT_a. ---
    let ha_cap = cap_a;
    let light_per_a = est.per_a.par_map_local(cluster, move |_, items| {
        items
            .into_iter()
            .filter(|(_, e)| *e < ha_cap)
            .map(|(a, e)| (a, e.max(1)))
            .collect::<Vec<_>>()
    });
    let pack_a = parallel_packing(cluster, light_per_a, |(_, e)| *e, cap_a);
    let k1 = pack_a.groups as usize;
    let gid_catalog = pack_a.assigned.clone().map(|((a, _), gid)| (vec![a], gid));
    let with_gid = lookup_exact(
        cluster,
        r1_light.data().clone(),
        move |(row, _): &(Row, S)| vec![row[pos_a]],
        gid_catalog,
    );

    // Group sizes (driver knowledge; one gather round inside reduce).
    let gid_counts = reduce_by_key(
        cluster,
        with_gid.clone().map(|(_, gid)| (gid.unwrap_or(0), 1u64)),
        |acc, v| *acc += v,
    );
    let gathered = {
        let _op = cluster.op("os:gather-group-sizes");
        cluster.exchange(
            gid_counts
                .into_parts()
                .into_iter()
                .map(|local| local.into_iter().map(|kv| (0usize, kv)).collect())
                .collect(),
        )
    };
    let mut size_of_group = vec![0u64; k1];
    for &(gid, count) in gathered.local(0) {
        size_of_group[gid as usize] = count;
    }

    // Allocate the per-group subclusters (paper: p_i = ⌈(|σ_{A_i}R1| + N2)/L⌉).
    let sizes: Vec<usize> = size_of_group
        .iter()
        .map(|&s| ((s + n2).div_ceil(load) as usize).max(1))
        .collect();
    let (mut children, offsets) = cluster.split_with_offsets(&sizes);

    // Ship each group its rows plus a replica of R2 (one parent round).
    let mut ship_out: Vec<Vec<(usize, (u64, u8, Row, S))>> = vec![Vec::new(); p];
    for (src, local) in with_gid.into_parts().into_iter().enumerate() {
        for ((row, s), gid) in local {
            let i = gid.unwrap_or(0) as usize;
            let dest = (offsets[i] + stable_hash(&row) as usize % sizes[i]) % p;
            ship_out[src].push((dest, (i as u64, 1u8, row, s)));
        }
    }
    for (src, local) in r2.data().iter() {
        for (row, s) in local {
            for i in 0..k1 {
                let dest = (offsets[i] + stable_hash(&row) as usize % sizes[i]) % p;
                ship_out[src].push((dest, (i as u64, 2u8, row.clone(), s.clone())));
            }
        }
    }
    let shipped = {
        let _op = cluster.op("os:ship-groups");
        cluster.exchange(ship_out)
    };

    // --- Per-group work: estimate columns, join heavy columns, emit
    // light-column window assignments. All groups run in parallel on the
    // shared timeline. ---
    let g_attr = Attr(m.a.0.max(m.b.0).max(m.c.0) + 1);
    let mut assign_c_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    let mut j_count = vec![0u64; k1];
    for (i, child) in children.iter_mut().enumerate() {
        let pi = sizes[i];
        // Carve this group's shipment out of the parent-indexed inboxes.
        let mut r1_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); pi];
        let mut r2_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); pi];
        for j in 0..pi {
            for (tag, side, row, s) in shipped.local((offsets[i] + j) % p) {
                if *tag == i as u64 {
                    if *side == 1 {
                        r1_parts[j].push((row.clone(), s.clone()));
                    } else {
                        r2_parts[j].push((row.clone(), s.clone()));
                    }
                }
            }
        }
        let mut r1_i =
            DistRelation::from_distributed(r1_schema.clone(), Distributed::from_parts(r1_parts));
        let mut r2_i =
            DistRelation::from_distributed(r2.schema().clone(), Distributed::from_parts(r2_parts));

        // Group-internal dangling removal (degrees within the subquery
        // then obey d1·d2 ≤ group output).
        if r1_i.is_empty() {
            continue;
        }
        r2_i = r2_i.semijoin(child, &r1_i);
        if r2_i.is_empty() {
            continue;
        }
        r1_i = r1_i.semijoin(child, &r2_i);

        // Estimate per-column group-local output |π_A σ_{A_i}R1 ⋈ R2(B,c)|.
        let col_est = estimate_out_chain_default(child, &[&r2_i, &r1_i], &[m.c, m.b, m.a]);

        // Split R2_i by column heaviness.
        let col_catalog = col_est.per_group.clone().map(|(c, e)| (vec![c], e));
        let attached_c = r2_i.attach_stat(child, &[m.c], col_catalog);
        let mut hvy: Vec<Vec<(Row, S)>> = vec![Vec::new(); pi];
        for (j, local) in attached_c.into_parts().into_iter().enumerate() {
            for ((row, s), e) in local {
                if e.unwrap_or(0) >= load {
                    hvy[j].push((row, s));
                }
            }
        }
        let r2_heavy =
            DistRelation::from_distributed(r2_i.schema().clone(), Distributed::from_parts(hvy));
        if !r2_heavy.is_empty() {
            let out_hc = join_aggregate(child, &r1_i, &r2_heavy, &[m.a, m.c]);
            for (slot, local) in out_hc
                .into_data()
                .reindexed(p, offsets[i])
                .into_parts()
                .into_iter()
                .enumerate()
            {
                result_parts[slot].extend(local);
            }
        }

        // Pack light columns into windows of O(L) group-local output and
        // emit (c → group·window) assignment tuples.
        let lcap = load;
        let light_cols = col_est.per_group.par_map_local(child, move |_, items| {
            items
                .into_iter()
                .filter(|(_, e)| *e < lcap)
                .map(|(c, e)| (c, e.max(1)))
                .collect::<Vec<_>>()
        });
        let pack_c = parallel_packing(child, light_cols, |(_, e)| *e, load);
        j_count[i] = pack_c.groups;
        let gi = i as u64;
        let assigns = pack_c
            .assigned
            .map(move |((c, _), j)| (vec![c, (gi << 32) | j], S::one()))
            .reindexed(p, offsets[i]);
        for (slot, local) in assigns.into_parts().into_iter().enumerate() {
            assign_c_parts[slot].extend(local);
        }
    }
    cluster.join_parallel(&children);

    // --- Step 4: replicate to (group, window) subqueries and evaluate
    // them jointly. ---
    let assign_c = DistRelation::from_distributed(
        Schema::binary(m.c, g_attr),
        Distributed::from_parts(assign_c_parts),
    );
    let assign_a_data = pack_a.assigned.par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .flat_map(|((a, _), i)| {
                (0..j_count[i as usize]).map(move |j| (vec![a, (i << 32) | j], S::one()))
            })
            .collect::<Vec<_>>()
    });
    let assign_a = DistRelation::from_distributed(Schema::binary(m.a, g_attr), assign_a_data);

    if assign_a.is_empty() || assign_c.is_empty() {
        return DistRelation::from_distributed(
            m.out_schema(),
            Distributed::from_parts(result_parts),
        );
    }

    let side1 = full_join(cluster, &assign_a, &r1_light); // (A, G, B)
    let side2 = full_join(cluster, &assign_c, r2); // (C, G, B)
    if !side1.is_empty() && !side2.is_empty() {
        let out_ll = join_aggregate(cluster, &side1, &side2, &[m.a, m.c]);
        for (i, local) in out_ll.into_data().into_parts().into_iter().enumerate() {
            result_parts[i].extend(local);
        }
    }

    DistRelation::from_distributed(m.out_schema(), Distributed::from_parts(result_parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::{Edge, TreeQuery};
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, XorRing};
    use mpcjoin_yannakakis::remove_dangling;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn check<SR: Semiring>(r1: &Relation<SR>, r2: &Relation<SR>, p: usize) -> Cluster {
        let mut cluster = Cluster::new(p);
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let d1 = DistRelation::scatter(&cluster, r1);
        let d2 = DistRelation::scatter(&cluster, r2);
        let reduced = remove_dangling(&mut cluster, &q, &[d1, d2]);
        let est = estimate_matmul_out(&mut cluster, &reduced[0], &reduced[1]);
        let got = output_sensitive_matmul(&mut cluster, &reduced[0], &reduced[1], est);
        let expect = r1.join_aggregate(r2, &[A, C]);
        assert!(
            got.gather().semantically_eq(&expect),
            "output-sensitive matmul diverged from local evaluation"
        );
        cluster
    }

    #[test]
    fn medium_output_random() {
        let r1 = Relation::<Count>::binary_ones(A, B, (0..300u64).map(|i| (i % 60, (i * 7) % 20)));
        let r2 = Relation::<Count>::binary_ones(B, C, (0..300u64).map(|i| ((i * 3) % 20, i % 50)));
        check(&r1, &r2, 8);
    }

    #[test]
    fn skewed_rows_some_heavy() {
        let mut p1 = Vec::new();
        // One row joining everything (heavy OUT_a), many light rows.
        for bv in 0..50u64 {
            p1.push((999, bv));
        }
        for i in 0..100u64 {
            p1.push((i, i % 50));
        }
        let r2: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 50, i % 97)).collect();
        check(
            &Relation::<Count>::binary_ones(A, B, p1),
            &Relation::<Count>::binary_ones(B, C, r2),
            8,
        );
    }

    #[test]
    fn xor_detects_duplicate_elementary_products() {
        // GF(2): if any (a,b,c) product were computed twice, annotations
        // would cancel and diverge from the oracle.
        let r1 =
            Relation::<XorRing>::binary_ones(A, B, (0..200u64).map(|i| (i % 40, (i * 11) % 25)));
        let r2 =
            Relation::<XorRing>::binary_ones(B, C, (0..200u64).map(|i| ((i * 13) % 25, i % 30)));
        check(&r1, &r2, 8);
    }

    #[test]
    fn small_output_takes_linear_path() {
        let n = 512u64;
        let r1 = Relation::<Count>::binary_ones(A, B, (0..n).map(|i| (i, i)));
        let r2 = Relation::<Count>::binary_ones(B, C, (0..n).map(|i| (i, i)));
        let cluster = check(&r1, &r2, 8);
        assert!(cluster.report().load <= 6 * (2 * n / 8) + 300);
    }

    #[test]
    fn dense_block_output() {
        // A dense 20×20 block through a few b's: OUT = 400 ≫ N/p.
        let r1 = Relation::<Count>::binary_ones(
            A,
            B,
            (0..20u64).flat_map(|a| (0..3u64).map(move |b| (a, b))),
        );
        let r2 = Relation::<Count>::binary_ones(
            B,
            C,
            (0..3u64).flat_map(|b| (0..20u64).map(move |c| (b, c))),
        );
        check(&r1, &r2, 4);
    }
}

//! The lower-bound instances of Theorems 2 and 3, including their
//! adversarial initial data placements.
//!
//! These constructions make the benchmark harness's `lowerbounds`
//! experiment possible: running the upper-bound algorithm on them shows
//! the measured load sandwiched between the theorems' `Ω(·)` bounds and
//! Theorem 1's `O(·)` bound.

use mpcjoin_relation::{Attr, Relation, Schema};
use mpcjoin_semiring::Semiring;

/// A hard instance with a prescribed initial placement.
pub struct HardInstance<S: Semiring> {
    /// `R1(A, B)`.
    pub r1: Relation<S>,
    /// `R2(B, C)`.
    pub r2: Relation<S>,
    /// Prescribed initial server of each `r1` entry (same order).
    pub r1_placement: Vec<usize>,
    /// Prescribed initial server of each `r2` entry (same order).
    pub r2_placement: Vec<usize>,
    /// The instance's exact output size.
    pub out: u64,
}

/// The Theorem 2 instance: `R1 = {a} × {b_1..b_{N1}}`,
/// `R2 = {b_1, b_2} × {c_1..c_{N2/2}}`, plus dummy tuples, with `R2`
/// spread so that no two tuples sharing a `c` start on the same server —
/// forcing `Ω(N2/p)` traffic to pair them up.
pub fn theorem2_instance<S: Semiring>(
    a_attr: Attr,
    b_attr: Attr,
    c_attr: Attr,
    n1: u64,
    n2: u64,
    p: usize,
) -> HardInstance<S> {
    assert!(n1 >= 2 && n2 >= 2);
    let mut r1 = Relation::empty(Schema::binary(a_attr, b_attr));
    for b in 0..n1 {
        r1.push(vec![0, b], S::one());
    }
    let half = n2 / 2;
    let mut r2 = Relation::empty(Schema::binary(b_attr, c_attr));
    let mut r2_placement = Vec::new();
    for c in 0..half {
        // The two tuples of column c start on distinct servers.
        r2.push(vec![0, c], S::one());
        r2_placement.push((2 * c as usize) % p);
        r2.push(vec![1, c], S::one());
        r2_placement.push((2 * c as usize + 1) % p);
    }
    let r1_placement = (0..r1.len()).map(|i| i % p).collect();
    let out = half; // each c yields one (a, c) output
    HardInstance {
        r1,
        r2,
        r1_placement,
        r2_placement,
        out,
    }
}

/// The Theorem 3 instance: complete bipartite blocks
/// `R1 = dom(A) × dom(B)`, `R2 = dom(B) × dom(C)` with
/// `|dom(A)| = √(N1·OUT/N2)`, `|dom(B)| = √(N1N2/OUT)`,
/// `|dom(C)| = √(N2·OUT/N1)`, so the output is all of
/// `dom(A) × dom(C)` (size `OUT`) while `N1·N2/|dom(B)|` elementary
/// products must be formed. `R1` and `R2` start on disjoint servers.
pub fn theorem3_instance<S: Semiring>(
    a_attr: Attr,
    b_attr: Attr,
    c_attr: Attr,
    n1: u64,
    n2: u64,
    out: u64,
    p: usize,
) -> HardInstance<S> {
    assert!(n1 >= 2 && n2 >= 2);
    assert!(
        out >= n1.max(n2) && out <= n1 * n2,
        "Theorem 3 needs max(N1,N2) ≤ OUT ≤ N1·N2"
    );
    let dom_a = (((n1 as f64) * (out as f64) / (n2 as f64)).sqrt().round() as u64).max(1);
    let dom_b = (((n1 as f64) * (n2 as f64) / (out as f64)).sqrt().round() as u64).max(1);
    let dom_c = (((n2 as f64) * (out as f64) / (n1 as f64)).sqrt().round() as u64).max(1);

    let mut r1 = Relation::empty(Schema::binary(a_attr, b_attr));
    for a in 0..dom_a {
        for b in 0..dom_b {
            r1.push(vec![a, b], S::one());
        }
    }
    let mut r2 = Relation::empty(Schema::binary(b_attr, c_attr));
    for b in 0..dom_b {
        for c in 0..dom_c {
            r2.push(vec![b, c], S::one());
        }
    }
    // R1 on the first half of the servers, R2 on the second half.
    let split = (p / 2).max(1);
    let r1_placement = (0..r1.len()).map(|i| i % split).collect();
    let r2_placement = (0..r2.len())
        .map(|i| split + (i % (p - split).max(1)))
        .collect();
    let out_exact = dom_a * dom_c;
    HardInstance {
        r1,
        r2,
        r1_placement,
        r2_placement,
        out: out_exact,
    }
}

/// Numeric value of the Theorem 2 bound `Ω((N1+N2)/p)` for reporting.
pub fn theorem2_bound(n1: u64, n2: u64, p: u64) -> f64 {
    (n1 + n2) as f64 / p as f64
}

/// Place a [`HardInstance`] on a cluster per its prescribed distribution.
pub fn place<S: Semiring>(
    cluster: &mpcjoin_mpc::Cluster,
    inst: &HardInstance<S>,
) -> (mpcjoin_mpc::DistRelation<S>, mpcjoin_mpc::DistRelation<S>) {
    let d1 = cluster.place_initial(
        inst.r1_placement
            .iter()
            .copied()
            .zip(inst.r1.entries().iter().cloned())
            .collect(),
    );
    let d2 = cluster.place_initial(
        inst.r2_placement
            .iter()
            .copied()
            .zip(inst.r2.entries().iter().cloned())
            .collect(),
    );
    (
        mpcjoin_mpc::DistRelation::from_distributed(inst.r1.schema().clone(), d1),
        mpcjoin_mpc::DistRelation::from_distributed(inst.r2.schema().clone(), d2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::BoolRing;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    #[test]
    fn theorem2_shape() {
        let inst = theorem2_instance::<BoolRing>(A, B, C, 16, 64, 8);
        assert_eq!(inst.r1.len(), 16);
        assert_eq!(inst.r2.len(), 64);
        assert_eq!(inst.out, 32);
        // No two same-c tuples start on one server.
        for (i, (row, _)) in inst.r2.entries().iter().enumerate() {
            for (j, (row2, _)) in inst.r2.entries().iter().enumerate().skip(i + 1) {
                if row[1] == row2[1] {
                    assert_ne!(
                        inst.r2_placement[i], inst.r2_placement[j],
                        "column {} colocated",
                        row[1]
                    );
                }
            }
        }
    }

    #[test]
    fn theorem3_sizes_and_output() {
        let (n1, n2, out) = (1u64 << 8, 1u64 << 8, 1u64 << 12);
        let inst = theorem3_instance::<BoolRing>(A, B, C, n1, n2, out, 16);
        // Sizes within a factor 2 of the request (rounding of √·).
        assert!(inst.r1.len() as u64 >= n1 / 2 && inst.r1.len() as u64 <= n1 * 2);
        assert!(inst.r2.len() as u64 >= n2 / 2 && inst.r2.len() as u64 <= n2 * 2);
        assert!(inst.out >= out / 2 && inst.out <= out * 2);
        // Exact output: every (a, c) pair.
        let local = inst.r1.join_aggregate(&inst.r2, &[A, C]);
        assert_eq!(local.len() as u64, inst.out);
    }

    #[test]
    #[should_panic(expected = "Theorem 3 needs")]
    fn theorem3_rejects_bad_out() {
        let _ = theorem3_instance::<BoolRing>(A, B, C, 16, 16, 4, 4);
    }
}

//! The closed-form load bounds of Table 1 and Theorems 1–3, used by the
//! benchmark harness to print "paper bound" columns next to measured
//! loads, and by tests to sanity-check measured loads against the theory.

/// Load of the distributed Yannakakis baseline on matrix multiplication:
/// `O(N/p + N·√OUT / p)` (Table 1, first row, left column).
pub fn yannakakis_mm_bound(n: u64, out: u64, p: u64) -> f64 {
    let (n, out, p) = (n as f64, out as f64, p as f64);
    n / p + n * out.sqrt() / p
}

/// Load of the paper's matrix multiplication algorithm (Theorem 1):
/// `O((N1+N2)/p + min{ √(N1N2)/p̂, (N1N2OUT)^{1/3}/p^{2/3} })`
/// where the first min-term uses `√p`-scaling via `√(N1N2/p)`.
pub fn new_mm_bound(n1: u64, n2: u64, out: u64, p: u64) -> f64 {
    let (n1, n2, out, p) = (n1 as f64, n2 as f64, out as f64, p as f64);
    let worst_case = (n1 * n2 / p).sqrt();
    let output_sensitive = (n1 * n2 * out).cbrt() / p.powf(2.0 / 3.0);
    (n1 + n2) / p + worst_case.min(output_sensitive)
}

/// The Theorem 3 lower bound:
/// `Ω(min{ √(N1N2/p), (N1N2OUT)^{1/3}/p^{2/3} })`.
pub fn mm_lower_bound(n1: u64, n2: u64, out: u64, p: u64) -> f64 {
    let (n1, n2, out, p) = (n1 as f64, n2 as f64, out as f64, p as f64);
    ((n1 * n2 / p).sqrt()).min((n1 * n2 * out).cbrt() / p.powf(2.0 / 3.0))
}

/// Yannakakis baseline on star queries with `n` relations:
/// `O(N/p + N·OUT^{1−1/n}/p)` (Table 1).
pub fn yannakakis_star_bound(n_input: u64, out: u64, p: u64, n_rels: u32) -> f64 {
    let (n, out, p) = (n_input as f64, out as f64, p as f64);
    n / p + n * out.powf(1.0 - 1.0 / n_rels as f64) / p
}

/// Yannakakis baseline on line (and general tree) queries:
/// `O(N/p + N·OUT/p)` (Table 1).
pub fn yannakakis_line_bound(n_input: u64, out: u64, p: u64) -> f64 {
    let (n, out, p) = (n_input as f64, out as f64, p as f64);
    n / p + n * out / p
}

/// The paper's star/line bound (Table 1, shared row):
/// `O((N·OUT/p)^{2/3} + N·OUT^{1/2}/p + (N+OUT)/p)`.
pub fn new_star_line_bound(n_input: u64, out: u64, p: u64) -> f64 {
    let (n, out, p) = (n_input as f64, out as f64, p as f64);
    (n * out / p).powf(2.0 / 3.0) + n * out.sqrt() / p + (n + out) / p
}

/// The paper's tree bound (Table 1, last row):
/// `O(N·OUT^{2/3}/p + (N+OUT)/p)`.
pub fn new_tree_bound(n_input: u64, out: u64, p: u64) -> f64 {
    let (n, out, p) = (n_input as f64, out as f64, p as f64);
    n * out.powf(2.0 / 3.0) / p + (n + out) / p
}

/// Load of distributed Yannakakis on a *free-connex* query, where it is
/// already output-optimal (§1.2, §1.4): `O((N + OUT)/p)`.
pub fn yannakakis_free_connex_bound(n_input: u64, out: u64, p: u64) -> f64 {
    let (n, out, p) = (n_input as f64, out as f64, p as f64);
    (n + out) / p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_mm_beats_yannakakis_for_large_out() {
        let (n, p) = (1 << 16, 64);
        for out in [1u64 << 8, 1 << 12, 1 << 16, 1 << 20] {
            assert!(
                new_mm_bound(n, n, out, p) <= yannakakis_mm_bound(n, out, p),
                "new bound must not exceed baseline at OUT={out}"
            );
        }
    }

    #[test]
    fn min_term_crossover() {
        // For small OUT the output-sensitive term wins; for OUT near
        // N1N2 the worst-case term wins.
        let (n, p) = (1u64 << 14, 64);
        let small = new_mm_bound(n, n, n, p);
        let wc = ((n as f64) * (n as f64) / p as f64).sqrt();
        assert!(small < wc);
        let huge = new_mm_bound(n, n, n * n, p);
        assert!((huge - (n as f64 + n as f64) / p as f64 - wc).abs() / wc < 1e-9);
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        for (n1, n2, out, p) in [
            (1u64 << 10, 1u64 << 14, 1u64 << 16, 64u64),
            (1 << 12, 1 << 12, 1 << 20, 256),
        ] {
            assert!(mm_lower_bound(n1, n2, out, p) <= new_mm_bound(n1, n2, out, p) + 1.0);
        }
    }

    #[test]
    fn tree_bound_beats_baseline() {
        let (n, p) = (1u64 << 14, 64);
        for out in [1u64 << 6, 1 << 10, 1 << 14] {
            assert!(new_tree_bound(n, out, p) <= yannakakis_line_bound(n, out, p));
        }
    }
}

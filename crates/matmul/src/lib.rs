//! Optimal MPC sparse matrix multiplication — §3 of Hu & Yi (PODS 2020).
//!
//! Computes `∑_B R1(A,B) ⋈ R2(B,C)` over any commutative semiring with
//! load `O((N1+N2)/p + min{√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3}})` in
//! `O(1)` rounds (Theorem 1) — optimal in the semiring MPC model by
//! Theorems 2–3, whose hard instances are also constructed here.
//!
//! * [`matmul`] — the Theorem 1 dispatcher (use this),
//! * [`wco_matmul`] — the worst-case optimal algorithm (§3.1),
//! * [`output_sensitive_matmul`] / [`estimate_matmul_out`] — the
//!   output-sensitive algorithm (§3.2) and its §2.2 estimator,
//! * [`linear_sparse_mm`] — `LinearSparseMM` for `OUT ≤ N/p` (§3.2),
//! * [`trivial_matmul`] / [`skewed_matmul`] — the degenerate regimes,
//! * [`hard`] — the Theorem 2–3 lower-bound instances,
//! * [`theory`] — closed-form bound formulas for the harness.

mod dispatch;
pub mod hard;
mod linear;
mod output_sensitive;
mod problem;
mod skewed;
pub mod theory;
mod trivial;
mod wco;

pub use dispatch::{matmul, MatMulPath};
pub use linear::linear_sparse_mm;
pub use output_sensitive::{estimate_matmul_out, output_sensitive_matmul, MatMulEstimate};
pub use problem::MatMulAttrs;
pub use skewed::{is_skewed, skewed_matmul};
pub use trivial::{is_trivial, trivial_matmul};
pub use wco::wco_matmul;

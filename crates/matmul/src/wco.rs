//! The worst-case optimal matrix multiplication algorithm of §3.1
//! (Lemma 1): load `O((N1+N2)/p + √(N1N2/p))` in `O(1)` rounds.
//!
//! With target load `L = √(N1N2/p)`, values of `A` (resp. `C`) are *heavy*
//! when their degree reaches `L`. The query splits into four disjoint
//! subqueries by heaviness:
//!
//! * **heavy–heavy** — each pair `(a, c)` gets `⌈(deg(a)+deg(c))/L⌉`
//!   servers; tuples hash-partition by `b` inside the group, partial
//!   products are aggregated globally (the pair count is at most `p`);
//! * **heavy–light / light–heavy** — each heavy value gets a server group
//!   holding its row/column plus all light tuples of the other side,
//!   hash-partitioned by `b`;
//! * **light–light** — parallel-packing groups light values into
//!   degree-`O(L)` bundles on both sides; the bundles form a
//!   `⌈N1/L⌉ × ⌈N2/L⌉` grid, each cell joining one `A`-bundle against one
//!   `C`-bundle entirely locally. Keeping these results local — *locality*,
//!   in the paper's words — is what lets the worst case avoid any
//!   `OUT`-dependent shuffle.
//!
//! The four cover disjoint `(a, c)` ranges, so their union needs no final
//! cross-subquery aggregation.

use crate::problem::MatMulAttrs;
use mpcjoin_mpc::hash::stable_hash;
use mpcjoin_mpc::primitives::reduce::reduce_by_key;
use mpcjoin_mpc::primitives::scan::parallel_packing;
use mpcjoin_mpc::primitives::search::lookup_exact;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::{Row, Value};
use mpcjoin_semiring::Semiring;
use std::collections::{HashMap, HashSet};

/// Kind tags for the four subqueries.
const HH: u8 = 0;
const HL: u8 = 1;
const LH: u8 = 2;
const LL: u8 = 3;

/// Compute `∑_B R1 ⋈ R2` with the §3.1 algorithm.
pub fn wco_matmul<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> DistRelation<S> {
    let m = MatMulAttrs::infer(r1, r2);
    let p = cluster.p();
    let n1 = r1.total_len() as u64;
    let n2 = r2.total_len() as u64;
    if n1 == 0 || n2 == 0 {
        return DistRelation::empty(cluster, m.out_schema());
    }
    let load = (((n1 * n2) as f64 / p as f64).sqrt().ceil() as u64).max(1);

    // --- Step 1: degree statistics and heavy lists. ---
    let deg_a = r1.degrees(cluster, m.a);
    let deg_c = r2.degrees(cluster, m.c);
    let heavy_a = broadcast_heavy(cluster, &deg_a, load);
    let heavy_c = broadcast_heavy(cluster, &deg_c, load);
    let heavy_a_set: HashSet<Value> = heavy_a.iter().map(|(v, _)| *v).collect();
    let heavy_c_set: HashSet<Value> = heavy_c.iter().map(|(v, _)| *v).collect();
    let n1_light = n1 - heavy_a.iter().map(|(_, d)| *d).sum::<u64>();
    let n2_light = n2 - heavy_c.iter().map(|(_, d)| *d).sum::<u64>();

    // Light-value bundles on both sides (Step 4 prep).
    let ha = heavy_a_set.clone();
    let light_a = deg_a.par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .filter(|(v, _)| !ha.contains(v))
            .collect::<Vec<_>>()
    });
    let hc = heavy_c_set.clone();
    let light_c = deg_c.par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .filter(|(v, _)| !hc.contains(v))
            .collect::<Vec<_>>()
    });
    let pack_a = parallel_packing(cluster, light_a, |(_, d)| *d, load);
    let pack_c = parallel_packing(cluster, light_c, |(_, d)| *d, load);
    let (k_groups, l_groups) = (pack_a.groups, pack_c.groups);

    // --- Server allocation (deterministic driver arithmetic). ---
    let mut next = 0usize;
    let mut hh_groups: HashMap<(Value, Value), (usize, usize)> = HashMap::new();
    for &(a, da) in &heavy_a {
        for &(c, dc) in &heavy_c {
            let size = ((da + dc).div_ceil(load) as usize).max(1);
            hh_groups.insert((a, c), (next, size));
            next += size;
        }
    }
    let mut hl_groups: HashMap<Value, (usize, usize)> = HashMap::new();
    for &(a, da) in &heavy_a {
        let size = ((da + n2_light).div_ceil(load) as usize).max(1);
        hl_groups.insert(a, (next, size));
        next += size;
    }
    let mut lh_groups: HashMap<Value, (usize, usize)> = HashMap::new();
    for &(c, dc) in &heavy_c {
        let size = ((dc + n1_light).div_ceil(load) as usize).max(1);
        lh_groups.insert(c, (next, size));
        next += size;
    }
    let ll_base = next;

    // --- Attach light bundle ids to tuples (side-disambiguated keys). ---
    let mut catalog_parts: Vec<Vec<(Row, u64)>> = vec![Vec::new(); p];
    for (i, local) in pack_a.assigned.into_parts().into_iter().enumerate() {
        catalog_parts[i].extend(local.into_iter().map(|((v, _), g)| (vec![1u64, v], g)));
    }
    for (i, local) in pack_c.assigned.into_parts().into_iter().enumerate() {
        catalog_parts[i].extend(local.into_iter().map(|((v, _), g)| (vec![2u64, v], g)));
    }
    let catalog = Distributed::from_parts(catalog_parts);

    let pos_a = r1.schema().positions_of(&[m.a])[0];
    let pos_b1 = r1.schema().positions_of(&[m.b])[0];
    let pos_b2 = r2.schema().positions_of(&[m.b])[0];
    let pos_c = r2.schema().positions_of(&[m.c])[0];

    let mut tagged_parts: Vec<Vec<(u8, Row, S)>> = vec![Vec::new(); p];
    for (i, local) in r1.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(r, s)| (1u8, r.clone(), s.clone())));
    }
    for (i, local) in r2.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(r, s)| (2u8, r.clone(), s.clone())));
    }
    let with_gid = lookup_exact(
        cluster,
        Distributed::from_parts(tagged_parts),
        move |(side, row, _): &(u8, Row, S)| {
            if *side == 1 {
                vec![1u64, row[pos_a]]
            } else {
                vec![2u64, row[pos_c]]
            }
        },
        catalog,
    );

    // --- Route every tuple to its subquery servers. ---
    // Items carry (kind, task key, side, b, out-value, annotation); the
    // out-value is `a` for side 1 and `c` for side 2.
    type Item<S> = (u8, (Value, Value), u8, Value, Value, S);
    let outboxes: Vec<Vec<(usize, Item<S>)>> = with_gid
        .into_parts()
        .into_iter()
        .map(|local| {
            let mut out = Vec::new();
            for ((side, row, s), gid) in local {
                let (own, b) = if side == 1 {
                    (row[pos_a], row[pos_b1])
                } else {
                    (row[pos_c], row[pos_b2])
                };
                let hb = stable_hash(&b) as usize;
                let is_heavy = if side == 1 {
                    heavy_a_set.contains(&own)
                } else {
                    heavy_c_set.contains(&own)
                };
                if is_heavy {
                    // Heavy-heavy pairs with every heavy partner.
                    let partners: &Vec<(Value, u64)> = if side == 1 { &heavy_c } else { &heavy_a };
                    for &(other, _) in partners {
                        let key = if side == 1 {
                            (own, other)
                        } else {
                            (other, own)
                        };
                        let (base, size) = hh_groups[&key];
                        out.push(((base + hb % size) % p, (HH, key, side, b, own, s.clone())));
                    }
                    // Its own heavy-light (resp. light-heavy) group.
                    let (kind, (base, size)) = if side == 1 {
                        (HL, hl_groups[&own])
                    } else {
                        (LH, lh_groups[&own])
                    };
                    out.push(((base + hb % size) % p, (kind, (own, 0), side, b, own, s)));
                } else {
                    // Light: join every heavy partner's group…
                    let partner_groups: &HashMap<Value, (usize, usize)> =
                        if side == 1 { &lh_groups } else { &hl_groups };
                    let kind = if side == 1 { LH } else { HL };
                    for (&other, &(base, size)) in partner_groups {
                        out.push((
                            (base + hb % size) % p,
                            (kind, (other, 0), side, b, own, s.clone()),
                        ));
                    }
                    // …and its light-light grid row/column.
                    let g = gid.expect("light value must have a bundle id");
                    if side == 1 {
                        for j in 0..l_groups {
                            out.push((
                                (ll_base + (g * l_groups + j) as usize) % p,
                                (LL, (g, j), side, b, own, s.clone()),
                            ));
                        }
                    } else {
                        for i in 0..k_groups {
                            out.push((
                                (ll_base + (i * l_groups + g) as usize) % p,
                                (LL, (i, g), side, b, own, s.clone()),
                            ));
                        }
                    }
                }
            }
            out
        })
        .collect();
    let at_servers = {
        // The Theorem-1 routing round: every light-light grid cell gets
        // one A-bundle plus one C-bundle (≤ 2L each after packing), so a
        // cell server receives up to 4L units here — the constant behind
        // the auditor's default slack.
        let _op = cluster.op("wco:route");
        cluster.exchange(outboxes)
    };

    // --- Local joins. Light-light results are final; the hash-partitioned
    // kinds produce (a, c)-keyed partials for one global aggregation. ---
    let computed = at_servers.par_map_local(cluster, |_, items| {
        // (kind, task, b) → per-side values.
        let mut sides: HashMap<(u8, (Value, Value), Value), (Vec<(Value, S)>, Vec<(Value, S)>)> =
            HashMap::new();
        for (kind, task, side, b, own, s) in items {
            let entry = sides.entry((kind, task, b)).or_default();
            if side == 1 {
                entry.0.push((own, s));
            } else {
                entry.1.push((own, s));
            }
        }
        let mut partials: HashMap<(Value, Value), S> = HashMap::new();
        let mut finals: HashMap<(Value, Value), S> = HashMap::new();
        for ((kind, _task, _b), (lefts, rights)) in sides {
            let sink = if kind == LL {
                &mut finals
            } else {
                &mut partials
            };
            for (a_val, ls) in &lefts {
                for (c_val, rs) in &rights {
                    let annot = ls.mul(rs);
                    match sink.get_mut(&(*a_val, *c_val)) {
                        Some(acc) => acc.add_assign(&annot),
                        None => {
                            sink.insert((*a_val, *c_val), annot);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(bool, (Value, Value), S)> = partials
            .into_iter()
            .map(|(k, s)| (false, k, s))
            .chain(finals.into_iter().map(|(k, s)| (true, k, s)))
            .collect();
        out.sort_by_key(|x| (x.0, x.1));
        out
    });

    // Separate final (light-light) results from partials needing a reduce.
    let mut final_parts: Vec<Vec<(Row, S)>> = vec![Vec::new(); p];
    let mut partial_parts: Vec<Vec<((Value, Value), S)>> = vec![Vec::new(); p];
    for (i, local) in computed.into_parts().into_iter().enumerate() {
        for (is_final, (a, c), s) in local {
            if is_final {
                final_parts[i].push((vec![a, c], s));
            } else {
                partial_parts[i].push(((a, c), s));
            }
        }
    }
    let reduced = reduce_by_key(
        cluster,
        Distributed::from_parts(partial_parts),
        |acc: &mut S, v| acc.add_assign(&v),
    );
    for (i, local) in reduced.into_parts().into_iter().enumerate() {
        final_parts[i].extend(
            local
                .into_iter()
                .filter(|(_, s)| !s.is_zero())
                .map(|((a, c), s)| (vec![a, c], s)),
        );
    }

    DistRelation::from_distributed(m.out_schema(), Distributed::from_parts(final_parts))
}

/// Filter a degree table to entries with `deg ≥ load` and make the list
/// known everywhere (one broadcast round); returns a sorted copy for the
/// driver's deterministic group assignment.
fn broadcast_heavy(
    cluster: &mut Cluster,
    degrees: &Distributed<(Value, u64)>,
    load: u64,
) -> Vec<(Value, u64)> {
    let filtered = degrees.clone().par_map_local(cluster, |_, items| {
        items
            .into_iter()
            .filter(|(_, d)| *d >= load)
            .collect::<Vec<_>>()
    });
    let _op = cluster.op("wco:heavy-stats");
    let everywhere = cluster.broadcast(&filtered);
    let mut list = everywhere.local(0).clone();
    list.sort_unstable();
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn check(r1: &Relation<Count>, r2: &Relation<Count>, p: usize) -> Cluster {
        let mut cluster = Cluster::new(p);
        let d1 = DistRelation::scatter(&cluster, r1);
        let d2 = DistRelation::scatter(&cluster, r2);
        let got = wco_matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(r2, &[A, C]);
        assert!(
            got.gather().semantically_eq(&expect),
            "wco_matmul diverged from local evaluation"
        );
        cluster
    }

    #[test]
    fn all_light_random() {
        let r1 = Relation::binary_ones(A, B, (0..200u64).map(|i| (i % 50, i % 23)));
        let r2 = Relation::binary_ones(B, C, (0..200u64).map(|i| (i % 23, i % 40)));
        check(&r1, &r2, 8);
    }

    #[test]
    fn dense_single_b_worst_case() {
        // |dom(B)| = 1: OUT = N1·N2 elementary products, the Lemma-1
        // worst case. Load must stay near √(N1N2/p).
        let n = 128u64;
        let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i, 0)));
        let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (0, i)));
        let cluster = check(&r1, &r2, 16);
        let bound = ((n * n) as f64 / 16.0).sqrt() as u64;
        assert!(
            cluster.report().load <= 8 * bound + 128,
            "load {} far above √(N1N2/p) = {}",
            cluster.report().load,
            bound
        );
    }

    #[test]
    fn heavy_rows_and_columns_mix() {
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        // Heavy a = 1000 joins many b's; heavy c = 2000 likewise.
        for i in 0..80u64 {
            p1.push((1000, i));
            p2.push((i, 2000));
        }
        // Light fringe.
        for i in 0..60u64 {
            p1.push((i, i % 13));
            p2.push((i % 13, 500 + i));
        }
        check(
            &Relation::binary_ones(A, B, p1),
            &Relation::binary_ones(B, C, p2),
            8,
        );
    }

    #[test]
    fn identity_like_sparse() {
        let r1 = Relation::binary_ones(A, B, (0..64u64).map(|i| (i, i)));
        let r2 = Relation::binary_ones(B, C, (0..64u64).map(|i| (i, i)));
        let cluster = check(&r1, &r2, 8);
        // Sparse diagonal: OUT = 64, load stays linear-ish.
        assert!(cluster.report().load <= 200);
    }

    #[test]
    fn annotations_multiply_and_add() {
        let r1 = Relation::from_entries(
            mpcjoin_relation::Schema::binary(A, B),
            vec![
                (vec![1, 10], Count(2)),
                (vec![1, 11], Count(3)),
                (vec![2, 10], Count(5)),
            ],
        );
        let r2 = Relation::from_entries(
            mpcjoin_relation::Schema::binary(B, C),
            vec![(vec![10, 7], Count(7)), (vec![11, 7], Count(11))],
        );
        check(&r1, &r2, 4);
    }

    #[test]
    fn rounds_constant_in_n() {
        let mut rounds = Vec::new();
        for n in [128u64, 512, 2048] {
            let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i % (n / 4), i % 31)));
            let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (i % 31, i % (n / 4))));
            let c = check(&r1, &r2, 8);
            rounds.push(c.report().rounds);
        }
        assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    }
}

//! The size-skewed regime of §3: `N1/N2 ∉ [1/p, p]`.
//!
//! When one relation is more than `p` times larger than the other, the
//! bound collapses to linear load `O((N1+N2)/p)`. After dangling removal,
//! every column `c` of the big relation has degree at most the size of the
//! small relation (`≤ N_big/p`), so the big side can be grouped by its
//! outer attribute onto single servers with linear load while the small
//! side is broadcast — results are then disjoint per server and final.
//!
//! Implementation note: the paper sorts by the outer attribute and patches
//! key groups straddling a server boundary; we group keys with
//! parallel-packing instead (same §2.1 toolbox, same `O(1)` rounds and
//! `O(N/p)` load) because packing is robust for any degree `≤ N_big/p`
//! without a span-dependent patch round.

use crate::problem::MatMulAttrs;
use mpcjoin_mpc::primitives::scan::parallel_packing;
use mpcjoin_mpc::primitives::search::lookup_exact;
use mpcjoin_mpc::{Cluster, DistRelation};
use mpcjoin_relation::Row;
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;

/// Whether the skewed-ratio algorithm applies.
pub fn is_skewed<S: Semiring>(r1: &DistRelation<S>, r2: &DistRelation<S>, p: usize) -> bool {
    let (n1, n2) = (r1.total_len().max(1) as u64, r2.total_len().max(1) as u64);
    n1 * (p as u64) < n2 || n2 * (p as u64) < n1
}

/// Compute `∑_B R1 ⋈ R2` with linear load when `N1/N2 ∉ [1/p, p]`.
///
/// Expects dangling tuples already removed (callers run the §2.1 full
/// reducer first); the degree precondition `deg ≤ N_big/p` this enables is
/// asserted via the packing capacity.
pub fn skewed_matmul<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> DistRelation<S> {
    let m = MatMulAttrs::infer(r1, r2);
    let p = cluster.p();
    assert!(is_skewed(r1, r2, p), "size ratio within [1/p, p]");

    let (small, big, outer_attr, small_is_r1) = if r1.total_len() < r2.total_len() {
        (r1, r2, m.c, true)
    } else {
        (r2, r1, m.a, false)
    };

    // Group the big side by its outer attribute with parallel-packing:
    // each group (≈ one server's worth of keys) is joined independently,
    // so no cross-server aggregation is needed afterwards.
    let cap = (2 * big.total_len().div_ceil(p).max(1) + 2 * small.total_len().max(1)) as u64;
    let degrees = big.degrees(cluster, outer_attr);
    let packing = parallel_packing(cluster, degrees, |(_, d)| *d, cap);
    let catalog = packing.assigned.map(|((v, _), gid)| (vec![v], gid));
    let outer_pos = big.schema().positions_of(&[outer_attr])[0];
    let routed = lookup_exact(
        cluster,
        big.data().clone(),
        move |(row, _): &(Row, S)| vec![row[outer_pos]],
        catalog,
    );
    let outboxes: Vec<Vec<(usize, (Row, S))>> = routed
        .into_parts()
        .into_iter()
        .map(|local| {
            local
                .into_iter()
                .filter_map(|(entry, gid)| gid.map(|g| ((g as usize) % p, entry)))
                .collect()
        })
        .collect();
    let big_grouped = cluster.exchange(outboxes);

    let small_everywhere = small.broadcast(cluster);

    // Local join-aggregate: per server, hash the (broadcast) small side by
    // B, then stream the big side.
    let small_b = small.schema().positions_of(&[m.b])[0];
    let small_out = small
        .schema()
        .positions_of(&[if small_is_r1 { m.a } else { m.c }])[0];
    let big_b = big.schema().positions_of(&[m.b])[0];
    let big_out = big
        .schema()
        .positions_of(&[if small_is_r1 { m.c } else { m.a }])[0];

    let data = big_grouped.map_local(|server, local| {
        let mut by_b: HashMap<u64, Vec<(u64, S)>> = HashMap::new();
        for (row, s) in small_everywhere.data().local(server) {
            by_b.entry(row[small_b])
                .or_default()
                .push((row[small_out], s.clone()));
        }
        let mut agg: HashMap<Row, S> = HashMap::new();
        for (row, s) in local {
            if let Some(matches) = by_b.get(&row[big_b]) {
                for (small_val, small_s) in matches {
                    let (a_val, c_val) = if small_is_r1 {
                        (*small_val, row[big_out])
                    } else {
                        (row[big_out], *small_val)
                    };
                    let annot = small_s.mul(&s);
                    match agg.get_mut(&vec![a_val, c_val] as &Row) {
                        Some(acc) => acc.add_assign(&annot),
                        None => {
                            agg.insert(vec![a_val, c_val], annot);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(Row, S)> = agg.into_iter().collect();
        out.sort_by(|(r1, _), (r2, _)| r1.cmp(r2));
        out
    });

    DistRelation::from_distributed(m.out_schema(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    #[test]
    fn tiny_r1_against_big_r2() {
        let mut cluster = Cluster::new(8);
        // N1 = 3, N2 = 400 > 8·3.
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 0), (1, 1), (2, 0)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, (0..400).map(|i| (i % 3, i)));
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        assert!(is_skewed(&d1, &d2, 8));
        let got = skewed_matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
        // Linear-ish load: O((N1 + N2)/p) with primitive overheads.
        assert!(cluster.report().load <= 4 * (403 / 8 + 8 * 8) as u64);
    }

    #[test]
    fn tiny_r2_against_big_r1() {
        let mut cluster = Cluster::new(8);
        let r1: Relation<Count> = Relation::binary_ones(A, B, (0..300).map(|i| (i, i % 2)));
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(0, 9), (1, 9)]);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        assert!(is_skewed(&d1, &d2, 8));
        let got = skewed_matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
    }

    #[test]
    fn not_skewed_is_rejected() {
        let cluster = Cluster::new(4);
        let r1: Relation<Count> = Relation::binary_ones(A, B, (0..40).map(|i| (i, i)));
        let r2: Relation<Count> = Relation::binary_ones(B, C, (0..40).map(|i| (i, i)));
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        assert!(!is_skewed(&d1, &d2, 4));
    }
}

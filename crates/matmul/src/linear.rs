//! `LinearSparseMM` (§3.2): linear-load matrix multiplication when
//! `OUT ≤ N/p`.
//!
//! After dangling removal every `b` has `deg_{R1}(b) · deg_{R2}(b) ≤ OUT`,
//! hence both degrees are at most `OUT ≤ N/p`; grouping `b`-values onto
//! single servers therefore needs only linear load, local aggregation
//! produces at most `OUT ≤ N/p` results per server, and one reduce-by-key
//! pass merges groups that share an output pair.
//!
//! Implementation note: the paper sorts by `B` and patches boundary
//! straddles; we group `b`-values by parallel-packing over their combined
//! degree (same primitives, same bounds, no patch round) — see the skewed
//! case for the same substitution.

use crate::problem::MatMulAttrs;
use mpcjoin_mpc::primitives::reduce::{global_max, reduce_by_key};
use mpcjoin_mpc::primitives::scan::parallel_packing;
use mpcjoin_mpc::primitives::search::lookup_exact;
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::{Row, Value};
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;

/// Compute `∑_B R1 ⋈ R2` with linear load, assuming small output
/// (`OUT ≲ N/p`; callers check via the §2.2 estimate). Correct for any
/// input — a larger output only costs proportionally more load.
pub fn linear_sparse_mm<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> DistRelation<S> {
    let m = MatMulAttrs::infer(r1, r2);
    let p = cluster.p();
    let n = (r1.total_len() + r2.total_len()) as u64;
    if n == 0 {
        return DistRelation::empty(cluster, m.out_schema());
    }

    let pos_a = r1.schema().positions_of(&[m.a])[0];
    let pos_b1 = r1.schema().positions_of(&[m.b])[0];
    let pos_b2 = r2.schema().positions_of(&[m.b])[0];
    let pos_c = r2.schema().positions_of(&[m.c])[0];

    // Combined per-b degree over both relations.
    let mut key_parts: Vec<Vec<(Value, u64)>> = vec![Vec::new(); p];
    for (i, local) in r1.data().iter() {
        key_parts[i].extend(local.iter().map(|(row, _)| (row[pos_b1], 1u64)));
    }
    for (i, local) in r2.data().iter() {
        key_parts[i].extend(local.iter().map(|(row, _)| (row[pos_b2], 1u64)));
    }
    let degrees = reduce_by_key(cluster, Distributed::from_parts(key_parts), |acc, v| {
        *acc += v
    });

    // Group b-values; capacity covers the expected OUT ≤ N/p degree bound
    // but stretches to the true max degree so the pass is total.
    let max_deg = global_max(cluster, degrees.clone().map(|(_, d)| d));
    let cap = (4 * n.div_ceil(p as u64)).max(max_deg).max(1);
    let packing = parallel_packing(cluster, degrees, |(_, d)| *d, cap);
    let catalog = packing.assigned.map(|((b, _), gid)| (vec![b], gid));

    // Route both relations by their b-group.
    let mut tagged_parts: Vec<Vec<(u8, Row, S)>> = vec![Vec::new(); p];
    for (i, local) in r1.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(r, s)| (1u8, r.clone(), s.clone())));
    }
    for (i, local) in r2.data().iter() {
        tagged_parts[i].extend(local.iter().map(|(r, s)| (2u8, r.clone(), s.clone())));
    }
    let routed = lookup_exact(
        cluster,
        Distributed::from_parts(tagged_parts),
        move |(side, row, _): &(u8, Row, S)| {
            vec![if *side == 1 { row[pos_b1] } else { row[pos_b2] }]
        },
        catalog,
    );
    let outboxes: Vec<Vec<(usize, (u8, Row, S))>> = routed
        .into_parts()
        .into_iter()
        .map(|local| {
            local
                .into_iter()
                .filter_map(|(item, gid)| gid.map(|g| ((g as usize) % p, item)))
                .collect()
        })
        .collect();
    let grouped = cluster.exchange(outboxes);

    // Local join-aggregate per b, then merge (a, c) groups globally.
    let partials = grouped.map_local(|_, items| {
        let mut by_b: HashMap<Value, (Vec<(Value, S)>, Vec<(Value, S)>)> = HashMap::new();
        for (side, row, s) in items {
            if side == 1 {
                by_b.entry(row[pos_b1]).or_default().0.push((row[pos_a], s));
            } else {
                by_b.entry(row[pos_b2]).or_default().1.push((row[pos_c], s));
            }
        }
        let mut agg: HashMap<(Value, Value), S> = HashMap::new();
        for (_, (lefts, rights)) in by_b {
            for (a, ls) in &lefts {
                for (c, rs) in &rights {
                    let annot = ls.mul(rs);
                    match agg.get_mut(&(*a, *c)) {
                        Some(acc) => acc.add_assign(&annot),
                        None => {
                            agg.insert((*a, *c), annot);
                        }
                    }
                }
            }
        }
        let mut out: Vec<((Value, Value), S)> = agg.into_iter().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    });

    let reduced = reduce_by_key(cluster, partials, |acc: &mut S, v| acc.add_assign(&v));
    let data = reduced.map_local(|_, items| {
        items
            .into_iter()
            .filter(|(_, s)| !s.is_zero())
            .map(|((a, c), s)| (vec![a, c], s))
            .collect::<Vec<_>>()
    });
    DistRelation::from_distributed(m.out_schema(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn check(r1: &Relation<Count>, r2: &Relation<Count>, p: usize) -> Cluster {
        let mut cluster = Cluster::new(p);
        let d1 = DistRelation::scatter(&cluster, r1);
        let d2 = DistRelation::scatter(&cluster, r2);
        let got = linear_sparse_mm(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
        cluster
    }

    #[test]
    fn small_output_linear_load() {
        // Permutation-like matrices: OUT = number of matches, tiny.
        let n = 1024u64;
        let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i, i)));
        let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (i, i)));
        let cluster = check(&r1, &r2, 8);
        // O(N/p) plus primitive overhead.
        assert!(
            cluster.report().load <= 6 * (2 * n / 8) + 200,
            "load {}",
            cluster.report().load
        );
    }

    #[test]
    fn shared_b_values_aggregate_across_groups() {
        let r1 = Relation::binary_ones(A, B, (0..60u64).map(|i| (i % 6, i % 10)));
        let r2 = Relation::binary_ones(B, C, (0..60u64).map(|i| (i % 10, i % 5)));
        check(&r1, &r2, 4);
    }

    #[test]
    fn empty_inputs() {
        let r1: Relation<Count> = Relation::binary_ones(A, B, []);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(1, 2)]);
        let mut cluster = Cluster::new(4);
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        assert!(linear_sparse_mm(&mut cluster, &d1, &d2).is_empty());
    }

    #[test]
    fn oversized_degree_still_correct() {
        // A b-value with degree far above N/p: capacity stretches, result
        // stays correct (load is allowed to grow in this off-contract case).
        let r1 = Relation::binary_ones(A, B, (0..100u64).map(|i| (i, 0)));
        let r2 = Relation::binary_ones(B, C, [(0, 1), (0, 2)]);
        check(&r1, &r2, 8);
    }
}

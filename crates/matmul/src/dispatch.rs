//! The Theorem 1 dispatcher: pick the matrix multiplication algorithm
//! realizing `O((N1+N2)/p + min{√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3}})`.

use crate::output_sensitive::{estimate_matmul_out, output_sensitive_matmul};
use crate::problem::MatMulAttrs;
use crate::skewed::{is_skewed, skewed_matmul};
use crate::trivial::{is_trivial, trivial_matmul};
use crate::wco::wco_matmul;
use mpcjoin_mpc::{Cluster, DistRelation};
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_semiring::Semiring;
use mpcjoin_yannakakis::remove_dangling;

/// Which §3 algorithm the dispatcher chose (exposed for experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatMulPath {
    /// `N1 ≤ 1` or `N2 ≤ 1`: broadcast (§1.5).
    Trivial,
    /// `N1/N2 ∉ [1/p, p]`: linear-load grouping (§3 intro).
    Skewed,
    /// Worst-case optimal (§3.1) — chosen when `OUT` is large.
    WorstCase,
    /// Output-sensitive (§3.2) — chosen when `OUT` is small.
    OutputSensitive,
}

/// Compute `∑_B R1(A,B) ⋈ R2(B,C)` per Theorem 1: remove dangling tuples,
/// estimate `OUT` (§2.2), then run whichever of §3.1 / §3.2 has the
/// smaller predicted load. Returns the result and the chosen path.
pub fn matmul<S: Semiring>(
    cluster: &mut Cluster,
    r1: &DistRelation<S>,
    r2: &DistRelation<S>,
) -> (DistRelation<S>, MatMulPath) {
    let m = MatMulAttrs::infer(r1, r2);
    if is_trivial(r1, r2) {
        cluster.mark_phase("matmul: trivial broadcast");
        return (trivial_matmul(cluster, r1, r2), MatMulPath::Trivial);
    }

    // Dangling removal first (all paths below assume it).
    let q = TreeQuery::new(
        vec![Edge::binary(m.a, m.b), Edge::binary(m.b, m.c)],
        [m.a, m.c],
    );
    cluster.mark_phase("matmul: dangling removal");
    let r1n = normalize(r1, m.a, m.b);
    let r2n = normalize(r2, m.b, m.c);
    let reduced = remove_dangling(cluster, &q, &[r1n, r2n]);
    let (r1, r2) = (&reduced[0], &reduced[1]);
    if is_trivial(r1, r2) {
        cluster.mark_phase("matmul: trivial broadcast");
        return (trivial_matmul(cluster, r1, r2), MatMulPath::Trivial);
    }

    let p = cluster.p();
    if is_skewed(r1, r2, p) {
        cluster.mark_phase("matmul: skewed-ratio algorithm");
        return (skewed_matmul(cluster, r1, r2), MatMulPath::Skewed);
    }

    cluster.mark_phase("matmul: §2.2 OUT estimation");
    let est = estimate_matmul_out(cluster, r1, r2);
    let n1 = r1.total_len() as u64;
    let n2 = r2.total_len() as u64;
    let worst_case = ((n1 as f64) * (n2 as f64) / p as f64).sqrt();
    let output_sensitive =
        ((n1 as f64) * (n2 as f64) * (est.out.max(1) as f64)).cbrt() / (p as f64).powf(2.0 / 3.0);
    if worst_case <= output_sensitive {
        cluster.mark_phase("matmul: §3.1 worst-case optimal");
        (wco_matmul(cluster, r1, r2), MatMulPath::WorstCase)
    } else {
        cluster.mark_phase("matmul: §3.2 output-sensitive");
        (
            output_sensitive_matmul(cluster, r1, r2, est),
            MatMulPath::OutputSensitive,
        )
    }
}

/// Reorder a relation's columns to `(x, y)` if needed so the dispatcher's
/// query template matches.
fn normalize<S: Semiring>(
    r: &DistRelation<S>,
    x: mpcjoin_relation::Attr,
    y: mpcjoin_relation::Attr,
) -> DistRelation<S> {
    let target = mpcjoin_relation::Schema::binary(x, y);
    if *r.schema() == target {
        return r.clone();
    }
    let pos = r.schema().positions_of(&[x, y]);
    let data = r
        .data()
        .clone()
        .map(|(row, s)| (pos.iter().map(|&i| row[i]).collect::<Vec<_>>(), s));
    DistRelation::from_distributed(target, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::{Count, TropicalMin};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn run(r1: &Relation<Count>, r2: &Relation<Count>, p: usize) -> (Cluster, MatMulPath) {
        let mut cluster = Cluster::new(p);
        let d1 = DistRelation::scatter(&cluster, r1);
        let d2 = DistRelation::scatter(&cluster, r2);
        let (got, path) = matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect), "path {path:?} wrong");
        (cluster, path)
    }

    #[test]
    fn trivial_path_for_single_tuple() {
        let r1 = Relation::binary_ones(A, B, [(1, 2)]);
        let r2 = Relation::binary_ones(B, C, (0..50u64).map(|i| (2, i)));
        let (_, path) = run(&r1, &r2, 4);
        assert_eq!(path, MatMulPath::Trivial);
    }

    #[test]
    fn skewed_path_for_lopsided_sizes() {
        let r1 = Relation::binary_ones(A, B, [(1, 0), (2, 1)]);
        let r2 = Relation::binary_ones(B, C, (0..200u64).map(|i| (i % 2, i)));
        let (_, path) = run(&r1, &r2, 8);
        assert_eq!(path, MatMulPath::Skewed);
    }

    #[test]
    fn output_sensitive_for_sparse_output() {
        // Permutation matrices: OUT = N, far below N√p.
        let n = 512u64;
        let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i, i)));
        let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (i, i)));
        let (_, path) = run(&r1, &r2, 16);
        assert_eq!(path, MatMulPath::OutputSensitive);
    }

    #[test]
    fn worst_case_for_dense_output() {
        // Single shared b: OUT = N1·N2 — the worst-case term wins.
        let n = 64u64;
        let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i, 0)));
        let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (0, i)));
        let (_, path) = run(&r1, &r2, 16);
        assert_eq!(path, MatMulPath::WorstCase);
    }

    #[test]
    fn dangling_heavy_instance_becomes_trivial() {
        // Everything dangles except one pair.
        let r1 = Relation::binary_ones(A, B, (0..100u64).map(|i| (i, i + 1000)));
        let r2 = Relation::binary_ones(B, C, [(1000, 5)]);
        let (_, path) = run(&r1, &r2, 4);
        assert_eq!(path, MatMulPath::Trivial);
    }

    #[test]
    fn reversed_column_order_normalizes() {
        let mut cluster = Cluster::new(4);
        // R1 stored as (B, A).
        let r1 = Relation::<Count>::binary_ones(B, A, (0..40u64).map(|i| (i % 10, i)));
        let r2 = Relation::<Count>::binary_ones(B, C, (0..40u64).map(|i| (i % 10, i)));
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let (got, _) = matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        // Output schema is (A, C); expect's projection order matches.
        assert!(got.gather().semantically_eq(&expect));
    }

    #[test]
    fn tropical_annotations_survive_dispatch() {
        let mut cluster = Cluster::new(4);
        let r1 = Relation::from_entries(
            mpcjoin_relation::Schema::binary(A, B),
            (0..60u64)
                .map(|i| (vec![i % 12, i % 7], TropicalMin::finite((i % 9) as i64)))
                .collect(),
        );
        let r2 = Relation::from_entries(
            mpcjoin_relation::Schema::binary(B, C),
            (0..60u64)
                .map(|i| (vec![i % 7, i % 15], TropicalMin::finite((i % 5) as i64)))
                .collect(),
        );
        let r1 = r1.coalesce();
        let r2 = r2.coalesce();
        let d1 = DistRelation::scatter(&cluster, &r1);
        let d2 = DistRelation::scatter(&cluster, &r2);
        let (got, _) = matmul(&mut cluster, &d1, &d2);
        let expect = r1.join_aggregate(&r2, &[A, C]);
        assert!(got.gather().semantically_eq(&expect));
    }
}

//! The k-minimum-values (KMV) distinct-count sketch
//! (Bar-Yossef et al. '02; Beyer et al. '07), as used in §2.2 of the paper.

/// A KMV sketch: the `k` smallest *distinct* hash values observed.
///
/// With hashes uniform on `[0, 2^64)`, the estimator `(k−1)/v_k`
/// (normalized) is an unbiased estimate of the number of distinct inserted
/// items, within a `(1+ε)` factor with constant probability for
/// `k = O(1/ε²)`. Sketches built with the *same* hash function merge by
/// keeping the `k` smallest of the union — the property §2.2 leans on to
/// propagate per-key reachable-set sizes up a join chain with
/// reduce-by-key.
///
/// The sketch stores at most `k` words; the MPC accounting treats one
/// sketch as one unit, which is faithful for constant `k` (the paper picks
/// a constant `k` too).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kmv {
    k: usize,
    /// Sorted ascending, distinct, length ≤ k.
    values: Vec<u64>,
}

impl Kmv {
    /// An empty sketch with capacity `k ≥ 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "KMV needs k ≥ 2");
        Kmv {
            k,
            values: Vec::new(),
        }
    }

    /// A sketch holding exactly one hash value.
    pub fn singleton(k: usize, hash: u64) -> Self {
        let mut s = Kmv::new(k);
        s.insert(hash);
        s
    }

    /// The sketch capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The retained minimum hash values (sorted ascending).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Observe one item's hash.
    pub fn insert(&mut self, hash: u64) {
        match self.values.binary_search(&hash) {
            Ok(_) => {}
            Err(pos) => {
                if pos < self.k {
                    self.values.insert(pos, hash);
                    self.values.truncate(self.k);
                }
            }
        }
    }

    /// Merge another sketch built with the same hash function: keep the
    /// `k` smallest of the union.
    pub fn merge(&mut self, other: &Kmv) {
        debug_assert_eq!(self.k, other.k, "merging sketches of different k");
        for &v in &other.values {
            self.insert(v);
        }
    }

    /// Estimated number of distinct items inserted.
    ///
    /// Exact while fewer than `k` distinct hashes have been seen; otherwise
    /// `(k−1) · 2^64 / v_k`.
    pub fn estimate(&self) -> u64 {
        if self.values.len() < self.k {
            return self.values.len() as u64;
        }
        let vk = *self.values.last().expect("k ≥ 2 values present");
        if vk == 0 {
            return self.values.len() as u64;
        }
        // (k-1) / (vk / 2^64), computed in u128 to avoid overflow.
        let num = (self.k as u128 - 1) << 64;
        (num / vk as u128) as u64
    }

    /// Whether no hash has been observed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_mpc::hash::seeded_hash;

    #[test]
    fn exact_below_k() {
        let mut s = Kmv::new(8);
        for i in 0..5u64 {
            s.insert(seeded_hash(1, &i));
        }
        assert_eq!(s.estimate(), 5);
        // Duplicates don't change the estimate.
        s.insert(seeded_hash(1, &3u64));
        assert_eq!(s.estimate(), 5);
    }

    #[test]
    fn approximate_above_k() {
        let mut s = Kmv::new(64);
        let n = 10_000u64;
        for i in 0..n {
            s.insert(seeded_hash(7, &i));
        }
        let est = s.estimate();
        assert!(
            est > n / 2 && est < n * 2,
            "estimate {est} not within 2x of {n}"
        );
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Kmv::new(16);
        let mut b = Kmv::new(16);
        let mut both = Kmv::new(16);
        for i in 0..500u64 {
            let h = seeded_hash(3, &i);
            if i % 2 == 0 {
                a.insert(h);
            } else {
                b.insert(h);
            }
            both.insert(h);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = Kmv::new(8);
        let mut b = Kmv::new(8);
        for i in 0..100u64 {
            a.insert(seeded_hash(5, &(i * 3)));
            b.insert(seeded_hash(5, &(i * 7)));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut again = ab.clone();
        again.merge(&b);
        assert_eq!(again, ab);
    }

    #[test]
    fn empty_sketch() {
        let s = Kmv::new(4);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0);
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn rejects_tiny_k() {
        let _ = Kmv::new(1);
    }
}

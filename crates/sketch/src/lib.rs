//! Output-size estimation (§2.2 of Hu & Yi, PODS 2020).
//!
//! Non-free-connex queries have no known linear-load *exact* output-size
//! computation — that is the chicken-and-egg problem the paper calls out —
//! but for matrix multiplication and line queries a *constant-factor
//! approximation* suffices and is computable with linear load via
//! k-minimum-values (KMV) sketches:
//!
//! * [`Kmv`] — the mergeable distinct-count sketch,
//! * [`estimate_out_chain`] — the distributed §2.2 procedure: per-group
//!   output estimates `OUT_a` and the total `OUT` for a join chain, via
//!   `n` reduce-by-key sketch-merge passes and median-of-instances
//!   boosting.

mod estimate;
mod kmv;

pub use estimate::{
    estimate_out_chain, estimate_out_chain_default, per_group_catalog, OutEstimate,
    DEFAULT_INSTANCES, DEFAULT_K,
};
pub use kmv::Kmv;

//! Distributed output-size estimation for chain (line) queries — §2.2.
//!
//! For a line query `∑ R1(A1,A2) ⋈ ⋯ ⋈ Rn(An,An+1)`, the output size is
//! `OUT = Σ_{a ∈ dom(A1)} OUT_a`, where `OUT_a` is the number of distinct
//! `A_{n+1}` values reachable from `a` through the chain. §2.2 estimates
//! every `OUT_a` at once: hash each `A_{n+1}` value, build a KMV sketch per
//! `A_n` value, and propagate sketches down the chain with `n`
//! reduce-by-key merge passes. `O(log N)` independent sketch instances are
//! run in parallel and the median taken, boosting per-key constant success
//! probability to `1 − 1/N^{O(1)}`.
//!
//! The whole procedure is `O(1)` rounds and linear load (each of the
//! constant number of passes moves one constant-size sketch vector per
//! tuple).

use crate::kmv::Kmv;
use mpcjoin_mpc::hash::seeded_hash;
use mpcjoin_mpc::primitives::reduce::{global_sum, reduce_by_key};
use mpcjoin_mpc::{Cluster, DistRelation, Distributed};
use mpcjoin_relation::{Attr, Row, Value};
use mpcjoin_semiring::Semiring;

/// Sketch capacity per instance. §2.2 needs only a constant `k`; 32 gives
/// a ~19% standard error per instance before median boosting.
pub const DEFAULT_K: usize = 32;

/// Number of independent estimator instances (the paper's `O(log N)`;
/// constant here because the median of 7 is already far inside the
/// constant-factor regime our algorithms need).
pub const DEFAULT_INSTANCES: usize = 7;

/// Result of a chain output estimation.
#[derive(Debug)]
pub struct OutEstimate {
    /// Estimated `OUT = Σ_a OUT_a` (coordinator knowledge).
    pub total: u64,
    /// Estimated `OUT_a` for each value `a` of the chain's first
    /// attribute, distributed keyed by that value.
    pub per_group: Distributed<(Value, u64)>,
}

/// Estimate `OUT_a` for every `a ∈ dom(attrs[0])` of the chain
/// `chain[0](attrs[0], attrs[1]) ⋈ ⋯ ⋈ chain[n−1](attrs[n−1], attrs[n])`,
/// and their sum.
///
/// `chain[i]` may have extra attributes; only `attrs[i]`/`attrs[i+1]` are
/// used. Call after dangling-tuple removal, as the paper does, so that
/// `Σ_a OUT_a` counts exactly the output groups.
pub fn estimate_out_chain<S: Semiring>(
    cluster: &mut Cluster,
    chain: &[&DistRelation<S>],
    attrs: &[Attr],
    k: usize,
    instances: usize,
) -> OutEstimate {
    let n = chain.len();
    assert!(n >= 1, "chain must have at least one relation");
    assert_eq!(attrs.len(), n + 1, "need one attribute per chain node");
    assert!(instances >= 1);

    // Seed sketches at the far end: per A_n value, sketch the reachable
    // A_{n+1} values (one sketch per instance).
    let last = chain[n - 1];
    let from_pos = last.schema().positions_of(&[attrs[n - 1]])[0];
    let to_pos = last.schema().positions_of(&[attrs[n]])[0];
    let seeded = last.data().clone().map(|(row, _)| {
        let sketches: Vec<Kmv> = (0..instances)
            .map(|j| Kmv::singleton(k, seeded_hash(j as u64, &row[to_pos])))
            .collect();
        (row[from_pos], sketches)
    });
    let mut stats = reduce_by_key(cluster, seeded, merge_sketch_vecs);

    // Propagate down the chain: stats keyed by attrs[i+1] become stats
    // keyed by attrs[i] via attach + reduce.
    for i in (0..n - 1).rev() {
        let rel = chain[i];
        let catalog = stats.map(|(v, sketches)| (vec![v], sketches));
        let attached = rel.attach_stat(cluster, &[attrs[i + 1]], catalog);
        let from = rel.schema().positions_of(&[attrs[i]])[0];
        let pairs = attached.map_local(|_, items| {
            items
                .into_iter()
                .filter_map(|((row, _), stat)| stat.map(|sketches| (row[from], sketches)))
                .collect::<Vec<(Value, Vec<Kmv>)>>()
        });
        stats = reduce_by_key(cluster, pairs, merge_sketch_vecs);
    }

    // Median across instances per group, then sum.
    let per_group = stats.map(|(v, sketches)| {
        let mut ests: Vec<u64> = sketches.iter().map(Kmv::estimate).collect();
        ests.sort_unstable();
        (v, ests[ests.len() / 2])
    });
    let total = global_sum(cluster, per_group.clone().map(|(_, e)| e));

    OutEstimate { total, per_group }
}

/// Estimate with the default sketch parameters.
pub fn estimate_out_chain_default<S: Semiring>(
    cluster: &mut Cluster,
    chain: &[&DistRelation<S>],
    attrs: &[Attr],
) -> OutEstimate {
    estimate_out_chain(cluster, chain, attrs, DEFAULT_K, DEFAULT_INSTANCES)
}

/// Merge two per-key sketch vectors instance-wise.
#[allow(clippy::ptr_arg)] // signature fixed by `reduce_by_key`'s `Fn(&mut V, V)`
fn merge_sketch_vecs(acc: &mut Vec<Kmv>, other: Vec<Kmv>) {
    debug_assert_eq!(acc.len(), other.len());
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        a.merge(b);
    }
}

/// Convenience: per-group estimates as a catalog keyed by single-value
/// rows, ready for [`DistRelation::attach_stat`].
pub fn per_group_catalog(est: &OutEstimate) -> Distributed<(Row, u64)> {
    est.per_group.clone().map(|(v, e)| (vec![v], e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::Count;
    use std::collections::{HashMap, HashSet};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    fn exact_out_pair(r1: &Relation<Count>, r2: &Relation<Count>) -> (u64, HashMap<u64, u64>) {
        let mut adj: HashMap<u64, HashSet<u64>> = HashMap::new();
        let mut r2_by_b: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (row, _) in r2.entries() {
            r2_by_b.entry(row[0]).or_default().insert(row[1]);
        }
        for (row, _) in r1.entries() {
            if let Some(cs) = r2_by_b.get(&row[1]) {
                adj.entry(row[0]).or_default().extend(cs.iter().copied());
            }
        }
        let per: HashMap<u64, u64> = adj.iter().map(|(a, cs)| (*a, cs.len() as u64)).collect();
        (per.values().sum(), per)
    }

    #[test]
    fn two_relation_estimate_within_constant_factor() {
        // 50 a-values, each reaching a skewed number of c's via shared b's.
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        for a in 0..50u64 {
            for b in 0..(1 + a % 5) {
                p1.push((a, b));
            }
        }
        for b in 0..5u64 {
            for c in 0..(20 * (b + 1)) {
                p2.push((b, c));
            }
        }
        let r1: Relation<Count> = Relation::binary_ones(A, B, p1);
        let r2: Relation<Count> = Relation::binary_ones(B, C, p2);
        let (exact_total, exact_per) = exact_out_pair(&r1, &r2);

        let mut cl = Cluster::new(8);
        let d1 = DistRelation::scatter(&cl, &r1);
        let d2 = DistRelation::scatter(&cl, &r2);
        let est = estimate_out_chain_default(&mut cl, &[&d1, &d2], &[A, B, C]);

        assert!(
            est.total >= exact_total / 3 && est.total <= exact_total * 3,
            "total estimate {} vs exact {exact_total}",
            est.total
        );
        for (a, e) in est.per_group.collect_all() {
            let exact = exact_per[&a];
            assert!(
                e >= exact / 3 && e <= exact * 3,
                "group {a}: estimate {e} vs exact {exact}"
            );
        }
    }

    #[test]
    fn three_relation_chain_estimate() {
        // A 3-hop chain where every a reaches all 64 d-values.
        let hops = 64u64;
        let r1: Relation<Count> = Relation::binary_ones(A, B, (0..8).map(|a| (a, a % 4)));
        let r2: Relation<Count> =
            Relation::binary_ones(B, C, (0..4).flat_map(|b| (0..4).map(move |c| (b, c))));
        let r3: Relation<Count> = Relation::binary_ones(
            C,
            Attr(3),
            (0..4).flat_map(|c| (0..hops).map(move |d| (c, d))),
        );
        let mut cl = Cluster::new(4);
        let d1 = DistRelation::scatter(&cl, &r1);
        let d2 = DistRelation::scatter(&cl, &r2);
        let d3 = DistRelation::scatter(&cl, &r3);
        let est = estimate_out_chain_default(&mut cl, &[&d1, &d2, &d3], &[A, B, C, Attr(3)]);
        // Exact OUT = 8 a-values × 64 reachable d's = 512.
        assert!(
            est.total >= 512 / 3 && est.total <= 512 * 3,
            "{}",
            est.total
        );
    }

    #[test]
    fn small_domains_are_exact() {
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10), (2, 10)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 100), (10, 101)]);
        let mut cl = Cluster::new(4);
        let d1 = DistRelation::scatter(&cl, &r1);
        let d2 = DistRelation::scatter(&cl, &r2);
        let est = estimate_out_chain_default(&mut cl, &[&d1, &d2], &[A, B, C]);
        // Below k distinct values the sketch is exact: OUT = 2 + 2.
        assert_eq!(est.total, 4);
    }

    #[test]
    fn constant_rounds() {
        let mut rounds = Vec::new();
        for n in [100u64, 400, 1600] {
            let r1: Relation<Count> = Relation::binary_ones(A, B, (0..n).map(|i| (i % 50, i % 20)));
            let r2: Relation<Count> = Relation::binary_ones(B, C, (0..n).map(|i| (i % 20, i)));
            let mut cl = Cluster::new(8);
            let d1 = DistRelation::scatter(&cl, &r1);
            let d2 = DistRelation::scatter(&cl, &r2);
            let _ = estimate_out_chain_default(&mut cl, &[&d1, &d2], &[A, B, C]);
            rounds.push(cl.report().rounds);
        }
        assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    }
}

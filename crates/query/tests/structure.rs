//! Randomized tests of the query-layer invariants over *random* tree
//! queries: classification is total and consistent, reduction leaves only
//! output leaves, twig decomposition partitions the edges with outputs
//! exactly at twig leaves, and skeletons cover general twigs. Random trees
//! come from the deterministic in-tree generator with fixed seeds.

use mpcjoin_mpc::DetRng;
use mpcjoin_query::Edge;
use mpcjoin_query::{
    classify, decompose_twigs, is_free_connex, plan_reduction, skeleton, Shape, TreeQuery,
};
use mpcjoin_relation::Attr;
use std::collections::BTreeSet;

const CASES: u64 = 128;

/// A random tree over `n` attributes (Prüfer-like: attach each new vertex
/// to a random existing one) with a random output subset.
fn random_tree(rng: &mut DetRng) -> TreeQuery {
    let n = rng.gen_range(2usize..10);
    let edges: Vec<Edge> = (1..n)
        .map(|v| Edge::binary(Attr(v as u32), Attr(rng.gen_range(0usize..v) as u32)))
        .collect();
    // At least one output attribute (y = ∅ is legal but makes the
    // leaf-oriented invariants trivial; tested separately).
    let mut out: Vec<Attr> = (0..n)
        .filter(|_| rng.gen_bool(0.5))
        .map(|i| Attr(i as u32))
        .collect();
    if out.is_empty() {
        out.push(Attr(0));
    }
    TreeQuery::new(edges, out)
}

/// classify() is total and consistent with is_free_connex().
#[test]
fn classification_total_and_consistent() {
    let mut rng = DetRng::seed_from_u64(0xD001);
    for _ in 0..CASES {
        let q = random_tree(&mut rng);
        let shape = classify(&q);
        assert_eq!(
            matches!(shape, Shape::FreeConnex),
            is_free_connex(&q),
            "classify() and is_free_connex() disagree"
        );
    }
}

/// Reduction never drops output attributes and leaves only output leaves
/// (or a single relation).
#[test]
fn reduction_invariants() {
    let mut rng = DetRng::seed_from_u64(0xD002);
    for _ in 0..CASES {
        let q = random_tree(&mut rng);
        let r = plan_reduction(&q);
        // Steps + kept partition the original edge set.
        let mut seen: BTreeSet<usize> = r.kept.iter().copied().collect();
        for step in &r.steps {
            assert!(seen.insert(step.removed), "edge folded twice");
        }
        assert_eq!(seen.len(), q.edges().len());
        // Every output attribute that survives anywhere is in the reduced
        // query; leaves of the reduced query are outputs.
        if r.reduced.edges().len() > 1 {
            for leaf in r.reduced.leaves() {
                assert!(
                    q.is_output(leaf),
                    "non-output leaf {leaf} survived reduction"
                );
            }
        }
        // Folds only ever absorb into still-alive relations.
        for (i, step) in r.steps.iter().enumerate() {
            let absorber_alive = r.kept.contains(&step.absorber)
                || r.steps[i + 1..].iter().any(|s| s.removed == step.absorber);
            assert!(absorber_alive, "fold into an already-removed relation");
        }
    }
}

/// Twig decomposition partitions the reduced edges; each twig's outputs
/// are exactly its leaves and classify to a non-General shape.
#[test]
fn twig_invariants() {
    let mut rng = DetRng::seed_from_u64(0xD003);
    for _ in 0..CASES {
        let q = random_tree(&mut rng);
        let r = plan_reduction(&q);
        let twigs = decompose_twigs(&r.reduced);
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        for t in &twigs {
            for &e in &t.parent_edges {
                assert!(covered.insert(e), "edge {e} in two twigs");
            }
            if t.query.edges().len() > 1 {
                let leaves: BTreeSet<Attr> = t.query.leaves().into_iter().collect();
                assert_eq!(
                    &leaves,
                    t.query.output(),
                    "twig outputs must be exactly its leaves"
                );
            }
            assert!(
                !matches!(classify(&t.query), Shape::General),
                "a twig must classify to a specific shape"
            );
        }
        assert_eq!(covered.len(), r.reduced.edges().len());
    }
}

/// Every general twig has a skeleton, whose contracted parts swallow
/// disjoint edge sets not overlapping the skeleton edges.
#[test]
fn skeleton_invariants() {
    let mut rng = DetRng::seed_from_u64(0xD004);
    for _ in 0..CASES {
        let q = random_tree(&mut rng);
        let r = plan_reduction(&q);
        for t in decompose_twigs(&r.reduced) {
            if classify(&t.query) != Shape::Twig {
                continue;
            }
            // Twig shape with |V*| < 2 classifies as star-like/line
            // earlier, so a Twig must have a skeleton.
            let sk = skeleton(&t.query).expect("general twig without skeleton");
            assert!(sk.vstar.len() >= 2);
            let mut used: BTreeSet<usize> = sk.skeleton_edges.iter().copied().collect();
            for part in &sk.contracted {
                assert!(
                    !t.query.is_output(part.b),
                    "contracted root must be non-output"
                );
                for &e in &part.edges {
                    assert!(used.insert(e), "edge {e} claimed twice in skeleton split");
                }
            }
            assert_eq!(used.len(), t.query.edges().len());
        }
    }
}

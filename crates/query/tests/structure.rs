//! Property-based tests of the query-layer invariants over *random* tree
//! queries: classification is total and consistent, reduction leaves only
//! output leaves, twig decomposition partitions the edges with outputs
//! exactly at twig leaves, and skeletons cover general twigs.

use mpcjoin_query::{
    classify, decompose_twigs, is_free_connex, plan_reduction, skeleton, Shape, TreeQuery,
};
use mpcjoin_query::Edge;
use mpcjoin_relation::Attr;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random tree over `n` attributes (Prüfer-like: attach each new vertex
/// to a random existing one) with a random output subset.
fn tree_strategy() -> impl Strategy<Value = TreeQuery> {
    (2usize..10)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0usize..n, n - 1),
                proptest::collection::vec(any::<bool>(), n),
            )
                .prop_map(move |(attach, outputs)| (n, attach, outputs))
        })
        .prop_map(|(n, attach, outputs)| {
            let edges: Vec<Edge> = (1..n)
                .map(|v| Edge::binary(Attr(v as u32), Attr((attach[v - 1] % v) as u32)))
                .collect();
            // At least one output attribute (y = ∅ is legal but makes the
            // leaf-oriented invariants trivial; tested separately).
            let mut out: Vec<Attr> = (0..n)
                .filter(|&i| outputs[i])
                .map(|i| Attr(i as u32))
                .collect();
            if out.is_empty() {
                out.push(Attr(0));
            }
            TreeQuery::new(edges, out)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// classify() is total and consistent with is_free_connex().
    #[test]
    fn classification_total_and_consistent(q in tree_strategy()) {
        let shape = classify(&q);
        prop_assert_eq!(
            matches!(shape, Shape::FreeConnex),
            is_free_connex(&q),
            "classify() and is_free_connex() disagree"
        );
    }

    /// Reduction never drops output attributes and leaves only output
    /// leaves (or a single relation).
    #[test]
    fn reduction_invariants(q in tree_strategy()) {
        let r = plan_reduction(&q);
        let reduced_attrs = r.reduced.attrs();
        // Steps + kept partition the original edge set.
        let mut seen: BTreeSet<usize> = r.kept.iter().copied().collect();
        for step in &r.steps {
            prop_assert!(seen.insert(step.removed), "edge folded twice");
        }
        prop_assert_eq!(seen.len(), q.edges().len());
        // Every output attribute that survives anywhere is in the reduced
        // query; leaves of the reduced query are outputs.
        if r.reduced.edges().len() > 1 {
            for leaf in r.reduced.leaves() {
                prop_assert!(
                    q.is_output(leaf),
                    "non-output leaf {leaf} survived reduction"
                );
            }
        }
        // Folds only ever absorb into still-alive relations.
        for (i, step) in r.steps.iter().enumerate() {
            let absorber_alive = r.kept.contains(&step.absorber)
                || r.steps[i + 1..].iter().any(|s| s.removed == step.absorber);
            prop_assert!(absorber_alive, "fold into an already-removed relation");
        }
        let _ = reduced_attrs;
    }

    /// Twig decomposition partitions the reduced edges; each twig's
    /// outputs are exactly its leaves and classify to a non-General shape.
    #[test]
    fn twig_invariants(q in tree_strategy()) {
        let r = plan_reduction(&q);
        let twigs = decompose_twigs(&r.reduced);
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        for t in &twigs {
            for &e in &t.parent_edges {
                prop_assert!(covered.insert(e), "edge {e} in two twigs");
            }
            if t.query.edges().len() > 1 {
                let leaves: BTreeSet<Attr> = t.query.leaves().into_iter().collect();
                prop_assert_eq!(
                    &leaves, t.query.output(),
                    "twig outputs must be exactly its leaves"
                );
            }
            prop_assert!(
                !matches!(classify(&t.query), Shape::General),
                "a twig must classify to a specific shape"
            );
        }
        prop_assert_eq!(covered.len(), r.reduced.edges().len());
    }

    /// Every general twig has a skeleton, whose contracted parts swallow
    /// disjoint edge sets not overlapping the skeleton edges.
    #[test]
    fn skeleton_invariants(q in tree_strategy()) {
        let r = plan_reduction(&q);
        for t in decompose_twigs(&r.reduced) {
            if classify(&t.query) != Shape::Twig {
                continue;
            }
            let Some(sk) = skeleton(&t.query) else {
                // Twig shape with |V*| < 2 classifies as star-like/line
                // earlier, so a Twig must have a skeleton.
                prop_assert!(false, "general twig without skeleton");
                continue;
            };
            prop_assert!(sk.vstar.len() >= 2);
            let mut used: BTreeSet<usize> = sk.skeleton_edges.iter().copied().collect();
            for part in &sk.contracted {
                prop_assert!(!t.query.is_output(part.b), "contracted root must be non-output");
                for &e in &part.edges {
                    prop_assert!(used.insert(e), "edge {e} claimed twice in skeleton split");
                }
            }
            prop_assert_eq!(used.len(), t.query.edges().len());
        }
    }
}

//! Query-shape classification: which of the paper's algorithms applies.

use crate::tree::TreeQuery;
use mpcjoin_relation::Attr;
use std::collections::BTreeSet;

/// One arm of a star-like query (§6): the path of relations from the
/// center `B` out to the arm's output endpoint `A_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arm {
    /// Edge indices, ordered from the center outward.
    pub edges: Vec<usize>,
    /// Attributes along the arm, center first, output endpoint last.
    pub attrs: Vec<Attr>,
}

impl Arm {
    /// The arm's output endpoint `A_i`.
    pub fn endpoint(&self) -> Attr {
        *self.attrs.last().expect("arm has at least two attributes")
    }

    /// Number of relations in the arm.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the arm is a single relation (star-query arm).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The shape of a star-like query (§6, Figure 1): `n` line-query arms
/// sharing a common non-output attribute `B`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StarLikeShape {
    /// The shared non-output attribute `B`.
    pub center: Attr,
    /// The arms, each ending at an output attribute.
    pub arms: Vec<Arm>,
}

/// Which specialized algorithm a tree query admits, from most to least
/// specific. Classification is *structural*; the planner picks the first
/// match in this order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Shape {
    /// `y` spans a connected subtree (or `y = ∅` / a single relation):
    /// the distributed Yannakakis algorithm is already output-optimal
    /// (§1.2, §1.4). Matrix multiplication is *not* of this shape.
    FreeConnex,
    /// `∑_B R1(A,B) ⋈ R2(B,C)` — §3.
    MatMul {
        /// Edge index of `R1(A, B)`.
        r1: usize,
        /// Edge index of `R2(B, C)`.
        r2: usize,
        /// Output attribute of `R1`.
        a: Attr,
        /// The shared non-output attribute.
        b: Attr,
        /// Output attribute of `R2`.
        c: Attr,
    },
    /// `∑_{A2..An} R1(A1,A2) ⋈ ⋯ ⋈ Rn(An,An+1)` — §4.
    Line {
        /// Edge indices in chain order.
        edges: Vec<usize>,
        /// `A1, …, A_{n+1}` in chain order.
        attrs: Vec<Attr>,
    },
    /// `∑_B R1(A1,B) ⋈ ⋯ ⋈ Rn(An,B)` — §5.
    Star {
        /// The shared non-output attribute `B`.
        center: Attr,
        /// Edge indices of the arms.
        arms: Vec<usize>,
    },
    /// Line-query arms meeting at a shared non-output attribute — §6.
    StarLike(StarLikeShape),
    /// A twig: every output attribute is a leaf and vice versa — §7.1.
    Twig,
    /// Any other tree query; handled by reduction + twig decomposition
    /// (§7) before execution.
    General,
}

/// Whether `y` forms a connected subtree of `Q` — the free-connex
/// condition for tree queries (§1.2, footnote 1). `y = ∅` and single-edge
/// queries count as free-connex.
pub fn is_free_connex(q: &TreeQuery) -> bool {
    let y = q.output();
    if y.len() <= 1 || q.edges().len() == 1 {
        return true;
    }
    // Union of pairwise paths must touch only output attributes.
    let mut iter = y.iter();
    let first = *iter.next().expect("non-empty");
    for &other in iter {
        for ei in q.path(first, other) {
            for &a in q.edges()[ei].attrs() {
                if !y.contains(&a) {
                    return false;
                }
            }
        }
    }
    true
}

/// Classify a query into the most specific [`Shape`].
pub fn classify(q: &TreeQuery) -> Shape {
    if is_free_connex(q) {
        return Shape::FreeConnex;
    }
    if let Some(shape) = detect_matmul(q) {
        return shape;
    }
    if let Some(shape) = detect_line(q) {
        return shape;
    }
    if let Some(shape) = detect_star(q) {
        return shape;
    }
    if let Some(shape) = detect_star_like(q) {
        return Shape::StarLike(shape);
    }
    if is_twig(q) {
        return Shape::Twig;
    }
    Shape::General
}

fn detect_matmul(q: &TreeQuery) -> Option<Shape> {
    if q.edges().len() != 2 || q.edges().iter().any(|e| !e.is_binary()) {
        return None;
    }
    let (e1, e2) = (&q.edges()[0], &q.edges()[1]);
    let shared: Vec<Attr> = e1
        .attrs()
        .iter()
        .copied()
        .filter(|a| e2.contains(*a))
        .collect();
    let [b] = shared[..] else { return None };
    if q.is_output(b) {
        return None;
    }
    let a = e1.other(b);
    let c = e2.other(b);
    (q.is_output(a) && q.is_output(c)).then_some(Shape::MatMul {
        r1: 0,
        r2: 1,
        a,
        b,
        c,
    })
}

fn detect_line(q: &TreeQuery) -> Option<Shape> {
    if q.edges().iter().any(|e| !e.is_binary()) {
        return None;
    }
    // A path: exactly two leaves, every attribute degree ≤ 2.
    let leaves = q.leaves();
    if leaves.len() != 2 || q.attrs().iter().any(|&a| q.degree(a) > 2) {
        return None;
    }
    let (start, end) = (leaves[0], leaves[1]);
    // Output attributes must be exactly the two endpoints.
    if *q.output() != BTreeSet::from([start, end]) {
        return None;
    }
    let edges = q.path(start, end);
    let mut attrs = vec![start];
    let mut cur = start;
    for &ei in &edges {
        cur = q.edges()[ei].other(cur);
        attrs.push(cur);
    }
    Some(Shape::Line { edges, attrs })
}

fn detect_star(q: &TreeQuery) -> Option<Shape> {
    if q.edges().iter().any(|e| !e.is_binary()) || q.edges().len() < 3 {
        return None;
    }
    // All edges share one non-output attribute; every other attribute is
    // an output leaf.
    let e0 = &q.edges()[0];
    let center = e0
        .attrs()
        .iter()
        .copied()
        .find(|&b| q.edges().iter().all(|e| e.contains(b)))?;
    if q.is_output(center) {
        return None;
    }
    let endpoints: BTreeSet<Attr> = q.edges().iter().map(|e| e.other(center)).collect();
    (*q.output() == endpoints).then_some(Shape::Star {
        center,
        arms: (0..q.edges().len()).collect(),
    })
}

/// Detect the star-like shape of §6: a unique attribute of degree ≥ 3 (or
/// a line query seen as two arms), with every arm a path of non-output
/// attributes ending at an output attribute.
pub fn detect_star_like(q: &TreeQuery) -> Option<StarLikeShape> {
    if q.edges().iter().any(|e| !e.is_binary()) {
        return None;
    }
    let high_degree: Vec<Attr> = q.attrs().into_iter().filter(|&a| q.degree(a) > 2).collect();
    let center = match high_degree[..] {
        [b] => b,
        [] => {
            // Degenerates to a line query: pick any internal non-output
            // attribute as the center (§6: "a star-like query degenerates
            // to a line query if n = 2").
            q.attrs().into_iter().find(|&a| q.degree(a) == 2)?
        }
        _ => return None,
    };
    star_like_with_center(q, center)
}

/// View `q` as a star-like query centered at `center`: walk each incident
/// edge outward to a leaf, requiring the center and all arm interiors to be
/// non-output and every arm endpoint to be output.
pub fn star_like_with_center(q: &TreeQuery, center: Attr) -> Option<StarLikeShape> {
    if q.is_output(center) {
        return None;
    }
    let adjacency = q.adjacency();
    let mut arms = Vec::new();
    for &first_edge in adjacency.get(&center)? {
        if !q.edges()[first_edge].is_binary() {
            return None;
        }
        // Walk outward until a leaf; fail if the walk ever branches (that
        // would mean another attribute of degree > 2 on the arm).
        let mut edges = vec![first_edge];
        let mut attrs = vec![center, q.edges()[first_edge].other(center)];
        loop {
            let cur = *attrs.last().expect("non-empty");
            let onward: Vec<usize> = adjacency
                .get(&cur)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .copied()
                .filter(|e| !edges.contains(e))
                .collect();
            match onward[..] {
                [] => break,
                [e] if q.edges()[e].is_binary() => {
                    edges.push(e);
                    attrs.push(q.edges()[e].other(cur));
                }
                _ => return None,
            }
        }
        // Interior attributes (everything but the endpoint, including the
        // center) must be non-output; the endpoint must be output.
        let endpoint = *attrs.last().expect("non-empty");
        if !q.is_output(endpoint) {
            return None;
        }
        if attrs[..attrs.len() - 1].iter().any(|&a| q.is_output(a)) {
            return None;
        }
        arms.push(Arm { edges, attrs });
    }
    arms.sort_by_key(|arm| arm.edges.clone());
    Some(StarLikeShape { center, arms })
}

/// Whether the query is a *twig*: its output attributes are exactly its
/// leaves (§7's post-decomposition invariant).
pub fn is_twig(q: &TreeQuery) -> bool {
    let leaves: BTreeSet<Attr> = q.leaves().into_iter().collect();
    !leaves.is_empty() && *q.output() == leaves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Edge;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);
    const E: Attr = Attr(4);

    #[test]
    fn matmul_detected() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        match classify(&q) {
            Shape::MatMul { a, b, c, .. } => {
                assert_eq!((a, b, c), (A, B, C));
            }
            other => panic!("expected MatMul, got {other:?}"),
        }
    }

    #[test]
    fn full_two_way_join_is_free_connex() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
        assert_eq!(classify(&q), Shape::FreeConnex);
    }

    #[test]
    fn count_star_is_free_connex() {
        // y = ∅ (full aggregation) is free-connex.
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], []);
        assert_eq!(classify(&q), Shape::FreeConnex);
    }

    #[test]
    fn line_detected() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        match classify(&q) {
            Shape::Line { attrs, edges } => {
                assert!(attrs == vec![A, B, C, D] || attrs == vec![D, C, B, A]);
                assert_eq!(edges.len(), 3);
            }
            other => panic!("expected Line, got {other:?}"),
        }
    }

    #[test]
    fn star_detected() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        match classify(&q) {
            Shape::Star { center, arms } => {
                assert_eq!(center, D);
                assert_eq!(arms.len(), 3);
            }
            other => panic!("expected Star, got {other:?}"),
        }
    }

    #[test]
    fn star_like_detected() {
        // Three arms from center D: one long arm D–C–A (C internal), two
        // short arms D–B and D–E.
        let q = TreeQuery::new(
            vec![
                Edge::binary(D, C),
                Edge::binary(C, A),
                Edge::binary(D, B),
                Edge::binary(D, E),
            ],
            [A, B, E],
        );
        match classify(&q) {
            Shape::StarLike(shape) => {
                assert_eq!(shape.center, D);
                assert_eq!(shape.arms.len(), 3);
                let endpoints: BTreeSet<Attr> = shape.arms.iter().map(Arm::endpoint).collect();
                assert_eq!(endpoints, BTreeSet::from([A, B, E]));
                let long = shape
                    .arms
                    .iter()
                    .find(|arm| arm.len() == 2)
                    .expect("the D–C–A arm");
                assert_eq!(long.attrs, vec![D, C, A]);
            }
            other => panic!("expected StarLike, got {other:?}"),
        }
    }

    #[test]
    fn free_connex_subtree_of_outputs() {
        // y = {A, B} connected: free-connex even with non-output leaf C...
        // C is a leaf and non-output: still free-connex by the footnote-1
        // definition (outputs form a connected subtree).
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B]);
        assert_eq!(classify(&q), Shape::FreeConnex);
    }

    #[test]
    fn twig_but_not_star_like() {
        // Two high-degree attributes → not star-like; outputs = leaves →
        // twig. Shape: leaves A, D, E and centers B, C.
        let q = TreeQuery::new(
            vec![
                Edge::binary(A, B),
                Edge::binary(B, Attr(10)),
                Edge::binary(Attr(10), C),
                Edge::binary(B, D),
                Edge::binary(C, E),
                Edge::binary(C, Attr(11)),
            ],
            [A, D, E, Attr(11)],
        );
        assert_eq!(q.degree(B), 3);
        assert_eq!(q.degree(C), 3);
        assert_eq!(classify(&q), Shape::Twig);
    }

    #[test]
    fn general_tree() {
        // An internal output attribute (B) with a non-free-connex layout:
        // y = {A, B, D} where path A–B is fine but D is two hops away
        // through non-output C.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, B, D],
        );
        assert_eq!(classify(&q), Shape::General);
    }

    #[test]
    fn line_with_three_outputs_not_line_shape() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, C, D],
        );
        assert_ne!(
            classify(&q),
            Shape::Line {
                edges: vec![0, 1, 2],
                attrs: vec![A, B, C, D]
            }
        );
    }
}

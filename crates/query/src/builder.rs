//! An ergonomic builder for tree queries with *named* attributes.
//!
//! Algorithms work with interned [`Attr`] ids; applications usually think
//! in attribute names. [`QueryBuilder`] interns names on first use,
//! validates on [`QueryBuilder::build`], and keeps the name table around
//! for rendering results and DOT diagrams.

use crate::tree::{Edge, TreeQuery};
use mpcjoin_relation::Attr;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Builder for [`TreeQuery`] over named attributes.
///
/// ```
/// use mpcjoin_query::QueryBuilder;
///
/// // ∑_part Supplies(supplier, part) ⋈ Stocks(warehouse, part)
/// let (q, names) = QueryBuilder::new()
///     .relation("supplier", "part")
///     .relation("warehouse", "part")
///     .output(["supplier", "warehouse"])
///     .build();
/// assert_eq!(q.edges().len(), 2);
/// assert_eq!(names.attr("part").map(|a| q.is_output(a)), Some(false));
/// ```
#[derive(Default)]
pub struct QueryBuilder {
    names: Vec<String>,
    index: HashMap<String, Attr>,
    edges: Vec<Edge>,
    output: Vec<Attr>,
}

/// The name table produced by a [`QueryBuilder`]: a bijection between
/// attribute names and [`Attr`] ids.
#[derive(Clone, Debug)]
pub struct AttrNames {
    names: Vec<String>,
    index: HashMap<String, Attr>,
}

impl AttrNames {
    /// The [`Attr`] for `name`, if interned.
    pub fn attr(&self, name: &str) -> Option<Attr> {
        self.index.get(name).copied()
    }

    /// The name of `attr`; panics on an id this table never issued.
    pub fn name(&self, attr: Attr) -> &str {
        &self.names[attr.0 as usize]
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no attribute has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl QueryBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, name: &str) -> Attr {
        if let Some(&a) = self.index.get(name) {
            return a;
        }
        let a = Attr(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), a);
        a
    }

    /// Add a binary relation over the named attributes.
    pub fn relation(mut self, x: &str, y: &str) -> Self {
        let (ax, ay) = (self.intern(x), self.intern(y));
        self.edges.push(Edge::binary(ax, ay));
        self
    }

    /// Add a unary relation over the named attribute.
    pub fn unary_relation(mut self, x: &str) -> Self {
        let ax = self.intern(x);
        self.edges.push(Edge::unary(ax));
        self
    }

    /// Declare the output attributes (replacing any previous set).
    pub fn output<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.output = names.into_iter().map(|n| self.intern(n)).collect();
        self
    }

    /// Validate and build the query plus its name table. Panics exactly
    /// when [`TreeQuery::new`] would (malformed query = programming
    /// error).
    pub fn build(self) -> (TreeQuery, AttrNames) {
        let q = TreeQuery::new(self.edges, self.output);
        (
            q,
            AttrNames {
                names: self.names,
                index: self.index,
            },
        )
    }
}

/// Render a query as a Graphviz DOT graph: attributes are nodes (outputs
/// doubled-circled), relations are edges. `names` is optional — without
/// it, nodes show raw `x<i>` ids.
pub fn to_dot(q: &TreeQuery, names: Option<&AttrNames>) -> String {
    let label = |a: Attr| -> String {
        match names {
            Some(n) if (a.0 as usize) < n.len() => n.name(a).to_string(),
            _ => format!("{a}"),
        }
    };
    let mut out = String::from("graph query {\n  node [shape=circle];\n");
    for a in q.attrs() {
        let shape = if q.is_output(a) {
            " [shape=doublecircle]"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{}\"{shape};", label(a));
    }
    for (i, e) in q.edges().iter().enumerate() {
        match e.attrs() {
            [x, y] => {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [label=\"R{}\"];",
                    label(*x),
                    label(*y),
                    i
                );
            }
            [x] => {
                let _ = writeln!(out, "  \"u{i}\" [shape=point];");
                let _ = writeln!(out, "  \"{}\" -- \"u{i}\" [label=\"R{}\"];", label(*x), i);
            }
            _ => unreachable!("edges have arity 1 or 2"),
        }
    }
    out.push_str("}\n");
    out
}

/// Render a generic operator DAG as Graphviz DOT: `nodes[i]` is a label
/// plus the indices of its input nodes. This is the rendering backend the
/// compiler's logical plan IR draws with (one box per operator, annotated
/// with its predicted bound); [`to_dot`] stays the hypergraph view.
pub fn dot_dag(title: &str, nodes: &[(String, Vec<usize>)]) -> String {
    let ident: String = title
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let mut out = format!("digraph {ident} {{\n  node [shape=box];\n");
    for (i, (label, _)) in nodes.iter().enumerate() {
        let escaped = label.replace('"', "\\\"");
        let _ = writeln!(out, "  n{i} [label=\"{escaped}\"];");
    }
    for (i, (_, inputs)) in nodes.iter().enumerate() {
        for &j in inputs {
            let _ = writeln!(out, "  n{j} -> n{i};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Shape};

    #[test]
    fn dag_rendering_links_inputs_to_consumers() {
        let nodes = vec![
            ("scan R0".to_string(), vec![]),
            ("scan R1".to_string(), vec![]),
            ("exchange by \"b\"".to_string(), vec![0, 1]),
        ];
        let dot = dot_dag("plan MatMul", &nodes);
        assert!(dot.starts_with("digraph plan_MatMul {"), "{dot}");
        assert!(dot.contains("n0 [label=\"scan R0\"]"), "{dot}");
        assert!(dot.contains("n0 -> n2;"), "{dot}");
        assert!(dot.contains("n1 -> n2;"), "{dot}");
        assert!(dot.contains("\\\"b\\\""), "quotes escaped: {dot}");
    }

    #[test]
    fn builds_matmul_by_name() {
        let (q, names) = QueryBuilder::new()
            .relation("a", "b")
            .relation("b", "c")
            .output(["a", "c"])
            .build();
        assert!(matches!(classify(&q), Shape::MatMul { .. }));
        assert_eq!(names.name(names.attr("b").unwrap()), "b");
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn interning_is_stable() {
        let (q, names) = QueryBuilder::new()
            .relation("x", "y")
            .relation("y", "z")
            .relation("z", "w")
            .output(["x", "w"])
            .build();
        assert_eq!(q.edges().len(), 3);
        // "y" interned once despite two mentions.
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn dot_renders_outputs_and_edges() {
        let (q, names) = QueryBuilder::new()
            .relation("src", "mid")
            .relation("mid", "dst")
            .output(["src", "dst"])
            .build();
        let dot = to_dot(&q, Some(&names));
        assert!(dot.contains("\"src\" [shape=doublecircle]"));
        assert!(dot.contains("\"src\" -- \"mid\" [label=\"R0\"]"));
        assert!(dot.contains("\"mid\";"));
        assert!(dot.starts_with("graph query {"));
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn builder_validates() {
        let _ = QueryBuilder::new()
            .relation("a", "b")
            .relation("b", "c")
            .relation("c", "a")
            .output(["a"])
            .build();
    }
}

//! Tree join-aggregate query structure and the paper's decompositions.
//!
//! The algorithms of Hu & Yi (PODS 2020) operate on acyclic queries whose
//! hypergraph is a tree of binary edges with an arbitrary set of output
//! attributes (§1.1). This crate is the purely *structural* layer —
//! everything one can decide about a query before looking at data:
//!
//! * [`TreeQuery`] / [`Edge`] — the hypergraph, with validation,
//! * [`classify`] / [`Shape`] — which of the paper's algorithms applies
//!   (free-connex, matrix multiplication §3, line §4, star §5, star-like
//!   §6, twig/general §7), including the free-connex test of §1.2,
//! * [`plan_reduction`] — the §7 *reduce* step folding away unary
//!   relations and private non-output attributes,
//! * [`decompose_twigs`] — breaking a reduced tree at non-leaf output
//!   attributes into twigs (Figure 2),
//! * [`skeleton`] — a twig's skeleton `T_S`, its `V*`, `S`, and the
//!   contracted star-like parts `T_B` (Figure 3).

mod builder;
mod classify;
mod parse;
mod reduce;
mod skeleton;
mod tree;
mod twig;

pub use builder::{dot_dag, to_dot, AttrNames, QueryBuilder};
pub use classify::{
    classify, detect_star_like, is_free_connex, is_twig, star_like_with_center, Arm, Shape,
    StarLikeShape,
};
pub use parse::{parse_query, ParseError, ParsedQuery};
pub use reduce::{plan_reduction, ReduceStep, Reduction};
pub use skeleton::{skeleton, ContractedPart, Skeleton};
pub use tree::{Edge, TreeQuery};
pub use twig::{decompose_twigs, Twig};

//! Tree join-aggregate queries: the hypergraph `Q = (V, E)` of §1.1.

use mpcjoin_relation::Attr;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// One hyperedge: a relation over one or two attributes.
///
/// The paper restricts input queries to binary edges forming a tree;
/// unary edges are admitted here as well because §7's *reduce* step has to
/// handle them ("remove `R_e` if `e` contains a single attribute").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    attrs: Vec<Attr>,
}

impl Edge {
    /// A binary edge `R(a, b)`.
    pub fn binary(a: Attr, b: Attr) -> Self {
        assert_ne!(a, b, "self-loop edge R({a}, {a}) is not a tree edge");
        Edge { attrs: vec![a, b] }
    }

    /// A unary edge `R(a)`.
    pub fn unary(a: Attr) -> Self {
        Edge { attrs: vec![a] }
    }

    /// The attributes of this edge (length 1 or 2).
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Whether this edge is binary.
    pub fn is_binary(&self) -> bool {
        self.attrs.len() == 2
    }

    /// Whether `a` is an endpoint.
    pub fn contains(&self, a: Attr) -> bool {
        self.attrs.contains(&a)
    }

    /// For a binary edge, the endpoint other than `a`.
    pub fn other(&self, a: Attr) -> Attr {
        debug_assert!(self.is_binary() && self.contains(a));
        if self.attrs[0] == a {
            self.attrs[1]
        } else {
            self.attrs[0]
        }
    }
}

/// An acyclic join-aggregate query whose hypergraph is a tree of binary
/// (plus possibly unary) edges, with a designated set `y` of output
/// attributes.
///
/// Relations are addressed by their edge index into [`TreeQuery::edges`];
/// instances pair each index with an annotated relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeQuery {
    edges: Vec<Edge>,
    output: BTreeSet<Attr>,
}

impl TreeQuery {
    /// Build and validate a tree query.
    ///
    /// Panics (with a description) if the binary edges do not form a tree
    /// over the attribute set, if an edge is duplicated, if a unary edge
    /// mentions an attribute no binary edge touches (and the query has more
    /// than one edge), or if `output` mentions unknown attributes. A
    /// malformed query is a programming error, not a data condition.
    pub fn new(edges: Vec<Edge>, output: impl IntoIterator<Item = Attr>) -> Self {
        assert!(!edges.is_empty(), "a query needs at least one relation");
        let output: BTreeSet<Attr> = output.into_iter().collect();

        // No duplicate edges (a duplicate binary edge is a 2-cycle).
        let mut seen: HashSet<Vec<Attr>> = HashSet::new();
        for e in &edges {
            let mut key = e.attrs().to_vec();
            key.sort();
            assert!(
                seen.insert(key),
                "duplicate relation over {:?}; a tree has no parallel edges",
                e.attrs()
            );
        }

        let q = TreeQuery { edges, output };
        let attrs = q.attrs();
        for a in &q.output {
            assert!(
                attrs.contains(a),
                "output attribute {a} not in any relation"
            );
        }

        // Binary edges must form a tree spanning every attribute (except
        // the trivial single-unary-edge query).
        let binary: Vec<&Edge> = q.edges.iter().filter(|e| e.is_binary()).collect();
        if binary.is_empty() {
            assert!(
                q.edges.len() == 1,
                "multiple unary relations do not form a connected tree"
            );
            return q;
        }
        assert_eq!(
            binary.len() + 1,
            attrs.len(),
            "binary edges must form a spanning tree: {} edges over {} attributes",
            binary.len(),
            attrs.len()
        );
        // Connectivity check by BFS over binary edges.
        let adj = q.adjacency();
        let start = *attrs.iter().next().expect("non-empty");
        let mut visited = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &ei in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let e = &q.edges[ei];
                if !e.is_binary() {
                    continue;
                }
                let u = e.other(v);
                if visited.insert(u) {
                    queue.push_back(u);
                }
            }
        }
        assert_eq!(
            visited.len(),
            attrs.len(),
            "query hypergraph is disconnected"
        );
        q
    }

    /// The relations (edges), in index order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The output attributes `y`.
    pub fn output(&self) -> &BTreeSet<Attr> {
        &self.output
    }

    /// All attributes `V`, sorted.
    pub fn attrs(&self) -> BTreeSet<Attr> {
        self.edges
            .iter()
            .flat_map(|e| e.attrs().iter().copied())
            .collect()
    }

    /// The non-output attributes `ȳ`.
    pub fn non_output(&self) -> BTreeSet<Attr> {
        self.attrs()
            .into_iter()
            .filter(|a| !self.output.contains(a))
            .collect()
    }

    /// Whether `a` is an output attribute.
    pub fn is_output(&self, a: Attr) -> bool {
        self.output.contains(&a)
    }

    /// `attr → indices of incident edges` (unary edges included).
    pub fn adjacency(&self) -> HashMap<Attr, Vec<usize>> {
        let mut adj: HashMap<Attr, Vec<usize>> = HashMap::new();
        for (i, e) in self.edges.iter().enumerate() {
            for &a in e.attrs() {
                adj.entry(a).or_default().push(i);
            }
        }
        adj
    }

    /// Number of incident edges per attribute.
    pub fn degree(&self, a: Attr) -> usize {
        self.edges.iter().filter(|e| e.contains(a)).count()
    }

    /// Leaf attributes: incident to exactly one edge.
    pub fn leaves(&self) -> Vec<Attr> {
        self.attrs()
            .into_iter()
            .filter(|&a| self.degree(a) == 1)
            .collect()
    }

    /// The unique path of edge indices between attributes `from` and `to`
    /// along binary edges (empty if `from == to`).
    pub fn path(&self, from: Attr, to: Attr) -> Vec<usize> {
        let adj = self.adjacency();
        // BFS parent pointers.
        let mut parent: HashMap<Attr, (Attr, usize)> = HashMap::new();
        let mut visited = HashSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            if v == to {
                break;
            }
            for &ei in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let e = &self.edges[ei];
                if !e.is_binary() {
                    continue;
                }
                let u = e.other(v);
                if visited.insert(u) {
                    parent.insert(u, (v, ei));
                    queue.push_back(u);
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (prev, ei) = *parent
                .get(&cur)
                .unwrap_or_else(|| panic!("no path from {from} to {to}"));
            path.push(ei);
            cur = prev;
        }
        path.reverse();
        path
    }

    /// Attributes in the connected component of `start` when edges
    /// `cut_edges` are removed (traversal over binary edges).
    pub fn component_without(&self, start: Attr, cut_edges: &HashSet<usize>) -> BTreeSet<Attr> {
        let adj = self.adjacency();
        let mut visited = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &ei in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                if cut_edges.contains(&ei) {
                    continue;
                }
                let e = &self.edges[ei];
                if !e.is_binary() {
                    continue;
                }
                let u = e.other(v);
                if visited.insert(u) {
                    queue.push_back(u);
                }
            }
        }
        visited
    }

    /// A new query with the same edges but a different output set.
    pub fn with_output(&self, output: impl IntoIterator<Item = Attr>) -> TreeQuery {
        TreeQuery::new(self.edges.clone(), output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn matmul_query() -> TreeQuery {
        TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
    }

    #[test]
    fn matmul_structure() {
        let q = matmul_query();
        assert_eq!(q.attrs(), BTreeSet::from([A, B, C]));
        assert_eq!(q.non_output(), BTreeSet::from([B]));
        assert_eq!(q.leaves(), vec![A, C]);
        assert_eq!(q.degree(B), 2);
    }

    #[test]
    fn path_between_leaves() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        assert_eq!(q.path(A, D), vec![0, 1, 2]);
        assert_eq!(q.path(D, A), vec![2, 1, 0]);
        assert!(q.path(A, A).is_empty());
    }

    #[test]
    fn component_without_cut() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        let comp = q.component_without(A, &HashSet::from([1]));
        assert_eq!(comp, BTreeSet::from([A, B]));
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn rejects_forest() {
        let _ = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(C, D)], [A, D]);
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn rejects_cycle() {
        let _ = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, A)],
            [A],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn rejects_parallel_edges() {
        let _ = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, A)], [A]);
    }

    #[test]
    #[should_panic(expected = "not in any relation")]
    fn rejects_unknown_output() {
        let _ = TreeQuery::new(vec![Edge::binary(A, B)], [D]);
    }

    #[test]
    fn unary_edges_allowed() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::unary(A)], [B]);
        assert_eq!(q.degree(A), 2);
        assert_eq!(q.leaves(), vec![B]);
    }

    #[test]
    fn single_unary_relation() {
        let q = TreeQuery::new(vec![Edge::unary(A)], [A]);
        assert_eq!(q.attrs(), BTreeSet::from([A]));
    }
}

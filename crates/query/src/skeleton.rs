//! Skeletons of twig queries (§7.1, Figure 3).
//!
//! For a twig `T` that is not itself star-like, let `V* ⊆ V` be the
//! attributes appearing in more than 2 relations (`|V*| ≥ 2`, all
//! non-output since twig outputs are leaves). The subtree `T_{V*}` spanned
//! by `V*` has its leaves in `V*`; for each such leaf `B`, cutting the
//! `T_{V*}`-edge at `B` detaches a *star-like* subquery `T_B` rooted at
//! `B`, which the algorithm later materializes into one relation
//! `R(B, V_B ∩ y)`. Contracting every `T_B` to its root gives the
//! *skeleton* `T_S`; `S` is the set of leaves of `T_S` — the contracted
//! `B`s (non-output) together with ordinary output leaves hanging off the
//! skeleton's interior.

use crate::classify::{star_like_with_center, StarLikeShape};
use crate::tree::TreeQuery;
use mpcjoin_relation::Attr;
use std::collections::{BTreeSet, HashSet};

/// One contracted star-like part `T_B` of a skeleton.
#[derive(Clone, Debug)]
pub struct ContractedPart {
    /// The root `B` — a leaf of `T_{V*}`, non-output.
    pub b: Attr,
    /// Edge indices (into the twig) of `T_B`.
    pub edges: Vec<usize>,
    /// `V_B ∩ y`: the output attributes inside `T_B`.
    pub outputs: Vec<Attr>,
    /// `T_B` as a star-like shape centered at `B` (edge indices into the
    /// twig query).
    pub shape: StarLikeShape,
}

/// The skeleton decomposition of a twig.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// Attributes in more than two relations.
    pub vstar: Vec<Attr>,
    /// Edge indices of `T_S` (everything not swallowed by a `T_B`).
    pub skeleton_edges: Vec<usize>,
    /// `S`: the leaves of `T_S`, sorted.
    pub s: Vec<Attr>,
    /// The contracted star-like parts, one per leaf of `T_{V*}`.
    pub contracted: Vec<ContractedPart>,
}

/// Compute the skeleton of a twig, or `None` when `|V*| < 2` (the twig is
/// already star-like or simpler and needs no skeleton).
pub fn skeleton(q: &TreeQuery) -> Option<Skeleton> {
    let vstar: Vec<Attr> = q.attrs().into_iter().filter(|&a| q.degree(a) > 2).collect();
    if vstar.len() < 2 {
        return None;
    }

    // T_{V*}: union of the paths between V* terminals (a tree's Steiner
    // tree is the union of paths from one fixed terminal to the rest).
    let mut tvstar_edges: BTreeSet<usize> = BTreeSet::new();
    for &t in &vstar[1..] {
        tvstar_edges.extend(q.path(vstar[0], t));
    }

    // Leaves of T_{V*}: terminals incident to exactly one T_{V*} edge.
    let tv_degree = |a: Attr| -> usize {
        tvstar_edges
            .iter()
            .filter(|&&ei| q.edges()[ei].contains(a))
            .count()
    };
    let tv_attrs: BTreeSet<Attr> = tvstar_edges
        .iter()
        .flat_map(|&ei| q.edges()[ei].attrs().iter().copied())
        .collect();
    let tv_leaves: Vec<Attr> = tv_attrs
        .iter()
        .copied()
        .filter(|&a| tv_degree(a) == 1)
        .collect();

    // Detach T_B for each T_{V*} leaf B.
    let mut swallowed: HashSet<usize> = HashSet::new();
    let mut contracted = Vec::new();
    for &b in &tv_leaves {
        let eb = *tvstar_edges
            .iter()
            .find(|&&ei| q.edges()[ei].contains(b))
            .expect("leaf has an incident T_{V*} edge");
        let side = q.component_without(b, &HashSet::from([eb]));
        let edges: Vec<usize> = (0..q.edges().len())
            .filter(|&ei| ei != eb && q.edges()[ei].attrs().iter().all(|a| side.contains(a)))
            .collect();
        let outputs: Vec<Attr> = side.iter().copied().filter(|a| q.is_output(*a)).collect();
        let sub = TreeQuery::new(
            edges.iter().map(|&ei| q.edges()[ei].clone()).collect(),
            outputs.clone(),
        );
        let local_shape = star_like_with_center(&sub, b)
            .expect("a detached T_B must be star-like at B (paper, §7.1)");
        // Re-index the shape's edges back into the twig.
        let shape = StarLikeShape {
            center: local_shape.center,
            arms: local_shape
                .arms
                .into_iter()
                .map(|arm| crate::classify::Arm {
                    edges: arm.edges.iter().map(|&le| edges[le]).collect(),
                    attrs: arm.attrs,
                })
                .collect(),
        };
        swallowed.extend(edges.iter().copied());
        contracted.push(ContractedPart {
            b,
            edges,
            outputs,
            shape,
        });
    }

    let skeleton_edges: Vec<usize> = (0..q.edges().len())
        .filter(|ei| !swallowed.contains(ei))
        .collect();

    // S = leaves of T_S.
    let ts_degree = |a: Attr| -> usize {
        skeleton_edges
            .iter()
            .filter(|&&ei| q.edges()[ei].contains(a))
            .count()
    };
    let ts_attrs: BTreeSet<Attr> = skeleton_edges
        .iter()
        .flat_map(|&ei| q.edges()[ei].attrs().iter().copied())
        .collect();
    let s: Vec<Attr> = ts_attrs
        .iter()
        .copied()
        .filter(|&a| ts_degree(a) == 1)
        .collect();

    Some(Skeleton {
        vstar,
        skeleton_edges,
        s,
        contracted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Edge;

    /// The Figure 3 twig: skeleton with `S = {A1, A2, A3, B1, B2}`,
    /// `S ∩ y = {A1, A2, A3}`, `S ∩ ȳ = {B1, B2}`.
    ///
    /// Construction (matching the figure's qualitative structure): `B1`
    /// and `B2` each carry a star-like subtree of two output arms; the
    /// path between them passes through internal attributes carrying the
    /// hanging output leaves `A1, A2, A3`.
    fn figure_3_twig() -> (TreeQuery, Attr, Attr, Vec<Attr>) {
        let b1 = Attr(10);
        let b2 = Attr(11);
        let (a1, a2, a3) = (Attr(1), Attr(2), Attr(3));
        // Outputs hanging off B1's star-like part:
        let (p1, p2) = (Attr(4), Attr(5));
        // Outputs hanging off B2's star-like part:
        let (q1, q2) = (Attr(6), Attr(7));
        // Path interiors:
        let (m1, m2) = (Attr(20), Attr(21));
        let edges = vec![
            Edge::binary(b1, p1),
            Edge::binary(b1, p2),
            Edge::binary(b1, m1), // skeleton
            Edge::binary(m1, a1), // hanging output leaf
            Edge::binary(m1, m2), // skeleton
            Edge::binary(m2, a2),
            Edge::binary(m2, a3),
            Edge::binary(m2, b2), // skeleton (m2 has degree 4: in V*)
            Edge::binary(b2, q1),
            Edge::binary(b2, q2),
        ];
        let q = TreeQuery::new(edges, [p1, p2, a1, a2, a3, q1, q2]);
        (q, b1, b2, vec![a1, a2, a3])
    }

    #[test]
    fn figure_3_skeleton() {
        let (q, b1, b2, hanging) = figure_3_twig();
        let sk = skeleton(&q).expect("twig has |V*| ≥ 2");
        // V* contains b1, b2 (degree 3) and the path interiors of degree 3.
        assert!(sk.vstar.contains(&b1));
        assert!(sk.vstar.contains(&b2));
        // Exactly two contracted star-like parts, rooted at b1 and b2.
        let mut roots: Vec<Attr> = sk.contracted.iter().map(|c| c.b).collect();
        roots.sort();
        assert_eq!(roots, vec![b1, b2]);
        // S = {A1, A2, A3, B1, B2}.
        let mut expect: Vec<Attr> = hanging.clone();
        expect.extend([b1, b2]);
        expect.sort();
        assert_eq!(sk.s, expect);
        // Each contracted part has the two output arms from the figure.
        for c in &sk.contracted {
            assert_eq!(c.shape.arms.len(), 2);
            assert_eq!(c.outputs.len(), 2);
        }
    }

    #[test]
    fn star_like_twig_has_no_skeleton() {
        let b = Attr(9);
        let q = TreeQuery::new(
            vec![
                Edge::binary(b, Attr(0)),
                Edge::binary(b, Attr(1)),
                Edge::binary(b, Attr(2)),
            ],
            [Attr(0), Attr(1), Attr(2)],
        );
        assert!(skeleton(&q).is_none());
    }

    #[test]
    fn minimal_two_center_twig() {
        // B1 — B2 adjacent, each with two output leaves.
        let (b1, b2) = (Attr(10), Attr(11));
        let q = TreeQuery::new(
            vec![
                Edge::binary(b1, Attr(0)),
                Edge::binary(b1, Attr(1)),
                Edge::binary(b1, b2),
                Edge::binary(b2, Attr(2)),
                Edge::binary(b2, Attr(3)),
            ],
            [Attr(0), Attr(1), Attr(2), Attr(3)],
        );
        let sk = skeleton(&q).expect("two centers");
        assert_eq!(sk.vstar, vec![b1, b2]);
        // The skeleton is just the edge b1–b2; S = {b1, b2}.
        assert_eq!(sk.skeleton_edges, vec![2]);
        assert_eq!(sk.s, vec![b1, b2]);
        assert_eq!(sk.contracted.len(), 2);
        for c in &sk.contracted {
            assert_eq!(c.edges.len(), 2);
            assert_eq!(c.shape.arms.len(), 2);
        }
    }
}

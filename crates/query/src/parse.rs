//! A small datalog-style surface syntax for tree join-aggregate queries.
//!
//! ```text
//! Q(a, c) :- R(a, b), S(b, c).
//! ```
//!
//! The head lists the output attributes; each body atom is a relation
//! over one or two named attributes. Whitespace is free; the trailing
//! period is optional; identifiers are `[A-Za-z_][A-Za-z0-9_]*`. Query
//! *semantics* (which aggregation, which semiring) is orthogonal — the
//! syntax only fixes the hypergraph and the output set, per §1.1.

use crate::builder::{AttrNames, QueryBuilder};
use crate::tree::TreeQuery;
use std::fmt;

/// A parsed query: the hypergraph, the attribute name table, and the
/// relation names in body order (used to bind input files to edges).
#[derive(Debug)]
pub struct ParsedQuery {
    /// The validated tree query.
    pub query: TreeQuery,
    /// Attribute name ↔ id table.
    pub names: AttrNames,
    /// The body atoms' relation names, in edge order.
    pub relation_names: Vec<String>,
}

/// A syntax or structure error, with a human-oriented message.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query syntax error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parse `Head(outputs…) :- Atom(attrs…), …` into a validated query.
///
/// Structural validation (tree shape, known outputs) is delegated to
/// [`TreeQuery::new`] but surfaced as a [`ParseError`] instead of a
/// panic, since surface-syntax input is user data.
///
/// ```
/// use mpcjoin_query::{classify, parse_query, Shape};
///
/// let parsed = parse_query("Q(a, c) :- R(a, b), S(b, c).").unwrap();
/// assert!(matches!(classify(&parsed.query), Shape::MatMul { .. }));
/// assert_eq!(parsed.relation_names, ["R", "S"]);
///
/// // Cyclic hypergraphs are rejected with a message, not a panic.
/// assert!(parse_query("Q(a) :- R(a,b), S(b,c), T(c,a)").is_err());
/// ```
pub fn parse_query(text: &str) -> Result<ParsedQuery, ParseError> {
    let text = text.trim().trim_end_matches('.');
    let Some((head, body)) = text.split_once(":-") else {
        return err("expected `Head(...) :- Body`");
    };

    let (head_name, outputs) = parse_atom(head)?;
    if head_name.is_empty() {
        return err("missing head relation name");
    }
    if outputs.iter().any(String::is_empty) {
        return err("empty attribute name in head");
    }

    let mut builder = QueryBuilder::new();
    let mut relation_names = Vec::new();
    for atom in split_atoms(body)? {
        let (name, attrs) = parse_atom(&atom)?;
        if name.is_empty() {
            return err(format!("missing relation name in `{atom}`"));
        }
        match attrs.as_slice() {
            [x] => builder = builder.unary_relation(x),
            [x, y] => builder = builder.relation(x, y),
            other => {
                return err(format!(
                    "relation {name} has arity {}; tree queries use arity 1 or 2",
                    other.len()
                ))
            }
        }
        relation_names.push(name);
    }
    if relation_names.is_empty() {
        return err("query body has no relations");
    }

    let builder = builder.output(outputs.iter().map(String::as_str));
    let (query, names) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| builder.build()))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "invalid query structure".to_string());
            ParseError(msg)
        })?;
    Ok(ParsedQuery {
        query,
        names,
        relation_names,
    })
}

/// Split a body on top-level commas: `R(a, b), S(b, c)` → two atoms.
fn split_atoms(body: &str) -> Result<Vec<String>, ParseError> {
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                if depth == 0 {
                    return err("unbalanced `)`");
                }
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                atoms.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if depth != 0 {
        return err("unbalanced `(`");
    }
    if !current.trim().is_empty() {
        atoms.push(current);
    }
    Ok(atoms)
}

/// Parse `Name(attr, attr, …)` into the name and attribute list.
fn parse_atom(atom: &str) -> Result<(String, Vec<String>), ParseError> {
    let atom = atom.trim();
    let Some(open) = atom.find('(') else {
        return err(format!("expected `Name(...)`, got `{atom}`"));
    };
    let Some(stripped) = atom.strip_suffix(')') else {
        return err(format!("missing `)` in `{atom}`"));
    };
    let name = atom[..open].trim();
    if !is_identifier(name) && !name.is_empty() {
        return err(format!("invalid relation name `{name}`"));
    }
    let args: Vec<String> = stripped[open + 1..]
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    for a in &args {
        if !is_identifier(a) {
            return err(format!("invalid attribute name `{a}`"));
        }
    }
    Ok((name.to_string(), args))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Shape};

    #[test]
    fn parses_matrix_multiplication() {
        let parsed = parse_query("Q(a, c) :- R(a, b), S(b, c).").expect("valid");
        assert!(matches!(classify(&parsed.query), Shape::MatMul { .. }));
        assert_eq!(parsed.relation_names, vec!["R", "S"]);
        assert_eq!(parsed.names.len(), 3);
    }

    #[test]
    fn parses_star_and_unary() {
        let parsed =
            parse_query("Out(x, y, z) :- A(x, hub), B(y, hub), C(z, hub), F(hub)").expect("valid");
        assert_eq!(parsed.query.edges().len(), 4);
        assert_eq!(parsed.relation_names, vec!["A", "B", "C", "F"]);
    }

    #[test]
    fn whitespace_and_newlines_are_free() {
        let parsed = parse_query(
            "Q( src , dst )\n  :-  Hop1(src, m1),\n      Hop2(m1, m2),\n      Hop3(m2, dst)",
        )
        .expect("valid");
        assert!(matches!(classify(&parsed.query), Shape::Line { .. }));
    }

    #[test]
    fn rejects_missing_turnstile() {
        assert!(parse_query("Q(a, c)").is_err());
    }

    #[test]
    fn rejects_cyclic_queries() {
        let e = parse_query("Q(a) :- R(a, b), S(b, c), T(c, a)").unwrap_err();
        assert!(e.to_string().contains("spanning tree"), "{e}");
    }

    #[test]
    fn rejects_high_arity() {
        let e = parse_query("Q(a) :- R(a, b, c)").unwrap_err();
        assert!(e.to_string().contains("arity 3"), "{e}");
    }

    #[test]
    fn rejects_bad_identifiers() {
        assert!(parse_query("Q(a) :- R(a, 1b)").is_err());
        assert!(parse_query("Q(a) :- R(a, b c)").is_err());
    }

    #[test]
    fn rejects_unknown_output() {
        let e = parse_query("Q(zzz) :- R(a, b)").unwrap_err();
        assert!(e.to_string().contains("not in any relation"), "{e}");
    }

    #[test]
    fn unbalanced_parens_reported() {
        assert!(parse_query("Q(a :- R(a, b)").is_err());
        assert!(parse_query("Q(a) :- R(a, b)) , S(b,c)").is_err());
    }
}

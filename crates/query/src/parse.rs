//! A small datalog-style surface syntax for tree join-aggregate queries.
//!
//! ```text
//! Q(a, c) :- R(a, b), S(b, c).
//! ```
//!
//! The head lists the output attributes; each body atom is a relation
//! over one or two named attributes. Whitespace is free; the trailing
//! period is optional; identifiers are `[A-Za-z_][A-Za-z0-9_]*`. Query
//! *semantics* (which aggregation, which semiring) is orthogonal — the
//! syntax only fixes the hypergraph and the output set, per §1.1.

use crate::builder::{AttrNames, QueryBuilder};
use crate::tree::TreeQuery;
use std::fmt;

/// A parsed query: the hypergraph, the attribute name table, and the
/// relation names in body order (used to bind input files to edges).
#[derive(Debug)]
pub struct ParsedQuery {
    /// The validated tree query.
    pub query: TreeQuery,
    /// Attribute name ↔ id table.
    pub names: AttrNames,
    /// The body atoms' relation names, in edge order.
    pub relation_names: Vec<String>,
}

/// A syntax or structure error. Carries a human-oriented message plus —
/// when the problem can be pinned to a location — the byte offset into
/// the query text and the offending token.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: Option<usize>,
    token: Option<String>,
}

impl ParseError {
    fn new(message: impl Into<String>, offset: Option<usize>, token: Option<String>) -> Self {
        ParseError {
            message: message.into(),
            offset,
            token,
        }
    }

    /// The error message (without the position suffix `Display` adds).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset of the problem within the text given to
    /// [`parse_query`], when it can be located.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// The offending token, when one can be isolated.
    pub fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query syntax error: {}", self.message)?;
        if let Some(o) = self.offset {
            write!(f, " at byte {o}")?;
        }
        if let Some(t) = &self.token {
            write!(f, " near `{t}`")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError::new(msg, None, None))
}

/// Byte offset of `part` — a subslice of `text` — within `text`.
fn offset_in(text: &str, part: &str) -> usize {
    (part.as_ptr() as usize).saturating_sub(text.as_ptr() as usize)
}

/// Parse `Head(outputs…) :- Atom(attrs…), …` into a validated query.
///
/// Structural validation (tree shape, known outputs) is delegated to
/// [`TreeQuery::new`] but surfaced as a [`ParseError`] instead of a
/// panic, since surface-syntax input is user data.
///
/// ```
/// use mpcjoin_query::{classify, parse_query, Shape};
///
/// let parsed = parse_query("Q(a, c) :- R(a, b), S(b, c).").unwrap();
/// assert!(matches!(classify(&parsed.query), Shape::MatMul { .. }));
/// assert_eq!(parsed.relation_names, ["R", "S"]);
///
/// // Cyclic hypergraphs are rejected with a message, not a panic.
/// assert!(parse_query("Q(a) :- R(a,b), S(b,c), T(c,a)").is_err());
/// ```
pub fn parse_query(text: &str) -> Result<ParsedQuery, ParseError> {
    let full = text;
    let text = text.trim().trim_end_matches('.');
    let Some((head, body)) = text.split_once(":-") else {
        return err("expected `Head(...) :- Body`");
    };

    let (head_name, outputs) = parse_atom(head, full)?;
    if head_name.is_empty() {
        return err("missing head relation name");
    }
    if outputs.iter().any(String::is_empty) {
        return err("empty attribute name in head");
    }

    let mut builder = QueryBuilder::new();
    let mut relation_names = Vec::new();
    for atom in split_atoms(body, full)? {
        let (name, attrs) = parse_atom(atom, full)?;
        if name.is_empty() {
            return Err(ParseError::new(
                format!("missing relation name in `{}`", atom.trim()),
                Some(offset_in(full, atom)),
                Some(atom.trim().to_string()),
            ));
        }
        match attrs.as_slice() {
            [x] => builder = builder.unary_relation(x),
            [x, y] => builder = builder.relation(x, y),
            other => {
                return Err(ParseError::new(
                    format!(
                        "relation {name} has arity {}; tree queries use arity 1 or 2",
                        other.len()
                    ),
                    Some(offset_in(full, atom)),
                    Some(name),
                ))
            }
        }
        relation_names.push(name);
    }
    if relation_names.is_empty() {
        return err("query body has no relations");
    }

    let builder = builder.output(outputs.iter().map(String::as_str));
    let (query, names) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| builder.build()))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "invalid query structure".to_string());
            ParseError::new(msg, None, None)
        })?;
    Ok(ParsedQuery {
        query,
        names,
        relation_names,
    })
}

/// Split a body on top-level commas: `R(a, b), S(b, c)` → two atoms.
/// Returned atoms are subslices of the input, so their position in the
/// original query text is recoverable via [`offset_in`].
fn split_atoms<'a>(body: &'a str, full: &str) -> Result<Vec<&'a str>, ParseError> {
    let mut atoms = Vec::new();
    let mut open_stack = Vec::new();
    let mut start = 0usize;
    for (i, ch) in body.char_indices() {
        match ch {
            '(' => open_stack.push(i),
            ')' if open_stack.pop().is_none() => {
                return Err(ParseError::new(
                    "unbalanced `)`",
                    Some(offset_in(full, body) + i),
                    Some(")".to_string()),
                ));
            }
            ',' if open_stack.is_empty() => {
                atoms.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if let Some(&open) = open_stack.first() {
        return Err(ParseError::new(
            "unbalanced `(`",
            Some(offset_in(full, body) + open),
            Some("(".to_string()),
        ));
    }
    let last = &body[start..];
    if !last.trim().is_empty() {
        atoms.push(last);
    }
    Ok(atoms)
}

/// Parse `Name(attr, attr, …)` into the name and attribute list.
///
/// `atom` must be a subslice of `full` (the original query text) so
/// errors can report their byte offset within it.
fn parse_atom(atom: &str, full: &str) -> Result<(String, Vec<String>), ParseError> {
    let atom = atom.trim();
    let at = |part: &str| Some(offset_in(full, part));
    let Some(open) = atom.find('(') else {
        return Err(ParseError::new(
            format!("expected `Name(...)`, got `{atom}`"),
            at(atom),
            Some(atom.to_string()),
        ));
    };
    let Some(stripped) = atom.strip_suffix(')') else {
        return Err(ParseError::new(
            format!("missing `)` in `{atom}`"),
            at(atom),
            Some(atom.to_string()),
        ));
    };
    let name = atom[..open].trim();
    if !is_identifier(name) && !name.is_empty() {
        return Err(ParseError::new(
            format!("invalid relation name `{name}`"),
            at(name),
            Some(name.to_string()),
        ));
    }
    let args: Vec<&str> = stripped[open + 1..]
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    for &a in &args {
        if !is_identifier(a) {
            return Err(ParseError::new(
                format!("invalid attribute name `{a}`"),
                at(a),
                Some(a.to_string()),
            ));
        }
    }
    Ok((
        name.to_string(),
        args.iter().map(|a| a.to_string()).collect(),
    ))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Shape};

    #[test]
    fn parses_matrix_multiplication() {
        let parsed = parse_query("Q(a, c) :- R(a, b), S(b, c).").expect("valid");
        assert!(matches!(classify(&parsed.query), Shape::MatMul { .. }));
        assert_eq!(parsed.relation_names, vec!["R", "S"]);
        assert_eq!(parsed.names.len(), 3);
    }

    #[test]
    fn parses_star_and_unary() {
        let parsed =
            parse_query("Out(x, y, z) :- A(x, hub), B(y, hub), C(z, hub), F(hub)").expect("valid");
        assert_eq!(parsed.query.edges().len(), 4);
        assert_eq!(parsed.relation_names, vec!["A", "B", "C", "F"]);
    }

    #[test]
    fn whitespace_and_newlines_are_free() {
        let parsed = parse_query(
            "Q( src , dst )\n  :-  Hop1(src, m1),\n      Hop2(m1, m2),\n      Hop3(m2, dst)",
        )
        .expect("valid");
        assert!(matches!(classify(&parsed.query), Shape::Line { .. }));
    }

    #[test]
    fn rejects_missing_turnstile() {
        assert!(parse_query("Q(a, c)").is_err());
    }

    #[test]
    fn rejects_cyclic_queries() {
        let e = parse_query("Q(a) :- R(a, b), S(b, c), T(c, a)").unwrap_err();
        assert!(e.to_string().contains("spanning tree"), "{e}");
    }

    #[test]
    fn rejects_high_arity() {
        let e = parse_query("Q(a) :- R(a, b, c)").unwrap_err();
        assert!(e.to_string().contains("arity 3"), "{e}");
    }

    #[test]
    fn rejects_bad_identifiers() {
        assert!(parse_query("Q(a) :- R(a, 1b)").is_err());
        assert!(parse_query("Q(a) :- R(a, b c)").is_err());
    }

    #[test]
    fn rejects_unknown_output() {
        let e = parse_query("Q(zzz) :- R(a, b)").unwrap_err();
        assert!(e.to_string().contains("not in any relation"), "{e}");
    }

    #[test]
    fn unbalanced_parens_reported() {
        assert!(parse_query("Q(a :- R(a, b)").is_err());
        assert!(parse_query("Q(a) :- R(a, b)) , S(b,c)").is_err());
    }

    #[test]
    fn errors_carry_byte_offsets_and_tokens() {
        let text = "Q(a, c) :- R(a, 1b)";
        let e = parse_query(text).unwrap_err();
        assert_eq!(e.token(), Some("1b"));
        assert_eq!(e.offset(), Some(16));
        assert_eq!(&text[16..18], "1b");
        assert!(e.to_string().contains("at byte 16"), "{e}");
        assert!(e.to_string().contains("near `1b`"), "{e}");

        let text = "Q(a) :- R(a, b)) , S(b,c)";
        let e = parse_query(text).unwrap_err();
        assert_eq!(e.token(), Some(")"));
        assert_eq!(e.offset(), Some(15));
        assert_eq!(&text[15..16], ")");

        // The first unclosed `(` is reported, not the last.
        let text = "Q(a) :- R(a b(";
        let e = parse_query(text).unwrap_err();
        assert_eq!(e.token(), Some("("));
        assert_eq!(e.offset(), Some(9));
        assert_eq!(&text[9..10], "(");

        let text = "Q(a) :- 9R(a, b)";
        let e = parse_query(text).unwrap_err();
        assert_eq!(e.token(), Some("9R"));
        assert_eq!(e.offset(), Some(8));

        // Structural errors (no single offending token) have no position.
        let e = parse_query("Q(zzz) :- R(a, b)").unwrap_err();
        assert_eq!(e.offset(), None);
        assert_eq!(e.token(), None);
    }

    /// Deterministic xorshift generator for the fuzz test — no seed from
    /// the environment, so failures reproduce exactly.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Mutation fuzzing: take valid queries, splice in random edits, and
    /// check the parser always returns (Ok or Err) instead of panicking,
    /// and that reported offsets stay inside the input.
    #[test]
    fn fuzzed_inputs_never_panic_and_offsets_stay_in_bounds() {
        let seeds = [
            "Q(a, c) :- R(a, b), S(b, c).",
            "Out(x, y, z) :- A(x, hub), B(y, hub), C(z, hub), F(hub)",
            "Q(src, dst) :- Hop1(src, m1), Hop2(m1, m2), Hop3(m2, dst)",
        ];
        let alphabet: Vec<char> = "(),:-. _abQR019\u{e9}".chars().collect();
        let mut rng = Lcg(0x9e3779b97f4a7c15);
        for round in 0..400 {
            let base = seeds[round % seeds.len()];
            let mut chars: Vec<char> = base.chars().collect();
            for _ in 0..1 + rng.below(4) {
                let pos = rng.below(chars.len().max(1));
                match rng.below(3) {
                    0 if !chars.is_empty() => {
                        chars.remove(pos.min(chars.len() - 1));
                    }
                    1 => chars.insert(pos, alphabet[rng.below(alphabet.len())]),
                    _ if !chars.is_empty() => {
                        let idx = pos.min(chars.len() - 1);
                        chars[idx] = alphabet[rng.below(alphabet.len())];
                    }
                    _ => {}
                }
            }
            let mutated: String = chars.into_iter().collect();
            if let Err(e) = parse_query(&mutated) {
                if let Some(off) = e.offset() {
                    assert!(
                        off < mutated.len().max(1),
                        "offset {off} out of bounds: {e}"
                    );
                }
            }
        }
    }
}

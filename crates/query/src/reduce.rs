//! The §7 *reduce* preprocessing: absorb relations that can be folded into
//! a neighbour so that every remaining leaf attribute is an output
//! attribute.
//!
//! A relation `R_e` is removable when (1) `e` has a single attribute, or
//! (2) some non-output attribute appears in `e` only. Removal attaches
//! `R_e`'s annotations to a neighbouring relation `R_{e'}` sharing an
//! attribute: `w(t') ← w(t') ⊗ Σ { w(t) : t ∈ R_e, π_{e∩e'} t = π_{e∩e'} t' }`.
//!
//! This module computes the *plan* (which edge folds into which, in what
//! order); executing a step on data is the engine's job, since it involves
//! reduce-by-key and multi-search traffic.

use crate::tree::TreeQuery;
use mpcjoin_relation::Attr;

/// One fold: absorb relation `removed` into relation `absorber`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceStep {
    /// Edge index (into the original query) being removed.
    pub removed: usize,
    /// Edge index (into the original query) receiving the annotations.
    pub absorber: usize,
    /// The shared attributes `e ∩ e'` the fold groups by.
    pub on: Vec<Attr>,
}

/// The reduction plan and the query that remains.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// Folds to execute, in order.
    pub steps: Vec<ReduceStep>,
    /// Original edge indices that survive, ascending.
    pub kept: Vec<usize>,
    /// The reduced query over the kept edges (same edge order as `kept`).
    pub reduced: TreeQuery,
}

/// Plan the §7 reduction of `q`. Stops when no relation is removable or
/// only one remains. In the reduced query every leaf attribute is an
/// output attribute (checked by `debug_assert`).
pub fn plan_reduction(q: &TreeQuery) -> Reduction {
    let mut alive: Vec<bool> = vec![true; q.edges().len()];
    let mut steps = Vec::new();

    loop {
        let alive_count = alive.iter().filter(|a| **a).count();
        if alive_count <= 1 {
            break;
        }
        let Some((removed, absorber)) = find_removable(q, &alive) else {
            break;
        };
        let on: Vec<Attr> = q.edges()[removed]
            .attrs()
            .iter()
            .copied()
            .filter(|a| q.edges()[absorber].contains(*a))
            .collect();
        steps.push(ReduceStep {
            removed,
            absorber,
            on,
        });
        alive[removed] = false;
    }

    let kept: Vec<usize> = (0..q.edges().len()).filter(|&i| alive[i]).collect();
    let kept_edges = kept.iter().map(|&i| q.edges()[i].clone()).collect();
    let attrs_left: std::collections::BTreeSet<Attr> = kept
        .iter()
        .flat_map(|&i| q.edges()[i].attrs().iter().copied())
        .collect();
    let reduced = TreeQuery::new(
        kept_edges,
        q.output()
            .iter()
            .copied()
            .filter(|a| attrs_left.contains(a)),
    );
    debug_assert!(
        reduced.edges().len() == 1 || reduced.leaves().iter().all(|&a| reduced.is_output(a)),
        "reduction must leave only output leaves"
    );
    Reduction {
        steps,
        kept,
        reduced,
    }
}

/// Find `(removed, absorber)` for the next fold, or `None`.
fn find_removable(q: &TreeQuery, alive: &[bool]) -> Option<(usize, usize)> {
    let live_degree = |a: Attr| -> usize {
        q.edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| alive[*i] && e.contains(a))
            .count()
    };
    for (i, e) in q.edges().iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let removable = e.attrs().len() == 1
            || e.attrs()
                .iter()
                .any(|&v| !q.is_output(v) && live_degree(v) == 1);
        if !removable {
            continue;
        }
        // Any live neighbour sharing an attribute absorbs.
        let absorber = q
            .edges()
            .iter()
            .enumerate()
            .find(|(j, e2)| alive[*j] && *j != i && e.attrs().iter().any(|a| e2.contains(*a)));
        if let Some((j, _)) = absorber {
            return Some((i, j));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Edge;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn matmul_is_irreducible() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r = plan_reduction(&q);
        assert!(r.steps.is_empty());
        assert_eq!(r.kept, vec![0, 1]);
    }

    #[test]
    fn dangling_non_output_leaf_folds_in() {
        // D is a non-output leaf: R(C, D) folds into R(B, C).
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, C],
        );
        let r = plan_reduction(&q);
        assert_eq!(
            r.steps,
            vec![ReduceStep {
                removed: 2,
                absorber: 1,
                on: vec![C]
            }]
        );
        assert_eq!(r.kept, vec![0, 1]);
        assert!(r.reduced.leaves().iter().all(|&a| r.reduced.is_output(a)));
    }

    #[test]
    fn unary_relation_folds_in() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::unary(A)], [A, B]);
        let r = plan_reduction(&q);
        assert_eq!(
            r.steps,
            vec![ReduceStep {
                removed: 1,
                absorber: 0,
                on: vec![A]
            }]
        );
        assert_eq!(r.reduced.edges().len(), 1);
    }

    #[test]
    fn chain_of_non_output_leaves_collapses() {
        // y = {A}: the whole chain folds down to one relation.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A],
        );
        let r = plan_reduction(&q);
        assert_eq!(r.kept.len(), 1);
        assert_eq!(r.kept, vec![0]);
        assert_eq!(r.steps.len(), 2);
        // Folds happen outside-in: (C,D) into (B,C), then (B,C) into (A,B).
        assert_eq!(r.steps[0].removed, 2);
        assert_eq!(r.steps[1].removed, 1);
    }

    #[test]
    fn reduction_keeps_output_leaves() {
        // Figure-2-like: after reduction every leaf is an output attr.
        let q = TreeQuery::new(
            vec![
                Edge::binary(A, B),
                Edge::binary(B, C),
                Edge::binary(C, D),
                Edge::binary(D, Attr(9)), // non-output tail
            ],
            [A, D],
        );
        let r = plan_reduction(&q);
        assert_eq!(r.kept, vec![0, 1, 2]);
        assert!(r.reduced.leaves().iter().all(|&a| r.reduced.is_output(a)));
    }
}

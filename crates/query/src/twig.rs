//! Twig decomposition (§7, Figure 2): break a reduced tree query at every
//! non-leaf output attribute.
//!
//! After the §7 reduction every leaf is an output attribute; breaking at
//! the internal (non-leaf) output attributes yields *twigs* — subqueries in
//! which the output attributes are exactly the leaves. Twigs are computed
//! independently; because every attribute shared between two twigs is an
//! output attribute, the final combination of twig results is a
//! free-connex join handled by the standard Yannakakis algorithm.

use crate::tree::TreeQuery;
use mpcjoin_relation::Attr;
use std::collections::BTreeSet;

/// One twig of a decomposition.
#[derive(Clone, Debug)]
pub struct Twig {
    /// The twig as a stand-alone query; its output attributes are exactly
    /// its leaves.
    pub query: TreeQuery,
    /// For each edge of `query`, the edge index in the parent query.
    pub parent_edges: Vec<usize>,
}

/// Split `q` (already reduced: all leaves are outputs) into twigs.
///
/// Two edges belong to the same twig iff they are connected through
/// attributes that are *not* internal output attributes. Panics if `q`
/// has a non-output leaf (i.e. was not reduced first).
pub fn decompose_twigs(q: &TreeQuery) -> Vec<Twig> {
    assert!(
        q.edges().len() == 1 || q.leaves().iter().all(|&a| q.is_output(a)),
        "twig decomposition requires a reduced query (non-output leaf found)"
    );
    let break_attrs: BTreeSet<Attr> = q
        .attrs()
        .into_iter()
        .filter(|&a| q.is_output(a) && q.degree(a) >= 2)
        .collect();

    // Union-find over edges, merging edges that share a non-break attr.
    let n = q.edges().len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for a in q.attrs() {
        if break_attrs.contains(&a) {
            continue;
        }
        let incident: Vec<usize> = (0..n).filter(|&i| q.edges()[i].contains(a)).collect();
        for w in incident.windows(2) {
            let (r1, r2) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if r1 != r2 {
                parent[r1] = r2;
            }
        }
    }

    // Materialize components in deterministic (smallest-edge-index) order.
    let roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let mut seen = Vec::new();
    let mut twigs = Vec::new();
    for i in 0..n {
        let root = roots[i];
        if seen.contains(&root) {
            continue;
        }
        seen.push(root);
        let members: Vec<usize> = (0..n).filter(|&j| roots[j] == root).collect();
        let edges = members.iter().map(|&j| q.edges()[j].clone()).collect();
        let attrs: BTreeSet<Attr> = members
            .iter()
            .flat_map(|&j| q.edges()[j].attrs().iter().copied())
            .collect();
        let output: Vec<Attr> = attrs.iter().copied().filter(|a| q.is_output(*a)).collect();
        twigs.push(Twig {
            query: TreeQuery::new(edges, output),
            parent_edges: members,
        });
    }
    twigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Shape};
    use crate::tree::Edge;

    #[test]
    fn matmul_is_single_twig() {
        let (a, b, c) = (Attr(0), Attr(1), Attr(2));
        let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
        let twigs = decompose_twigs(&q);
        assert_eq!(twigs.len(), 1);
        assert!(matches!(classify(&twigs[0].query), Shape::MatMul { .. }));
    }

    #[test]
    fn internal_output_attr_splits() {
        // A — B — C with y = {A, B, C}? That is free-connex; use
        // A — B — C — D — E with y = {A, C, E}: break at C.
        let attrs: Vec<Attr> = (0..5).map(Attr).collect();
        let q = TreeQuery::new(
            vec![
                Edge::binary(attrs[0], attrs[1]),
                Edge::binary(attrs[1], attrs[2]),
                Edge::binary(attrs[2], attrs[3]),
                Edge::binary(attrs[3], attrs[4]),
            ],
            [attrs[0], attrs[2], attrs[4]],
        );
        let twigs = decompose_twigs(&q);
        assert_eq!(twigs.len(), 2);
        for t in &twigs {
            // Each twig is a 2-hop matrix multiplication.
            assert!(matches!(classify(&t.query), Shape::MatMul { .. }));
        }
    }

    /// The Figure 2 example: a tree query whose reduction decomposes into
    /// 6 twigs — two single relations with all-output vertices, two matrix
    /// multiplications, one star-like query and one general twig.
    #[test]
    fn figure_2_decomposition() {
        // Construct a tree with the qualitative structure of Figure 2.
        // Output attrs: o1..o8; non-output: b1 (star-like center),
        // b2/b3 (the general twig's two centers), m1, m2 (matmul middles),
        // c1 (an arm interior).
        let o: Vec<Attr> = (0..9).map(Attr).collect(); // o[1..=8]
        let b1 = Attr(20);
        let b2 = Attr(21);
        let b3 = Attr(22);
        let m1 = Attr(23);
        let c1 = Attr(25);
        let edges = vec![
            Edge::binary(o[1], o[2]), // twig 1: single all-output relation
            Edge::binary(o[2], m1),   // twig 2: matmul o2 –m1– o3
            Edge::binary(m1, o[3]),
            Edge::binary(o[3], b1), // twig 3: star-like at b1
            Edge::binary(b1, c1),   //   arm with interior c1
            Edge::binary(c1, o[4]),
            Edge::binary(b1, o[5]), //   short arm
            Edge::binary(o[5], b2), // twig 4: general twig, centers b2, b3
            Edge::binary(b2, o[6]),
            Edge::binary(b2, b3),
            Edge::binary(b3, o[7]),
            Edge::binary(b3, o[8]),
            Edge::binary(o[8], Attr(26)), // twig 5-ish: single relation o8–o9
        ];
        let outputs = vec![o[1], o[2], o[3], o[4], o[5], o[6], o[7], o[8], Attr(26)];
        let q = TreeQuery::new(edges, outputs);
        let twigs = decompose_twigs(&q);
        assert_eq!(twigs.len(), 5);

        let shapes: Vec<Shape> = twigs.iter().map(|t| classify(&t.query)).collect();
        let count = |pred: &dyn Fn(&Shape) -> bool| shapes.iter().filter(|s| pred(s)).count();
        // Single all-output relations classify as free-connex.
        assert_eq!(count(&|s| matches!(s, Shape::FreeConnex)), 2);
        assert_eq!(count(&|s| matches!(s, Shape::MatMul { .. })), 1);
        assert_eq!(count(&|s| matches!(s, Shape::StarLike(_))), 1);
        assert_eq!(count(&|s| matches!(s, Shape::Twig)), 1);
    }

    #[test]
    fn twig_outputs_are_exactly_leaves() {
        let attrs: Vec<Attr> = (0..5).map(Attr).collect();
        let q = TreeQuery::new(
            vec![
                Edge::binary(attrs[0], attrs[1]),
                Edge::binary(attrs[1], attrs[2]),
                Edge::binary(attrs[2], attrs[3]),
                Edge::binary(attrs[3], attrs[4]),
            ],
            [attrs[0], attrs[2], attrs[4]],
        );
        for t in decompose_twigs(&q) {
            let leaves: BTreeSet<Attr> = t.query.leaves().into_iter().collect();
            assert_eq!(&leaves, t.query.output());
        }
    }

    #[test]
    #[should_panic(expected = "reduced query")]
    fn rejects_unreduced_query() {
        let (a, b, c) = (Attr(0), Attr(1), Attr(2));
        // c is a non-output leaf: must be reduced away first.
        let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, b]);
        let _ = decompose_twigs(&q);
    }
}

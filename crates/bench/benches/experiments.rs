//! Wall-clock benchmarks: simulator runtime of the experiments in the
//! DESIGN.md index, one section per experiment. (The paper's cost metric
//! is the *load*, printed by the harness binaries; these benches track the
//! simulator's own performance so regressions in the implementation are
//! visible too.) Plain `main` timing loop; run with
//! `cargo bench --bench experiments [-- --threads N]`.

use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};
use mpcjoin_bench::bench_case;

fn execute<S: Semiring>(p: usize, q: &TreeQuery, rels: &[Relation<S>]) -> ExecutionResult<S> {
    QueryEngine::new(p)
        .run(q, rels)
        .unwrap_or_else(|e| panic!("{e}"))
}

fn execute_baseline<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    rels: &[Relation<S>],
) -> ExecutionResult<S> {
    QueryEngine::new(p)
        .plan(PlanChoice::Baseline)
        .run(q, rels)
        .unwrap_or_else(|e| panic!("{e}"))
}

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn mm_query() -> TreeQuery {
    TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
}

/// T1.mm: the Table-1 matrix multiplication row (new vs baseline).
fn bench_table1_mm() {
    let q = mm_query();
    for side in [4u64, 16, 48] {
        let inst = matrix::blocks::<Count>((A, B, C), 384 / (4 * side).max(1), side, 2);
        let rels = [inst.r1, inst.r2];
        bench_case(&format!("table1_mm/new/{side}"), 10, || {
            execute(16, &q, &rels).cost.load
        });
        bench_case(&format!("table1_mm/baseline/{side}"), 10, || {
            execute_baseline(16, &q, &rels).cost.load
        });
    }
}

/// T1.mm.uneq: unequal matrix sizes.
fn bench_table1_mm_unequal() {
    let q = mm_query();
    for ratio in [1u64, 16] {
        let inst = matrix::uniform::<Count>(
            &mut rng(5 + ratio),
            (A, B, C),
            (256 / ratio).max(2) as usize,
            256,
            ((256 / ratio).max(2), 16, 256),
        );
        let rels = [inst.r1, inst.r2];
        bench_case(&format!("table1_mm_unequal/new/{ratio}"), 10, || {
            execute(16, &q, &rels).cost.load
        });
    }
}

/// T1.line: the Table-1 line row.
fn bench_table1_line() {
    for fanout in [1u64, 4] {
        let inst = chain::layered::<Count>(3, 32, fanout);
        bench_case(&format!("table1_line/new/{fanout}"), 10, || {
            execute(16, &inst.query, &inst.rels).cost.load
        });
        bench_case(&format!("table1_line/baseline/{fanout}"), 10, || {
            execute_baseline(16, &inst.query, &inst.rels).cost.load
        });
    }
}

/// T1.star: the Table-1 star row.
fn bench_table1_star() {
    for deg in [1u64, 4] {
        let inst = star::degree_profile::<Count>(3, 16, &[vec![deg], vec![deg], vec![deg]]);
        bench_case(&format!("table1_star/new/{deg}"), 10, || {
            execute(16, &inst.query, &inst.rels).cost.load
        });
        bench_case(&format!("table1_star/baseline/{deg}"), 10, || {
            execute_baseline(16, &inst.query, &inst.rels).cost.load
        });
    }
}

/// T1.tree: the Table-1 tree row on the Figure-3 twig.
fn bench_table1_tree() {
    let q = trees::figure3_query();
    for fanout in [1u64, 2] {
        let inst = trees::layered_instance::<Count>(&q, 6, fanout);
        bench_case(&format!("table1_tree/new/{fanout}"), 10, || {
            execute(16, &inst.query, &inst.rels).cost.load
        });
        bench_case(&format!("table1_tree/baseline/{fanout}"), 10, || {
            execute_baseline(16, &inst.query, &inst.rels).cost.load
        });
    }
}

/// LB: hard-instance runs (Theorem 3 construction).
fn bench_lower_bounds() {
    use mpcjoin::matmul::hard;
    for out_factor in [1u64, 16] {
        let inst = hard::theorem3_instance::<BoolRing>(A, B, C, 256, 256, 256 * out_factor, 16);
        bench_case(&format!("lowerbounds/thm3/{out_factor}"), 10, || {
            let mut cluster = mpcjoin::mpc::Cluster::new(16);
            let (d1, d2) = hard::place(&cluster, &inst);
            let (out, _) = mpcjoin::matmul::matmul(&mut cluster, &d1, &d2);
            out.total_len()
        });
    }
}

/// P.kmv: §2.2 estimation.
fn bench_kmv() {
    use mpcjoin::mpc::{Cluster, DistRelation};
    use mpcjoin::sketch::estimate_out_chain_default;
    let inst = chain::layered::<Count>(3, 64, 4);
    bench_case("kmv_accuracy/estimate", 10, || {
        let mut cluster = Cluster::new(16);
        let dist: Vec<DistRelation<Count>> = inst
            .rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        estimate_out_chain_default(&mut cluster, &dist.iter().collect::<Vec<_>>(), &inst.attrs)
            .total
    });
}

/// Fig: the figure queries end to end.
fn bench_figures() {
    let q2 = trees::figure2_query();
    let inst2 = trees::random_instance::<Count>(&mut rng(1), &q2, 12, 4);
    bench_case("figures/figure2_tree", 10, || {
        execute(16, &inst2.query, &inst2.rels).cost.load
    });
    let q3 = trees::figure3_query();
    let inst3 = trees::layered_instance::<Count>(&q3, 6, 2);
    bench_case("figures/figure3_twig", 10, || {
        execute(16, &inst3.query, &inst3.rels).cost.load
    });
}

fn main() {
    let threads = mpcjoin_bench::init_threads();
    println!("experiments bench — {threads} local thread(s)\n");
    bench_table1_mm();
    bench_table1_mm_unequal();
    bench_table1_line();
    bench_table1_star();
    bench_table1_tree();
    bench_lower_bounds();
    bench_kmv();
    bench_figures();
}

//! Criterion benchmarks: wall-clock of the simulated runs, one group per
//! experiment of the DESIGN.md index. (The paper's cost metric is the
//! *load*, printed by the harness binaries; these benches track the
//! simulator's own performance so regressions in the implementation are
//! visible too.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};
use mpcjoin::{execute, execute_baseline};

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn mm_query() -> TreeQuery {
    TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
}

/// T1.mm: the Table-1 matrix multiplication row (new vs baseline).
fn bench_table1_mm(c: &mut Criterion) {
    let q = mm_query();
    let mut group = c.benchmark_group("table1_mm");
    group.sample_size(10);
    for side in [4u64, 16, 48] {
        let inst = matrix::blocks::<Count>((A, B, C), 384 / (4 * side).max(1), side, 2);
        let rels = [inst.r1, inst.r2];
        group.bench_with_input(BenchmarkId::new("new", side), &rels, |b, rels| {
            b.iter(|| execute(16, &q, rels).cost.load)
        });
        group.bench_with_input(BenchmarkId::new("baseline", side), &rels, |b, rels| {
            b.iter(|| execute_baseline(16, &q, rels).cost.load)
        });
    }
    group.finish();
}

/// T1.mm.uneq: unequal matrix sizes.
fn bench_table1_mm_unequal(c: &mut Criterion) {
    let q = mm_query();
    let mut group = c.benchmark_group("table1_mm_unequal");
    group.sample_size(10);
    for ratio in [1u64, 16] {
        let inst = matrix::uniform::<Count>(
            &mut rng(5 + ratio),
            (A, B, C),
            (256 / ratio).max(2) as usize,
            256,
            ((256 / ratio).max(2), 16, 256),
        );
        let rels = [inst.r1, inst.r2];
        group.bench_with_input(BenchmarkId::new("new", ratio), &rels, |b, rels| {
            b.iter(|| execute(16, &q, rels).cost.load)
        });
    }
    group.finish();
}

/// T1.line: the Table-1 line row.
fn bench_table1_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_line");
    group.sample_size(10);
    for fanout in [1u64, 4] {
        let inst = chain::layered::<Count>(3, 32, fanout);
        group.bench_with_input(BenchmarkId::new("new", fanout), &inst, |b, inst| {
            b.iter(|| execute(16, &inst.query, &inst.rels).cost.load)
        });
        group.bench_with_input(BenchmarkId::new("baseline", fanout), &inst, |b, inst| {
            b.iter(|| execute_baseline(16, &inst.query, &inst.rels).cost.load)
        });
    }
    group.finish();
}

/// T1.star: the Table-1 star row.
fn bench_table1_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_star");
    group.sample_size(10);
    for deg in [1u64, 4] {
        let inst = star::degree_profile::<Count>(3, 16, &[vec![deg], vec![deg], vec![deg]]);
        group.bench_with_input(BenchmarkId::new("new", deg), &inst, |b, inst| {
            b.iter(|| execute(16, &inst.query, &inst.rels).cost.load)
        });
        group.bench_with_input(BenchmarkId::new("baseline", deg), &inst, |b, inst| {
            b.iter(|| execute_baseline(16, &inst.query, &inst.rels).cost.load)
        });
    }
    group.finish();
}

/// T1.tree: the Table-1 tree row on the Figure-3 twig.
fn bench_table1_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_tree");
    group.sample_size(10);
    let q = trees::figure3_query();
    for fanout in [1u64, 2] {
        let inst = trees::layered_instance::<Count>(&q, 6, fanout);
        group.bench_with_input(BenchmarkId::new("new", fanout), &inst, |b, inst| {
            b.iter(|| execute(16, &inst.query, &inst.rels).cost.load)
        });
        group.bench_with_input(BenchmarkId::new("baseline", fanout), &inst, |b, inst| {
            b.iter(|| execute_baseline(16, &inst.query, &inst.rels).cost.load)
        });
    }
    group.finish();
}

/// LB: hard-instance runs (Theorem 3 construction).
fn bench_lower_bounds(c: &mut Criterion) {
    use mpcjoin::matmul::hard;
    let mut group = c.benchmark_group("lowerbounds");
    group.sample_size(10);
    for out_factor in [1u64, 16] {
        let inst = hard::theorem3_instance::<BoolRing>(A, B, C, 256, 256, 256 * out_factor, 16);
        group.bench_with_input(
            BenchmarkId::new("thm3", out_factor),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut cluster = mpcjoin::mpc::Cluster::new(16);
                    let (d1, d2) = hard::place(&cluster, inst);
                    let (out, _) = mpcjoin::matmul::matmul(&mut cluster, &d1, &d2);
                    out.total_len()
                })
            },
        );
    }
    group.finish();
}

/// P.kmv: §2.2 estimation.
fn bench_kmv(c: &mut Criterion) {
    use mpcjoin::mpc::{Cluster, DistRelation};
    use mpcjoin::sketch::estimate_out_chain_default;
    let mut group = c.benchmark_group("kmv_accuracy");
    group.sample_size(10);
    let inst = chain::layered::<Count>(3, 64, 4);
    group.bench_function("estimate", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(16);
            let dist: Vec<DistRelation<Count>> = inst
                .rels
                .iter()
                .map(|r| DistRelation::scatter(&cluster, r))
                .collect();
            estimate_out_chain_default(
                &mut cluster,
                &dist.iter().collect::<Vec<_>>(),
                &inst.attrs,
            )
            .total
        })
    });
    group.finish();
}

/// Fig: the figure queries end to end.
fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let q2 = trees::figure2_query();
    let inst2 = trees::random_instance::<Count>(&mut rng(1), &q2, 12, 4);
    group.bench_function("figure2_tree", |b| {
        b.iter(|| execute(16, &inst2.query, &inst2.rels).cost.load)
    });
    let q3 = trees::figure3_query();
    let inst3 = trees::layered_instance::<Count>(&q3, 6, 2);
    group.bench_function("figure3_twig", |b| {
        b.iter(|| execute(16, &inst3.query, &inst3.rels).cost.load)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_mm,
    bench_table1_mm_unequal,
    bench_table1_line,
    bench_table1_star,
    bench_table1_tree,
    bench_lower_bounds,
    bench_kmv,
    bench_figures,
);
criterion_main!(benches);

//! Wall-clock benchmarks of the §2.1 primitives themselves: simulator
//! throughput for sort / reduce / multi-search / packing and the
//! skew-optimal two-way join, across input sizes. Plain `main` timing
//! loop (no external harness); run with
//! `cargo bench --bench primitives [-- --threads N]`.
//!
//! Besides the printed timings, writes the machine-readable
//! `BENCH_microbench.json` artifact (schema `mpcjoin-bench-v1`): per
//! primitive and input size, the measured MPC load next to its `O(N/p)`-
//! style bound and the best wall-clock at the configured thread count.

use mpcjoin::mpc::primitives::reduce::reduce_by_key;
use mpcjoin::mpc::primitives::scan::parallel_packing;
use mpcjoin::mpc::primitives::search::multi_search;
use mpcjoin::mpc::primitives::sort::sort_by_key;
use mpcjoin::mpc::{join::full_join, Cluster, DistRelation};
use mpcjoin::prelude::*;
use mpcjoin_bench::{bench_case, emit_json, BenchArtifact, BenchRecord};

const P: usize = 16;

/// Build one artifact row from a primitive's measured (load, out) and
/// its linear-per-server bound, mirroring the engine auditor's
/// `measured ≤ slack·bound + p` rule (slack 4, additive p).
fn record(
    experiment: &str,
    workload: String,
    n: u64,
    out: u64,
    load: u64,
    bound: f64,
    wall: std::time::Duration,
) -> BenchRecord {
    BenchRecord {
        experiment: experiment.to_string(),
        workload,
        p: P as u64,
        n,
        out,
        base_load: 0,
        load,
        bound,
        ratio: if bound > 0.0 {
            load as f64 / bound
        } else {
            0.0
        },
        within: (load as f64) <= 4.0 * bound + P as f64,
        threads: mpcjoin::mpc::exec::default_threads() as u64,
        wall_ns: wall.as_nanos() as u64,
    }
}

fn bench_sort(records: &mut Vec<BenchRecord>) {
    for n in [1_000u64, 10_000, 50_000] {
        let items: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
        let run = || {
            let mut cluster = Cluster::new(P);
            let data = cluster.scatter_initial(items.clone());
            let out = sort_by_key(&mut cluster, data, |x| *x).total_len();
            (out, cluster.report().load)
        };
        let (out, load) = run();
        let wall = bench_case(&format!("primitive_sort/{n}"), 10, || run().1);
        records.push(record(
            "primitive_sort",
            format!("n={n}"),
            n,
            out as u64,
            load,
            n as f64 / P as f64,
            wall,
        ));
    }
}

fn bench_reduce(records: &mut Vec<BenchRecord>) {
    for n in [1_000u64, 10_000, 50_000] {
        let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i % (n / 10 + 1), 1)).collect();
        let run = || {
            let mut cluster = Cluster::new(P);
            let data = cluster.scatter_initial(pairs.clone());
            let out = reduce_by_key(&mut cluster, data, |a, b| *a += b).total_len();
            (out, cluster.report().load)
        };
        let (out, load) = run();
        let wall = bench_case(&format!("primitive_reduce_by_key/{n}"), 10, || run().1);
        records.push(record(
            "primitive_reduce_by_key",
            format!("n={n}"),
            n,
            out as u64,
            load,
            n as f64 / P as f64,
            wall,
        ));
    }
}

fn bench_multi_search(records: &mut Vec<BenchRecord>) {
    for n in [1_000u64, 10_000] {
        let run = || {
            let mut cluster = Cluster::new(P);
            let cat =
                cluster.scatter_initial((0..n).step_by(2).map(|k| (k, k)).collect::<Vec<_>>());
            let qs = cluster.scatter_initial((0..n).collect::<Vec<_>>());
            let out = multi_search(&mut cluster, qs, |q| *q, cat).total_len();
            (out, cluster.report().load)
        };
        let (out, load) = run();
        let wall = bench_case(&format!("primitive_multi_search/{n}"), 10, || run().1);
        // Catalog N/2 entries plus N queries move through the cluster.
        records.push(record(
            "primitive_multi_search",
            format!("n={n}"),
            n,
            out as u64,
            load,
            (n + n / 2) as f64 / P as f64,
            wall,
        ));
    }
}

fn bench_packing(records: &mut Vec<BenchRecord>) {
    for n in [1_000u64, 20_000] {
        let weights: Vec<u64> = (0..n).map(|i| 1 + i % 10).collect();
        let run = || {
            let mut cluster = Cluster::new(P);
            let data = cluster.scatter_initial(weights.clone());
            let out = parallel_packing(&mut cluster, data, |w| *w, 100).groups;
            (out, cluster.report().load)
        };
        let (out, load) = run();
        let wall = bench_case(&format!("primitive_parallel_packing/{n}"), 10, || run().1);
        records.push(record(
            "primitive_parallel_packing",
            format!("n={n}"),
            n,
            out,
            load,
            n as f64 / P as f64,
            wall,
        ));
    }
}

fn bench_two_way_join(records: &mut Vec<BenchRecord>) {
    for skew in ["uniform", "heavy"] {
        let n = 5_000u64;
        let r1: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 500))),
            _ => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 5))),
        };
        let r2: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 500, i))),
            _ => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 5, i))),
        };
        let run = || {
            let mut cluster = Cluster::new(P);
            let d1 = DistRelation::scatter(&cluster, &r1);
            let d2 = DistRelation::scatter(&cluster, &r2);
            let out = full_join(&mut cluster, &d1, &d2).total_len();
            (out, cluster.report().load)
        };
        let (out, load) = run();
        let wall = bench_case(&format!("primitive_two_way_join/{skew}"), 10, || run().1);
        // The skew-optimal join moves O((N1 + N2 + OUT)/p).
        records.push(record(
            "primitive_two_way_join",
            format!("skew={skew}"),
            2 * n,
            out as u64,
            load,
            (2 * n + out as u64) as f64 / P as f64,
            wall,
        ));
    }
}

fn main() {
    let threads = mpcjoin_bench::init_threads();
    println!("primitives bench — {threads} local thread(s)\n");
    let mut records = Vec::new();
    bench_sort(&mut records);
    bench_reduce(&mut records);
    bench_multi_search(&mut records);
    bench_packing(&mut records);
    bench_two_way_join(&mut records);
    emit_json(&BenchArtifact::new(records), "BENCH_microbench.json");
}

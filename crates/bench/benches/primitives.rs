//! Wall-clock benchmarks of the §2.1 primitives themselves: simulator
//! throughput for sort / reduce / multi-search / packing and the
//! skew-optimal two-way join, across input sizes. Plain `main` timing
//! loop (no external harness); run with
//! `cargo bench --bench primitives [-- --threads N]`.

use mpcjoin::mpc::primitives::reduce::reduce_by_key;
use mpcjoin::mpc::primitives::scan::parallel_packing;
use mpcjoin::mpc::primitives::search::multi_search;
use mpcjoin::mpc::primitives::sort::sort_by_key;
use mpcjoin::mpc::{join::full_join, Cluster, DistRelation};
use mpcjoin::prelude::*;
use mpcjoin_bench::bench_case;

fn bench_sort() {
    for n in [1_000u64, 10_000, 50_000] {
        let items: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
        bench_case(&format!("primitive_sort/{n}"), 10, || {
            let mut cluster = Cluster::new(16);
            let data = cluster.scatter_initial(items.clone());
            sort_by_key(&mut cluster, data, |x| *x).total_len()
        });
    }
}

fn bench_reduce() {
    for n in [1_000u64, 10_000, 50_000] {
        let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i % (n / 10 + 1), 1)).collect();
        bench_case(&format!("primitive_reduce_by_key/{n}"), 10, || {
            let mut cluster = Cluster::new(16);
            let data = cluster.scatter_initial(pairs.clone());
            reduce_by_key(&mut cluster, data, |a, b| *a += b).total_len()
        });
    }
}

fn bench_multi_search() {
    for n in [1_000u64, 10_000] {
        bench_case(&format!("primitive_multi_search/{n}"), 10, || {
            let mut cluster = Cluster::new(16);
            let cat =
                cluster.scatter_initial((0..n).step_by(2).map(|k| (k, k)).collect::<Vec<_>>());
            let qs = cluster.scatter_initial((0..n).collect::<Vec<_>>());
            multi_search(&mut cluster, qs, |q| *q, cat).total_len()
        });
    }
}

fn bench_packing() {
    for n in [1_000u64, 20_000] {
        let weights: Vec<u64> = (0..n).map(|i| 1 + i % 10).collect();
        bench_case(&format!("primitive_parallel_packing/{n}"), 10, || {
            let mut cluster = Cluster::new(16);
            let data = cluster.scatter_initial(weights.clone());
            parallel_packing(&mut cluster, data, |w| *w, 100).groups
        });
    }
}

fn bench_two_way_join() {
    for skew in ["uniform", "heavy"] {
        let n = 5_000u64;
        let r1: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 500))),
            _ => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 5))),
        };
        let r2: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 500, i))),
            _ => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 5, i))),
        };
        bench_case(&format!("primitive_two_way_join/{skew}"), 10, || {
            let mut cluster = Cluster::new(16);
            let d1 = DistRelation::scatter(&cluster, &r1);
            let d2 = DistRelation::scatter(&cluster, &r2);
            full_join(&mut cluster, &d1, &d2).total_len()
        });
    }
}

fn main() {
    let threads = mpcjoin_bench::init_threads();
    println!("primitives bench — {threads} local thread(s)\n");
    bench_sort();
    bench_reduce();
    bench_multi_search();
    bench_packing();
    bench_two_way_join();
}

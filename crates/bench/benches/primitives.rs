//! Criterion benchmarks of the §2.1 primitives themselves: simulator
//! throughput for sort / reduce / multi-search / packing and the
//! skew-optimal two-way join, across input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcjoin::mpc::primitives::reduce::reduce_by_key;
use mpcjoin::mpc::primitives::scan::parallel_packing;
use mpcjoin::mpc::primitives::search::multi_search;
use mpcjoin::mpc::primitives::sort::sort_by_key;
use mpcjoin::mpc::{join::full_join, Cluster, DistRelation};
use mpcjoin::prelude::*;

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_sort");
    for n in [1_000u64, 10_000, 50_000] {
        group.throughput(Throughput::Elements(n));
        let items: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| {
                let mut cluster = Cluster::new(16);
                let data = cluster.scatter_initial(items.clone());
                sort_by_key(&mut cluster, data, |x| *x).total_len()
            })
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_reduce_by_key");
    for n in [1_000u64, 10_000, 50_000] {
        group.throughput(Throughput::Elements(n));
        let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i % (n / 10 + 1), 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pairs, |b, pairs| {
            b.iter(|| {
                let mut cluster = Cluster::new(16);
                let data = cluster.scatter_initial(pairs.clone());
                reduce_by_key(&mut cluster, data, |a, b| *a += b).total_len()
            })
        });
    }
    group.finish();
}

fn bench_multi_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_multi_search");
    for n in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(2 * n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cluster = Cluster::new(16);
                let cat = cluster
                    .scatter_initial((0..n).step_by(2).map(|k| (k, k)).collect::<Vec<_>>());
                let qs = cluster.scatter_initial((0..n).collect::<Vec<_>>());
                multi_search(&mut cluster, qs, |q| *q, cat).total_len()
            })
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_parallel_packing");
    for n in [1_000u64, 20_000] {
        group.throughput(Throughput::Elements(n));
        let weights: Vec<u64> = (0..n).map(|i| 1 + i % 10).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &weights, |b, weights| {
            b.iter(|| {
                let mut cluster = Cluster::new(16);
                let data = cluster.scatter_initial(weights.clone());
                parallel_packing(&mut cluster, data, |w| *w, 100).groups
            })
        });
    }
    group.finish();
}

fn bench_two_way_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_two_way_join");
    group.sample_size(10);
    for skew in ["uniform", "heavy"] {
        let n = 5_000u64;
        let r1: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 500))),
            _ => Relation::binary_ones(Attr(0), Attr(1), (0..n).map(|i| (i, i % 5))),
        };
        let r2: Relation<Count> = match skew {
            "uniform" => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 500, i))),
            _ => Relation::binary_ones(Attr(1), Attr(2), (0..n).map(|i| (i % 5, i))),
        };
        group.bench_with_input(BenchmarkId::from_parameter(skew), &(r1, r2), |b, (r1, r2)| {
            b.iter(|| {
                let mut cluster = Cluster::new(16);
                let d1 = DistRelation::scatter(&cluster, r1);
                let d2 = DistRelation::scatter(&cluster, r2);
                full_join(&mut cluster, &d1, &d2).total_len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_reduce,
    bench_multi_search,
    bench_packing,
    bench_two_way_join,
);
criterion_main!(benches);

//! The experiments behind every table and figure (DESIGN.md §4 index).
//!
//! The Table-1 experiments return both a printable [`Table`] and the
//! machine-readable [`BenchRecord`]s behind its rows, so the harness can
//! write `BENCH_table1.json` for the `bench_check` regression differ.

use crate::artifact::BenchRecord;
use crate::table::{Cell, Table};
use mpcjoin::matmul::{hard, theory};
use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};

/// The printed ratio/audit pair for a run: `measured/bound` under the
/// engine's own [`mpcjoin::BoundAuditor`], and its verdict.
fn audit_cells<S: Semiring>(r: &ExecutionResult<S>) -> [Cell; 2] {
    [
        Cell::Float(if r.audit.ratio.is_finite() {
            r.audit.ratio
        } else {
            0.0
        }),
        Cell::Text(if r.audit.within { "ok" } else { "VIOLATION" }.into()),
    ]
}

/// Run the planner's algorithm end to end. The workloads here are
/// constructed to match their queries, so engine errors are bugs.
fn execute<S: Semiring>(p: usize, q: &TreeQuery, rels: &[Relation<S>]) -> ExecutionResult<S> {
    QueryEngine::new(p)
        .run(q, rels)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Run the distributed Yannakakis baseline end to end.
fn execute_baseline<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    rels: &[Relation<S>],
) -> ExecutionResult<S> {
    QueryEngine::new(p)
        .plan(PlanChoice::Baseline)
        .run(q, rels)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// One traced run of the Table-1 line query (the funnel family), for the
/// round-level trace artifact the harness writes next to the CSVs.
pub fn table1_line_trace(p: usize, scale: u64) -> Trace {
    let inst = chain::funnel::<Count>(8 * scale, 8, 4);
    let r = QueryEngine::new(p)
        .trace(true)
        .run(&inst.query, &inst.rels)
        .unwrap_or_else(|e| panic!("{e}"));
    r.trace.expect("tracing was enabled")
}

const A: Attr = Attr(0);
const B: Attr = Attr(1);
const C: Attr = Attr(2);

fn mm_query() -> TreeQuery {
    TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
}

/// **T1.mm** — Table 1, matrix multiplication row: measured load of the
/// baseline vs. the Theorem-1 algorithm while OUT sweeps at (roughly)
/// fixed N, for each p. `scale` shrinks the instances for smoke runs.
pub fn table1_mm(ps: &[usize], scale: u64) -> (Table, Vec<BenchRecord>) {
    let q = mm_query();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &p in ps {
        // Blocks: k blocks of side s with b-thickness 2 → N = 2·k·s·2,
        // OUT = k·s². Sweep s at N ≈ const by adjusting k.
        for side in [2u64, 8, 32, 96] {
            // N scales with p so every configuration sits inside the
            // model's N ≥ p^{1+ϵ} regime.
            let k = (96 * p as u64 * scale / (4 * side)).max(1);
            let inst = matrix::blocks::<Count>((A, B, C), k, side, 2);
            let n = inst.r1.len() as u64;
            let rels = [inst.r1, inst.r2];
            let new = execute(p, &q, &rels);
            let base = execute_baseline(p, &q, &rels);
            assert!(new.output.semantically_eq(&base.output));
            let [ratio, audit] = audit_cells(&new);
            rows.push(vec![
                Cell::Int(p as u64),
                Cell::Int(2 * n),
                Cell::Int(inst.out),
                Cell::Int(base.cost.load),
                Cell::Int(new.cost.load),
                Cell::Text(format!("{:?}", new.plan)),
                Cell::Float(theory::yannakakis_mm_bound(2 * n, inst.out, p as u64)),
                Cell::Float(theory::new_mm_bound(n, n, inst.out, p as u64)),
                Cell::Float(base.cost.load as f64 / new.cost.load.max(1) as f64),
                ratio,
                audit,
            ]);
            records.push(BenchRecord::from_run(
                "table1_mm",
                &format!("side={side}"),
                p,
                2 * n,
                inst.out,
                &new,
                base.cost.load,
            ));
        }
    }
    let table = Table {
        title: "Table 1 / matrix multiplication: load vs OUT (blocks workload)".into(),
        header: [
            "p",
            "N",
            "OUT",
            "base load",
            "new load",
            "plan",
            "base bound",
            "new bound",
            "speedup",
            "ratio",
            "audit",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, records)
}

/// **T1.mm.uneq** — Theorem 1 with unequal matrix sizes.
pub fn table1_mm_unequal(p: usize, scale: u64) -> (Table, Vec<BenchRecord>) {
    let q = mm_query();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ratio in [1u64, 4, 16, 64] {
        let n2 = 256 * scale;
        let n1 = (n2 / ratio).max(2);
        let inst = matrix::uniform::<Count>(
            &mut rng(2024 + ratio),
            (A, B, C),
            n1 as usize,
            n2 as usize,
            (n1, (n1 / 4).max(4), n2),
        );
        let rels = [inst.r1, inst.r2];
        let new = execute(p, &q, &rels);
        let base = execute_baseline(p, &q, &rels);
        assert!(new.output.semantically_eq(&base.output));
        let [aratio, audit] = audit_cells(&new);
        rows.push(vec![
            Cell::Int(n1),
            Cell::Int(n2),
            Cell::Int(inst.out),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
            Cell::Text(format!("{:?}", new.plan)),
            Cell::Float(theory::new_mm_bound(n1, n2, inst.out, p as u64)),
            aratio,
            audit,
        ]);
        records.push(BenchRecord::from_run(
            "table1_mm_unequal",
            &format!("ratio={ratio}"),
            p,
            n1 + n2,
            inst.out,
            &new,
            base.cost.load,
        ));
    }
    let table = Table {
        title: format!("Theorem 1 / unequal sizes (p = {p})"),
        header: [
            "N1",
            "N2",
            "OUT",
            "base load",
            "new load",
            "plan",
            "new bound",
            "ratio",
            "audit",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, records)
}

/// **T1.line** — Table 1, line row: 3-hop chains, fan-out sweep.
pub fn table1_line(p: usize, scale: u64) -> (Table, Vec<BenchRecord>) {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    // The funnel family: per group, k² join witnesses collapse onto m
    // outputs; sweeping k grows the baseline's intermediate join while
    // OUT stays fixed.
    for k in [2u64, 4, 8, 16] {
        let inst = chain::funnel::<Count>(8 * scale, k, 4);
        let n = inst.rels.iter().map(|r| r.len()).max().unwrap_or(0) as u64;
        let new = execute(p, &inst.query, &inst.rels);
        let base = execute_baseline(p, &inst.query, &inst.rels);
        assert!(new.output.semantically_eq(&base.output));
        let [ratio, audit] = audit_cells(&new);
        rows.push(vec![
            Cell::Int(n),
            Cell::Int(inst.out),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
            Cell::Text(format!("{:?}", new.plan)),
            Cell::Float(theory::yannakakis_line_bound(n, inst.out, p as u64)),
            Cell::Float(theory::new_star_line_bound(n, inst.out, p as u64)),
            Cell::Float(base.cost.load as f64 / new.cost.load.max(1) as f64),
            ratio,
            audit,
        ]);
        records.push(BenchRecord::from_run(
            "table1_line",
            &format!("k={k}"),
            p,
            n,
            inst.out,
            &new,
            base.cost.load,
        ));
    }
    let table = Table {
        title: format!("Table 1 / line queries (3-hop funnel, p = {p})"),
        header: [
            "N/rel",
            "OUT",
            "base load",
            "new load",
            "plan",
            "base bound",
            "new bound",
            "speedup",
            "ratio",
            "audit",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, records)
}

/// **T1.star** — Table 1, star row: 3-arm stars, degree sweep.
pub fn table1_star(p: usize, scale: u64) -> (Table, Vec<BenchRecord>) {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    // The overlapping family: `centers` duplicate witnesses per output;
    // OUT = d³ stays fixed while the baseline's full join grows.
    for centers in [1u64, 4, 16, 64] {
        let inst = star::overlapping::<Count>(3, centers * scale, 8);
        let n = inst.rels[0].len() as u64;
        let new = execute(p, &inst.query, &inst.rels);
        let base = execute_baseline(p, &inst.query, &inst.rels);
        assert!(new.output.semantically_eq(&base.output));
        let [ratio, audit] = audit_cells(&new);
        rows.push(vec![
            Cell::Int(n),
            Cell::Int(inst.out),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
            Cell::Text(format!("{:?}", new.plan)),
            Cell::Float(theory::yannakakis_star_bound(n, inst.out, p as u64, 3)),
            Cell::Float(theory::new_star_line_bound(n, inst.out, p as u64)),
            Cell::Float(base.cost.load as f64 / new.cost.load.max(1) as f64),
            ratio,
            audit,
        ]);
        records.push(BenchRecord::from_run(
            "table1_star",
            &format!("centers={centers}"),
            p,
            n,
            inst.out,
            &new,
            base.cost.load,
        ));
    }
    let table = Table {
        title: format!("Table 1 / star queries (3 arms, overlapping witnesses, p = {p})"),
        header: [
            "N/rel",
            "OUT",
            "base load",
            "new load",
            "plan",
            "base bound",
            "new bound",
            "speedup",
            "ratio",
            "audit",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, records)
}

/// **T1.tree** — Table 1, tree row: the Figure-3 twig, fan-out sweep.
pub fn table1_tree(p: usize, scale: u64) -> (Table, Vec<BenchRecord>) {
    let q = trees::figure3_query();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for centers in [2u64, 4, 8] {
        let inst = trees::overlapping_instance::<Count>(&q, centers * scale, 3);
        let n = inst.rels.iter().map(|r| r.len()).max().unwrap_or(0) as u64;
        let new = execute(p, &inst.query, &inst.rels);
        let base = execute_baseline(p, &inst.query, &inst.rels);
        assert!(new.output.semantically_eq(&base.output));
        let [ratio, audit] = audit_cells(&new);
        rows.push(vec![
            Cell::Int(n),
            Cell::Int(inst.out),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
            Cell::Text(format!("{:?}", new.plan)),
            Cell::Float(theory::yannakakis_line_bound(n, inst.out, p as u64)),
            Cell::Float(theory::new_tree_bound(n, inst.out, p as u64)),
            ratio,
            audit,
        ]);
        records.push(BenchRecord::from_run(
            "table1_tree",
            &format!("centers={centers}"),
            p,
            n,
            inst.out,
            &new,
            base.cost.load,
        ));
    }
    let table = Table {
        title: format!("Table 1 / tree queries (Figure-3 twig, overlapping witnesses, p = {p})"),
        header: [
            "N/rel",
            "OUT",
            "base load",
            "new load",
            "plan",
            "base bound",
            "new bound",
            "ratio",
            "audit",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (table, records)
}

/// **LB.thm2 / LB.thm3** — the lower-bound instances: measured load of
/// Theorem 1's algorithm sandwiched between Ω and O.
pub fn lower_bounds(p: usize, scale: u64) -> Table {
    let mut rows = Vec::new();
    // Instance sizes scale with p to stay inside the N ≥ p^{1+ϵ} regime.
    let unit = p as u64 * scale;
    // Theorem 2 family.
    for n2 in [32 * unit, 128 * unit] {
        let inst = hard::theorem2_instance::<BoolRing>(A, B, C, 16, n2, p);
        let mut cluster = mpcjoin::mpc::Cluster::new(p);
        let (d1, d2) = hard::place(&cluster, &inst);
        let (out, _) = mpcjoin::matmul::matmul(&mut cluster, &d1, &d2);
        assert_eq!(out.gather().coalesce().len() as u64, inst.out);
        rows.push(vec![
            Cell::Text("Thm 2".into()),
            Cell::Int(inst.r1.len() as u64),
            Cell::Int(inst.r2.len() as u64),
            Cell::Int(inst.out),
            Cell::Float(hard::theorem2_bound(
                inst.r1.len() as u64,
                inst.r2.len() as u64,
                p as u64,
            )),
            Cell::Int(cluster.report().load),
            Cell::Float(theory::new_mm_bound(
                inst.r1.len() as u64,
                inst.r2.len() as u64,
                inst.out,
                p as u64,
            )),
        ]);
    }
    // Theorem 3 family: sweep OUT between N and N².
    let n = 24 * unit;
    for out in [n, n * 8, n * 64] {
        let inst = hard::theorem3_instance::<BoolRing>(A, B, C, n, n, out, p);
        let mut cluster = mpcjoin::mpc::Cluster::new(p);
        let (d1, d2) = hard::place(&cluster, &inst);
        let (result, _) = mpcjoin::matmul::matmul(&mut cluster, &d1, &d2);
        assert_eq!(result.gather().coalesce().len() as u64, inst.out);
        let (n1, n2) = (inst.r1.len() as u64, inst.r2.len() as u64);
        rows.push(vec![
            Cell::Text("Thm 3".into()),
            Cell::Int(n1),
            Cell::Int(n2),
            Cell::Int(inst.out),
            Cell::Float(theory::mm_lower_bound(n1, n2, inst.out, p as u64)),
            Cell::Int(cluster.report().load),
            Cell::Float(theory::new_mm_bound(n1, n2, inst.out, p as u64)),
        ]);
    }
    Table {
        title: format!("Lower-bound instances (p = {p}): Ω ≤ measured ≤ O"),
        header: [
            "instance", "N1", "N2", "OUT", "Ω bound", "measured", "O bound",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// **P.rounds** — constant-round verification across plans and sizes.
pub fn rounds_constancy(p: usize) -> Table {
    let mut rows = Vec::new();
    let q = mm_query();
    for scale in [1u64, 4, 16] {
        let inst = matrix::blocks::<Count>((A, B, C), 4 * scale, 8, 2);
        let r = execute(p, &q, &[inst.r1, inst.r2]);
        rows.push(vec![
            Cell::Text("matmul".into()),
            Cell::Int(scale),
            Cell::Int(r.cost.rounds),
            Cell::Int(r.cost.load),
        ]);
    }
    for scale in [1u64, 4, 16] {
        let inst = chain::layered::<Count>(3, 16 * scale, 2);
        let r = execute(p, &inst.query, &inst.rels);
        rows.push(vec![
            Cell::Text("line-3".into()),
            Cell::Int(scale),
            Cell::Int(r.cost.rounds),
            Cell::Int(r.cost.load),
        ]);
    }
    for scale in [1u64, 4, 16] {
        let inst = star::degree_profile::<Count>(3, 8 * scale, &[vec![2], vec![3], vec![4]]);
        let r = execute(p, &inst.query, &inst.rels);
        rows.push(vec![
            Cell::Text("star-3".into()),
            Cell::Int(scale),
            Cell::Int(r.cost.rounds),
            Cell::Int(r.cost.load),
        ]);
    }
    for scale in [1u64, 2, 4] {
        let q = trees::figure3_query();
        let inst = trees::layered_instance::<Count>(&q, 4 * scale, 2);
        let r = execute(p, &inst.query, &inst.rels);
        rows.push(vec![
            Cell::Text("tree-fig3".into()),
            Cell::Int(scale),
            Cell::Int(r.cost.rounds),
            Cell::Int(r.cost.load),
        ]);
    }
    Table {
        title: format!("Rounds are O(1): round counts across input scales (p = {p})"),
        header: ["plan", "scale", "rounds", "load"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// **P.kmv** — §2.2 estimator accuracy on line queries.
pub fn kmv_accuracy(p: usize) -> Table {
    use mpcjoin::mpc::{Cluster, DistRelation};
    use mpcjoin::sketch::estimate_out_chain_default;
    let mut rows = Vec::new();
    for (dom, fanout) in [(64u64, 1u64), (64, 4), (128, 8), (256, 16)] {
        let inst = chain::layered::<Count>(3, dom, fanout);
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<Count>> = inst
            .rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let est =
            estimate_out_chain_default(&mut cluster, &dist.iter().collect::<Vec<_>>(), &inst.attrs);
        rows.push(vec![
            Cell::Int(inst.rels[0].len() as u64),
            Cell::Int(inst.out),
            Cell::Int(est.total),
            Cell::Float(est.total as f64 / inst.out.max(1) as f64),
            Cell::Int(cluster.report().load),
        ]);
    }
    Table {
        title: format!("§2.2 KMV OUT-estimation accuracy (p = {p})"),
        header: ["N/rel", "exact OUT", "estimate", "ratio", "est. load"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// **Ablation** — Theorem 1's `min{·,·}`: force the §3.1 worst-case
/// algorithm and the §3.2 output-sensitive algorithm on the *same*
/// instances across the OUT sweep and show the crossover the dispatcher
/// exploits.
pub fn ablation_min_terms(p: usize, scale: u64) -> Table {
    use mpcjoin::matmul::{estimate_matmul_out, output_sensitive_matmul, wco_matmul};
    use mpcjoin::mpc::{Cluster, DistRelation};
    use mpcjoin::query::{Edge as QEdge, TreeQuery as TQ};
    use mpcjoin::yannakakis::remove_dangling;

    let q = TQ::new(vec![QEdge::binary(A, B), QEdge::binary(B, C)], [A, C]);
    let mut rows = Vec::new();
    for side in [2u64, 8, 32, 96] {
        let k = (1536 * scale / (4 * side)).max(1);
        let inst = matrix::blocks::<Count>((A, B, C), k, side, 2);
        let n = inst.r1.len() as u64;

        let run = |use_wco: bool| -> u64 {
            let mut cluster = Cluster::new(p);
            let d1 = DistRelation::scatter(&cluster, &inst.r1);
            let d2 = DistRelation::scatter(&cluster, &inst.r2);
            let reduced = remove_dangling(&mut cluster, &q, &[d1, d2]);
            let out = if use_wco {
                wco_matmul(&mut cluster, &reduced[0], &reduced[1])
            } else {
                let est = estimate_matmul_out(&mut cluster, &reduced[0], &reduced[1]);
                output_sensitive_matmul(&mut cluster, &reduced[0], &reduced[1], est)
            };
            assert_eq!(out.gather().coalesce().len() as u64, inst.out);
            cluster.report().load
        };

        let wco_load = run(true);
        let os_load = run(false);
        rows.push(vec![
            Cell::Int(2 * n),
            Cell::Int(inst.out),
            Cell::Int(wco_load),
            Cell::Int(os_load),
            Cell::Text(
                if wco_load <= os_load {
                    "§3.1"
                } else {
                    "§3.2"
                }
                .into(),
            ),
            Cell::Float(((n * n) as f64 / p as f64).sqrt()),
            Cell::Float(
                ((n as f64) * (n as f64) * (inst.out as f64)).cbrt() / (p as f64).powf(2.0 / 3.0),
            ),
        ]);
    }
    Table {
        title: format!("Ablation: Theorem 1's min-term crossover (p = {p})"),
        header: [
            "N",
            "OUT",
            "§3.1 load",
            "§3.2 load",
            "winner",
            "√(N1N2/p)",
            "(N1N2·OUT)^⅓/p^⅔",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// **Scaling** — load vs. `p` at a fixed instance: the output-sensitive
/// regime must scale like `p^{-2/3}` and the worst-case regime like
/// `p^{-1/2}`-dominated terms; the baseline scales like `p^{-1}` from a
/// much higher intercept.
pub fn p_scaling(scale: u64) -> Table {
    let q = mm_query();
    // N = 384·scale per relation; keep p ≤ √N so the N ≥ p^{1+ϵ} regime
    // (and the PSRS sampling term) stay satisfied.
    let inst = matrix::blocks::<Count>((A, B, C), 96 * scale, 16, 2);
    let rels = [inst.r1.clone(), inst.r2.clone()];
    let n = inst.r1.len() as u64;
    let mut rows = Vec::new();
    for p in [4usize, 16, 64] {
        let new = execute(p, &q, &rels);
        let base = execute_baseline(p, &q, &rels);
        rows.push(vec![
            Cell::Int(p as u64),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
            Cell::Float(theory::new_mm_bound(n, n, inst.out, p as u64)),
        ]);
    }
    Table {
        title: format!("Load vs p at fixed N = {} and OUT = {}", 2 * n, inst.out),
        header: ["p", "base load", "new load", "new bound"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// **Fig.1–Fig.4** — the figure queries: decomposition facts plus an
/// end-to-end run of each.
pub fn figures(p: usize) -> Vec<Table> {
    use mpcjoin::query::{classify, decompose_twigs, plan_reduction, skeleton};
    let mut tables = Vec::new();

    // Figure 2: the tree splits into the expected twigs.
    let q2 = trees::figure2_query();
    let plan = plan_reduction(&q2);
    let twigs = decompose_twigs(&plan.reduced);
    let mut rows = Vec::new();
    for (i, t) in twigs.iter().enumerate() {
        rows.push(vec![
            Cell::Int(i as u64 + 1),
            Cell::Text(shape_name(&classify(&t.query)).into()),
            Cell::Int(t.query.edges().len() as u64),
            Cell::Int(t.query.output().len() as u64),
        ]);
    }
    tables.push(Table {
        title: "Figure 2: twig decomposition of the example tree".into(),
        header: ["twig", "shape", "relations", "outputs"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    });

    // Figure 3: the skeleton of the general twig.
    let q3 = trees::figure3_query();
    let sk = skeleton(&q3).expect("figure-3 twig has a skeleton");
    tables.push(Table {
        title: "Figure 3: skeleton of the general twig".into(),
        header: ["quantity", "value"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: vec![
            vec![
                Cell::Text("V* (attrs in >2 relations)".into()),
                Cell::Text(format!("{:?}", sk.vstar)),
            ],
            vec![
                Cell::Text("S (leaves of T_S)".into()),
                Cell::Text(format!("{:?}", sk.s)),
            ],
            vec![
                Cell::Text("contracted star-like parts".into()),
                Cell::Text(format!(
                    "{:?}",
                    sk.contracted.iter().map(|c| c.b).collect::<Vec<_>>()
                )),
            ],
            vec![
                Cell::Text("skeleton edges".into()),
                Cell::Int(sk.skeleton_edges.len() as u64),
            ],
        ],
    });

    // Figures 1 & 4: end-to-end runs of the star-like query and the
    // general twig (exercising the subquery reductions they illustrate).
    let mut rows = Vec::new();
    for (name, q) in [
        ("Fig 1 star-like", {
            // Five arms around B, one of length 2 (the paper's T2).
            let b = Attr(40);
            TreeQuery::new(
                vec![
                    Edge::binary(b, Attr(0)),
                    Edge::binary(b, Attr(41)),
                    Edge::binary(Attr(41), Attr(1)),
                    Edge::binary(b, Attr(2)),
                    Edge::binary(b, Attr(3)),
                    Edge::binary(b, Attr(4)),
                ],
                [Attr(0), Attr(1), Attr(2), Attr(3), Attr(4)],
            )
        }),
        ("Fig 3/4 twig", q3.clone()),
    ] {
        let shape = shape_name(&classify(&q));
        // The overlapping-witness workload (Table 1's separation family).
        let inst = trees::overlapping_instance::<Count>(&q, 12, 4);
        let new = execute(p, &q, &inst.rels);
        let base = execute_baseline(p, &q, &inst.rels);
        assert!(new.output.semantically_eq(&base.output));
        rows.push(vec![
            Cell::Text(name.into()),
            Cell::Text(shape.into()),
            Cell::Int(inst.out),
            Cell::Int(base.cost.load),
            Cell::Int(new.cost.load),
        ]);
    }
    tables.push(Table {
        title: format!("Figures 1 & 4: reductions executed end to end (p = {p})"),
        header: ["query", "shape", "OUT", "base load", "new load"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    });

    tables
}

/// Short human name of a [`mpcjoin::query::Shape`].
fn shape_name(shape: &mpcjoin::query::Shape) -> &'static str {
    use mpcjoin::query::Shape;
    match shape {
        Shape::FreeConnex => "free-connex",
        Shape::MatMul { .. } => "matrix multiplication",
        Shape::Line { .. } => "line",
        Shape::Star { .. } => "star",
        Shape::StarLike(_) => "star-like",
        Shape::Twig => "general twig",
        Shape::General => "general tree",
    }
}

//! Machine-readable bench artifacts and the regression differ behind
//! `bench_check`.
//!
//! Every Table-1 experiment row becomes a [`BenchRecord`]; a harness run
//! collects them into a [`BenchArtifact`] and writes it as JSON (schema
//! [`SCHEMA`]). CI commits one artifact as the baseline
//! (`results/BENCH_baseline_table1.json`), regenerates a fresh one per
//! run, and [`diff`]s the two: measured *loads* are deterministic on the
//! simulator, so any load above the baseline (beyond a small tolerance
//! for intentional re-tuning) is a real algorithmic regression, and any
//! row whose bound audit newly flips to a violation is a broken bound.
//! Wall-clock fields are carried for the record but never diffed — they
//! vary with the machine.

use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;

/// Schema tag of the artifact documents.
pub const SCHEMA: &str = "mpcjoin-bench-v1";

/// One experiment configuration's measured outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Experiment family, e.g. `"table1_mm"`.
    pub experiment: String,
    /// Workload point within the family, e.g. `"side=8"`.
    pub workload: String,
    /// Servers.
    pub p: u64,
    /// Input size N under the experiment's convention (total size for
    /// matrix multiplication, max relation size for the join families).
    pub n: u64,
    /// Output size.
    pub out: u64,
    /// Measured load of the distributed Yannakakis baseline (0 when the
    /// experiment has no baseline arm).
    pub base_load: u64,
    /// Measured load of the paper's algorithm.
    pub load: u64,
    /// The closed-form bound audited against (units, constants stripped).
    pub bound: f64,
    /// `load / bound` (0 when the bound is 0).
    pub ratio: f64,
    /// The audit verdict: `load ≤ slack·bound + p`.
    pub within: bool,
    /// Local-execution threads the run used (informational).
    pub threads: u64,
    /// Wall-clock of the new-algorithm run in nanoseconds
    /// (informational; never diffed).
    pub wall_ns: u64,
}

impl BenchRecord {
    /// Build a record from a finished engine run (plus its baseline's
    /// load, when the experiment ran one).
    pub fn from_run<S: Semiring>(
        experiment: &str,
        workload: &str,
        p: usize,
        n: u64,
        out: u64,
        result: &ExecutionResult<S>,
        base_load: u64,
    ) -> BenchRecord {
        let a = &result.audit;
        BenchRecord {
            experiment: experiment.to_string(),
            workload: workload.to_string(),
            p: p as u64,
            n,
            out,
            base_load,
            load: result.cost.load,
            bound: a.bound,
            ratio: if a.ratio.is_finite() { a.ratio } else { 0.0 },
            within: a.within,
            threads: mpcjoin::mpc::exec::default_threads() as u64,
            wall_ns: result.cost.elapsed.as_nanos() as u64,
        }
    }

    /// The identity under which [`diff`] matches baseline and fresh rows.
    pub fn key(&self) -> (String, String, u64, u64, u64) {
        (
            self.experiment.clone(),
            self.workload.clone(),
            self.p,
            self.n,
            self.out,
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("p".into(), Json::Num(self.p as f64)),
            ("n".into(), Json::Num(self.n as f64)),
            ("out".into(), Json::Num(self.out as f64)),
            ("base_load".into(), Json::Num(self.base_load as f64)),
            ("load".into(), Json::Num(self.load as f64)),
            ("bound".into(), Json::Num(self.bound)),
            ("ratio".into(), Json::Num(self.ratio)),
            ("within".into(), Json::Bool(self.within)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("wall_ns".into(), Json::Num(self.wall_ns as f64)),
        ])
    }

    fn from_json(j: &Json) -> Result<BenchRecord, String> {
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string `{k}`"))
        };
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing integer `{k}`"))
        };
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record missing number `{k}`"))
        };
        Ok(BenchRecord {
            experiment: s("experiment")?,
            workload: s("workload")?,
            p: u("p")?,
            n: u("n")?,
            out: u("out")?,
            base_load: u("base_load")?,
            load: u("load")?,
            bound: f("bound")?,
            ratio: f("ratio")?,
            within: match j.get("within") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("record missing boolean `within`".into()),
            },
            threads: u("threads")?,
            wall_ns: u("wall_ns")?,
        })
    }
}

/// A harness run's full set of records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchArtifact {
    pub records: Vec<BenchRecord>,
}

impl BenchArtifact {
    pub fn new(records: Vec<BenchRecord>) -> BenchArtifact {
        BenchArtifact { records }
    }

    /// Serialize as a pretty-enough compact JSON document.
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
        .to_string_compact()
        .expect("bench records contain only finite numbers")
    }

    /// Parse a document produced by [`BenchArtifact::to_json_string`].
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unknown schema `{other}`")),
            None => return Err("missing `schema`".into()),
        }
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing `records` array")?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<_, _>>()?;
        Ok(BenchArtifact { records })
    }
}

/// Compare a fresh artifact against the committed baseline.
///
/// Fails (returning every violation) when a fresh row's load exceeds its
/// baseline row's load by more than `load_tol` (fractional, e.g. `0.05`),
/// when a row's bound audit flips from within-bound to violating, or
/// when a baseline row has no fresh counterpart (coverage loss). Fresh
/// rows with no baseline counterpart are reported in the success summary
/// — new coverage is fine, it just means the baseline wants regenerating.
/// Wall-clock and thread counts are never compared.
pub fn diff(
    baseline: &BenchArtifact,
    fresh: &BenchArtifact,
    load_tol: f64,
) -> Result<String, Vec<String>> {
    let fresh_by_key: std::collections::BTreeMap<_, _> =
        fresh.records.iter().map(|r| (r.key(), r)).collect();
    let mut errors = Vec::new();
    let mut matched = 0usize;
    for old in &baseline.records {
        let id = format!(
            "{}/{} (p={}, N={}, OUT={})",
            old.experiment, old.workload, old.p, old.n, old.out
        );
        let Some(new) = fresh_by_key.get(&old.key()) else {
            errors.push(format!(
                "{id}: present in baseline but missing from the fresh run"
            ));
            continue;
        };
        matched += 1;
        let allowed = (old.load as f64 * (1.0 + load_tol)).ceil() as u64;
        if new.load > allowed {
            errors.push(format!(
                "{id}: load regressed {} -> {} (allowed ≤ {allowed} at tol {load_tol})",
                old.load, new.load
            ));
        }
        if old.within && !new.within {
            errors.push(format!(
                "{id}: new bound violation (load {} vs bound {:.1}, ratio {:.2})",
                new.load, new.bound, new.ratio
            ));
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    let extra = fresh.records.len().saturating_sub(matched);
    Ok(format!(
        "bench OK: {matched} rows within tolerance {load_tol}{}",
        if extra > 0 {
            format!(", {extra} new rows not in baseline")
        } else {
            String::new()
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(load: u64, within: bool) -> BenchRecord {
        BenchRecord {
            experiment: "table1_mm".into(),
            workload: "side=8".into(),
            p: 16,
            n: 4608,
            out: 4608,
            base_load: 1826,
            load,
            bound: 867.81,
            ratio: load as f64 / 867.81,
            within,
            threads: 4,
            wall_ns: 1_234_567,
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let art = BenchArtifact::new(vec![record(700, true), record(900, false)]);
        let text = art.to_json_string();
        assert!(text.contains("\"schema\":\"mpcjoin-bench-v1\""));
        assert_eq!(BenchArtifact::parse(&text).unwrap(), art);
    }

    #[test]
    fn parse_rejects_foreign_schemas() {
        assert!(BenchArtifact::parse("{\"schema\":\"other\",\"records\":[]}").is_err());
        assert!(BenchArtifact::parse("{\"records\":[]}").is_err());
        assert!(BenchArtifact::parse("not json").is_err());
    }

    #[test]
    fn diff_passes_identical_and_improved_runs() {
        let base = BenchArtifact::new(vec![record(700, true)]);
        assert!(diff(&base, &base, 0.05).is_ok());
        let better = BenchArtifact::new(vec![record(600, true)]);
        assert!(diff(&base, &better, 0.05).is_ok());
        // Inside the tolerance band is fine too.
        let wobble = BenchArtifact::new(vec![record(731, true)]);
        assert!(diff(&base, &wobble, 0.05).is_ok());
    }

    #[test]
    fn diff_fails_on_injected_load_regression() {
        // The synthetic-regression guarantee: inflate one row's load and
        // the differ must fail, naming the offending configuration.
        let base = BenchArtifact::new(vec![record(700, true)]);
        let regressed = BenchArtifact::new(vec![record(1400, true)]);
        let errors = diff(&base, &regressed, 0.05).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(
            errors[0].contains("load regressed 700 -> 1400"),
            "{errors:?}"
        );
        assert!(errors[0].contains("table1_mm/side=8"), "{errors:?}");
    }

    #[test]
    fn diff_fails_on_new_bound_violations_only() {
        let base = BenchArtifact::new(vec![record(700, true)]);
        let violating = BenchArtifact::new(vec![record(701, false)]);
        let errors = diff(&base, &violating, 0.05).unwrap_err();
        assert!(errors[0].contains("new bound violation"), "{errors:?}");
        // A violation already in the baseline is not *new*.
        let known = BenchArtifact::new(vec![record(700, false)]);
        assert!(diff(&known, &known, 0.05).is_ok());
    }

    #[test]
    fn diff_fails_on_lost_coverage() {
        let base = BenchArtifact::new(vec![record(700, true)]);
        let empty = BenchArtifact::new(vec![]);
        let errors = diff(&base, &empty, 0.05).unwrap_err();
        assert!(
            errors[0].contains("missing from the fresh run"),
            "{errors:?}"
        );
        // Extra fresh rows are fine and reported.
        let more = BenchArtifact::new(vec![record(700, true), {
            let mut r = record(50, true);
            r.workload = "side=32".into();
            r
        }]);
        let msg = diff(&base, &more, 0.05).unwrap();
        assert!(msg.contains("1 new rows"), "{msg}");
    }
}

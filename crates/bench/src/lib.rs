//! The benchmark harness: experiments that regenerate every table and
//! figure of the paper (see DESIGN.md §4 for the experiment index).
//!
//! Each experiment is a plain function returning printable rows, shared by
//! the `cargo run` harness binaries and the Criterion benches. The
//! quantity measured is the MPC *load* — the paper's cost metric — read
//! off the simulator's exact ledger, alongside the closed-form bounds of
//! Table 1.

pub mod artifact;
pub mod experiments;
pub mod server;
pub mod table;

pub use artifact::{diff, BenchArtifact, BenchRecord};
pub use server::{diff_server, ServerArtifact, ServerRecord};
pub use table::{print_table, to_csv, Cell, Table};

/// Configure the simulator's local-execution thread pool for a harness
/// binary: `--threads N` on the command line wins, then the
/// `MPCJOIN_THREADS` environment variable, then all available cores.
/// Returns the chosen thread count.
pub fn init_threads() -> usize {
    let mut threads = None;
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().ok();
        } else if arg == "--threads" {
            threads = args.get(i + 1).and_then(|v| v.parse().ok());
        }
    }
    let threads = threads
        .or_else(|| {
            std::env::var("MPCJOIN_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(mpcjoin::mpc::exec::available_threads);
    mpcjoin::mpc::exec::set_default_threads(threads);
    threads
}

/// Minimal timing loop for the plain-`main` bench targets: run `f` once to
/// warm up, then `iters` timed repetitions, and print the best and mean
/// wall-clock per iteration. The closure's return value is consumed so the
/// computation cannot be optimized away. Returns the best sample, for
/// harnesses that also write machine-readable artifacts.
pub fn bench_case<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> std::time::Duration {
    let sink = f();
    std::hint::black_box(&sink);
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = std::time::Instant::now();
        let out = f();
        samples.push(start.elapsed());
        std::hint::black_box(&out);
    }
    let best = samples.iter().min().copied().unwrap_or_default();
    let mean = samples.iter().sum::<std::time::Duration>() / iters.max(1);
    println!("{name:<48} best {best:>10.3?}   mean {mean:>10.3?}   ({iters} iters)");
    best
}

/// Harness-binary output helper: print the table, and when the
/// environment variable `MPCJOIN_CSV_DIR` is set, also write it there as
/// `<slug>.csv`.
pub fn emit(table: &Table, slug: &str) {
    print_table(table);
    if let Ok(dir) = std::env::var("MPCJOIN_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
        if let Err(e) = std::fs::write(&path, to_csv(table)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Write a machine-readable bench artifact (schema `mpcjoin-bench-v1`)
/// as `<name>` into `MPCJOIN_BENCH_DIR` (preferred) or
/// `MPCJOIN_CSV_DIR`, or next to the current directory when neither is
/// set. Returns the path written, for the harness to log.
pub fn emit_json(artifact: &BenchArtifact, name: &str) -> std::path::PathBuf {
    let dir = std::env::var("MPCJOIN_BENCH_DIR")
        .or_else(|_| std::env::var("MPCJOIN_CSV_DIR"))
        .unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(name);
    if let Err(e) = std::fs::write(&path, artifact.to_json_string()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!(
            "wrote {} ({} records)",
            path.display(),
            artifact.records.len()
        );
    }
    path
}

/// Like [`emit`] for execution traces: print a short summary, and when
/// `MPCJOIN_CSV_DIR` is set, write the full JSON next to the CSVs as
/// `<slug>_trace.json`.
pub fn emit_trace(trace: &mpcjoin::mpc::Trace, slug: &str) {
    let report = trace.report();
    println!("\n== trace: {slug} ==");
    println!(
        "{} exchange events over {} rounds, load {}, traffic {}",
        trace.events.len(),
        trace.cost.rounds,
        trace.cost.load,
        trace.cost.total_units
    );
    if let Some(c) = &report.critical {
        println!(
            "critical cell: server {} in round {} received {} units during `{}`",
            c.server, c.round, c.units, c.label
        );
    }
    if let Ok(dir) = std::env::var("MPCJOIN_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{slug}_trace.json"));
        if let Err(e) = std::fs::write(&path, trace.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

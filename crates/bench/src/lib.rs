//! The benchmark harness: experiments that regenerate every table and
//! figure of the paper (see DESIGN.md §4 for the experiment index).
//!
//! Each experiment is a plain function returning printable rows, shared by
//! the `cargo run` harness binaries and the Criterion benches. The
//! quantity measured is the MPC *load* — the paper's cost metric — read
//! off the simulator's exact ledger, alongside the closed-form bounds of
//! Table 1.

pub mod experiments;
pub mod table;

pub use table::{print_table, to_csv, Cell, Table};

/// Harness-binary output helper: print the table, and when the
/// environment variable `MPCJOIN_CSV_DIR` is set, also write it there as
/// `<slug>.csv`.
pub fn emit(table: &Table, slug: &str) {
    print_table(table);
    if let Ok(dir) = std::env::var("MPCJOIN_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
        if let Err(e) = std::fs::write(&path, to_csv(table)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

//! Differential soak test: thousands of randomized instances across all
//! query shapes, every distributed algorithm checked for exact annotated
//! equality against the sequential oracle (and the baseline against both).
//!
//! This is the confidence tool behind the library's correctness story —
//! run it with a seed range whenever an algorithm changes:
//!
//! ```text
//! cargo run -p mpcjoin-bench --release --bin differential [instances] [seed0]
//! ```

use mpcjoin::prelude::*;
use mpcjoin::verify_instance;
use mpcjoin::workload::{chain, matrix, rng, star, trees};

fn check_instance(q: &TreeQuery, rels: &[Relation<Count>], p: usize, label: &str) -> u64 {
    let v = verify_instance(p, q, rels);
    assert!(
        v.engine_matches_oracle,
        "{label}: plan {:?} diverged from oracle (p = {p})",
        v.plan
    );
    assert!(
        v.baseline_matches_oracle,
        "{label}: baseline diverged from oracle (p = {p})"
    );
    v.oracle.len() as u64
}

fn main() {
    mpcjoin_bench::init_threads();
    let mut args = std::env::args().skip(1);
    let instances: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let seed0: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let mut checked = 0u64;
    let mut outputs = 0u64;
    for seed in seed0..seed0 + instances {
        let mut r = rng(seed);
        let p = [2usize, 4, 8, 16][r.gen_range(0..4)];
        match seed % 5 {
            0 => {
                let dom = r.gen_range(8..60u64);
                let cap = (dom * (dom / 2 + 1) / 2).max(20) as usize;
                let n = r.gen_range(10..cap.min(400));
                let inst = matrix::uniform::<Count>(
                    &mut r,
                    (Attr(0), Attr(1), Attr(2)),
                    n,
                    n,
                    (dom, dom / 2 + 1, dom),
                );
                let q = TreeQuery::new(
                    vec![
                        Edge::binary(Attr(0), Attr(1)),
                        Edge::binary(Attr(1), Attr(2)),
                    ],
                    [Attr(0), Attr(2)],
                );
                outputs += check_instance(&q, &[inst.r1, inst.r2], p, "matmul");
            }
            1 => {
                let hops = r.gen_range(3..6);
                let n = r.gen_range(30..150);
                let dom = r.gen_range(5..20);
                let inst = chain::uniform::<Count>(&mut r, hops, n, dom);
                outputs += check_instance(&inst.query, &inst.rels, p, "line");
            }
            2 => {
                let arms = r.gen_range(3..5);
                let n = r.gen_range(20..80);
                let dom_a = r.gen_range(8..30);
                let dom_b = r.gen_range(3..9);
                let inst = star::uniform::<Count>(&mut r, arms, n, dom_a, dom_b);
                outputs += check_instance(&inst.query, &inst.rels, p, "star");
            }
            3 => {
                let q = trees::figure3_query();
                let n = r.gen_range(10..30);
                let dom = r.gen_range(3..6);
                let inst = trees::random_instance::<Count>(&mut r, &q, n, dom);
                outputs += check_instance(&inst.query, &inst.rels, p, "fig3-twig");
            }
            _ => {
                let q = trees::figure2_query();
                let n = r.gen_range(8..20);
                let dom = r.gen_range(3..5);
                let inst = trees::random_instance::<Count>(&mut r, &q, n, dom);
                outputs += check_instance(&inst.query, &inst.rels, p, "fig2-tree");
            }
        }
        checked += 1;
        if checked.is_multiple_of(10) {
            println!("  {checked}/{instances} instances verified…");
        }
    }
    println!(
        "differential soak passed: {checked} instances (seeds {seed0}..{}), {outputs} total output rows verified",
        seed0 + instances
    );
}

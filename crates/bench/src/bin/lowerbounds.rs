//! The Theorems 2–3 lower-bound experiment: run Theorem 1's algorithm on
//! the hard instances (with their adversarial initial placements) and
//! print measured load between the Ω and O bounds.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin lowerbounds [scale]`

use mpcjoin_bench::emit;
use mpcjoin_bench::experiments;

fn main() {
    mpcjoin_bench::init_threads();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for p in [16usize, 64] {
        emit(
            &experiments::lower_bounds(p, scale),
            &format!("lowerbounds_p{p}"),
        );
    }
}

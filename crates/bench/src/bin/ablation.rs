//! Ablation and scaling experiments: the Theorem-1 min-term crossover
//! (§3.1 vs §3.2 forced on identical instances) and load-vs-p scaling.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin ablation [scale]`

use mpcjoin_bench::emit;
use mpcjoin_bench::experiments;

fn main() {
    mpcjoin_bench::init_threads();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    emit(
        &experiments::ablation_min_terms(16, scale),
        "ablation_min_terms",
    );
    emit(&experiments::p_scaling(scale), "p_scaling");
}

//! The figure experiments: verify the decompositions of Figures 1–4 on
//! the paper's example queries and run them end to end.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin figures`

use mpcjoin_bench::experiments;
use mpcjoin_bench::print_table;

fn main() {
    mpcjoin_bench::init_threads();
    for table in experiments::figures(16) {
        print_table(&table);
    }
}

//! `bench_check` — diff a fresh bench artifact against a committed
//! baseline and fail on regressions. Used by CI after regenerating
//! `BENCH_table1.json` at the baseline's scale.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tol FRAC]
//! ```
//!
//! Exits nonzero when a fresh row's measured load exceeds its baseline
//! row by more than `--tol` (default 0.05 — loads are deterministic on
//! the simulator, the band only absorbs intentional re-tuning), when any
//! row's bound audit newly flips to a violation, or when a baseline row
//! is missing from the fresh run. Wall-clock fields are never compared.

use mpcjoin_bench::{artifact, BenchArtifact};
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = 0.05f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tol expects a fraction, e.g. 0.05")?
            }
            "--help" | "-h" => {
                return Err("usage: bench_check <baseline.json> <fresh.json> [--tol FRAC]".into())
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err("usage: bench_check <baseline.json> <fresh.json> [--tol FRAC]".into());
    };
    let read = |path: &str| -> Result<BenchArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        BenchArtifact::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let fresh = read(fresh_path)?;
    artifact::diff(&baseline, &fresh, tol).map_err(|errors| {
        let mut msg = format!("{} regression(s) vs {baseline_path}:", errors.len());
        for e in errors {
            msg.push_str("\n  ");
            msg.push_str(&e);
        }
        msg
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

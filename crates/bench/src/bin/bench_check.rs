//! `bench_check` — diff a fresh bench artifact against a committed
//! baseline and fail on regressions. Used by CI after regenerating
//! `BENCH_table1.json` at the baseline's scale, and by the `serve` job
//! for `BENCH_server.json`.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tol FRAC]
//! ```
//!
//! The artifact family is dispatched on the baseline's `schema` tag:
//!
//! * `mpcjoin-bench-v1` (Table-1 runs) — exits nonzero when a fresh
//!   row's measured load exceeds its baseline row by more than `--tol`
//!   (default 0.05 — loads are deterministic on the simulator, the band
//!   only absorbs intentional re-tuning), when any row's bound audit
//!   newly flips to a violation, or when a baseline row is missing from
//!   the fresh run.
//! * `mpcjoin-bench-server-v1` (loadgen runs) — deterministic fields
//!   (query counts, summed loads, run configuration) must match exactly
//!   and the zero-loss/zero-duplication invariants must hold; `--tol` is
//!   ignored.
//!
//! Wall-clock and latency fields are never compared in either family.

use mpcjoin::mpc::json::Json;
use mpcjoin_bench::{artifact, server, BenchArtifact, ServerArtifact};
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = 0.05f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tol expects a fraction, e.g. 0.05")?
            }
            "--help" | "-h" => {
                return Err("usage: bench_check <baseline.json> <fresh.json> [--tol FRAC]".into())
            }
            p => paths.push(p.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err("usage: bench_check <baseline.json> <fresh.json> [--tol FRAC]".into());
    };
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let baseline_text = read(baseline_path)?;
    let fresh_text = read(fresh_path)?;
    let schema = Json::parse(&baseline_text)
        .map_err(|e| format!("{baseline_path}: invalid JSON: {e}"))?
        .get("schema")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{baseline_path}: missing `schema`"))?;

    let render = |errors: Vec<String>| {
        let mut msg = format!("{} regression(s) vs {baseline_path}:", errors.len());
        for e in errors {
            msg.push_str("\n  ");
            msg.push_str(&e);
        }
        msg
    };
    match schema.as_str() {
        artifact::SCHEMA => {
            let baseline = BenchArtifact::parse(&baseline_text)
                .map_err(|e| format!("{baseline_path}: {e}"))?;
            let fresh =
                BenchArtifact::parse(&fresh_text).map_err(|e| format!("{fresh_path}: {e}"))?;
            artifact::diff(&baseline, &fresh, tol).map_err(render)
        }
        server::SERVER_SCHEMA => {
            let baseline = ServerArtifact::parse(&baseline_text)
                .map_err(|e| format!("{baseline_path}: {e}"))?;
            let fresh =
                ServerArtifact::parse(&fresh_text).map_err(|e| format!("{fresh_path}: {e}"))?;
            server::diff_server(&baseline, &fresh).map_err(render)
        }
        other => Err(format!(
            "{baseline_path}: unknown artifact schema `{other}`"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Model sanity experiments: constant rounds across input scales, and
//! §2.2 KMV estimator accuracy.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin model_checks`

use mpcjoin_bench::emit;
use mpcjoin_bench::experiments;

fn main() {
    mpcjoin_bench::init_threads();
    emit(&experiments::rounds_constancy(16), "rounds_constancy");
    emit(&experiments::kmv_accuracy(16), "kmv_accuracy");
}

//! Regenerate Table 1 empirically: for every query class, the measured
//! load of the distributed Yannakakis baseline vs. the paper's algorithm,
//! next to the closed-form bounds and the engine's bound-audit verdict,
//! while OUT sweeps.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin table1 [scale]`
//! (`scale` defaults to 1; larger values grow the instances). Besides the
//! printed tables (and CSVs under `MPCJOIN_CSV_DIR`), writes the
//! machine-readable `BENCH_table1.json` artifact consumed by
//! `bench_check`.

use mpcjoin_bench::experiments;
use mpcjoin_bench::{emit, emit_json, emit_trace, BenchArtifact};

fn main() {
    mpcjoin_bench::init_threads();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Table 1 reproduction (instance scale {scale})");
    let mut records = Vec::new();
    let (t, r) = experiments::table1_mm(&[16, 64], scale);
    emit(&t, "table1_mm");
    records.extend(r);
    let (t, r) = experiments::table1_mm_unequal(16, scale);
    emit(&t, "table1_mm_unequal");
    records.extend(r);
    let (t, r) = experiments::table1_line(16, scale);
    emit(&t, "table1_line");
    records.extend(r);
    let (t, r) = experiments::table1_star(16, scale);
    emit(&t, "table1_star");
    records.extend(r);
    let (t, r) = experiments::table1_tree(16, scale);
    emit(&t, "table1_tree");
    records.extend(r);
    emit_trace(&experiments::table1_line_trace(16, scale), "table1_line");

    let violations = records.iter().filter(|r| !r.within).count();
    emit_json(&BenchArtifact::new(records), "BENCH_table1.json");
    if violations > 0 {
        println!("WARNING: {violations} rows exceed slack·bound + p (see the audit column)");
    }
}

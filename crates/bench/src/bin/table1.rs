//! Regenerate Table 1 empirically: for every query class, the measured
//! load of the distributed Yannakakis baseline vs. the paper's algorithm,
//! next to the closed-form bounds, while OUT sweeps.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin table1 [scale]`
//! (`scale` defaults to 1; larger values grow the instances).

use mpcjoin_bench::experiments;
use mpcjoin_bench::{emit, emit_trace};

fn main() {
    mpcjoin_bench::init_threads();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Table 1 reproduction (instance scale {scale})");
    emit(&experiments::table1_mm(&[16, 64], scale), "table1_mm");
    emit(
        &experiments::table1_mm_unequal(16, scale),
        "table1_mm_unequal",
    );
    emit(&experiments::table1_line(16, scale), "table1_line");
    emit(&experiments::table1_star(16, scale), "table1_star");
    emit(&experiments::table1_tree(16, scale), "table1_tree");
    emit_trace(&experiments::table1_line_trace(16, scale), "table1_line");
}

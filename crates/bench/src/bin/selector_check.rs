//! `selector_check` — compare the cost-based selector against the
//! heuristic dispatch and every forced physical alternative on the
//! Table-1 workload grid.
//!
//! For each workload the harness runs the engine once per strategy and
//! prints measured load next to the compiler's predicted bound (the same
//! `predict_bound` the auditor uses). The process exits nonzero when the
//! cost-based choice is ever slower than the heuristic dispatch — the
//! selection-quality guarantee the hysteretic margin is supposed to
//! enforce — or when any forced plan's output disagrees.
//!
//! Run with: `cargo run -p mpcjoin-bench --release --bin selector_check [scale]`

use mpcjoin::compiler::{applicable, predict_bound};
use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, star, trees};
use mpcjoin::QueryEngine;
use mpcjoin_bench::{emit, Cell, Table};
use std::process::ExitCode;

fn workloads(scale: u64) -> Vec<(String, TreeQuery, Vec<Relation<Count>>)> {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let mm = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let mut cases = Vec::new();
    for side in [2u64, 8, 32] {
        let inst = matrix::blocks::<Count>((a, b, c), (96 * scale / (4 * side)).max(1), side, 2);
        cases.push((
            format!("mm side={side}"),
            mm.clone(),
            vec![inst.r1, inst.r2],
        ));
    }
    for k in [2u64, 8] {
        let inst = chain::funnel::<Count>(8 * scale, k, 4);
        cases.push((format!("line k={k}"), inst.query, inst.rels));
    }
    for centers in [1u64, 4] {
        let inst = star::overlapping::<Count>(3, centers * scale, 8);
        cases.push((format!("star centers={centers}"), inst.query, inst.rels));
    }
    let q = trees::figure3_query();
    for centers in [2u64, 4] {
        let inst = trees::overlapping_instance::<Count>(&q, centers * scale, 3);
        cases.push((format!("tree centers={centers}"), inst.query, inst.rels));
    }
    cases
}

fn main() -> ExitCode {
    mpcjoin_bench::init_threads();
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let p = 16usize;
    println!("selector check (p = {p}, instance scale {scale})");

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for (name, q, rels) in workloads(scale) {
        let sizes: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
        let chosen = QueryEngine::new(p)
            .plan(PlanChoice::CostBased)
            .run(&q, &rels)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let heuristic = QueryEngine::new(p)
            .plan(PlanChoice::Heuristic)
            .run(&q, &rels)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if chosen.cost.load > heuristic.cost.load {
            println!(
                "FAIL {name}: cost-based {:?} load {} > heuristic {:?} load {}",
                chosen.plan, chosen.cost.load, heuristic.plan, heuristic.cost.load
            );
            failures += 1;
        }
        let reference = chosen.output.canonical();
        for kind in applicable(&q) {
            let forced = QueryEngine::new(p)
                .plan(PlanChoice::Force(kind))
                .run(&q, &rels)
                .unwrap_or_else(|e| panic!("{name}: forced {kind:?}: {e}"));
            if forced.output.canonical() != reference {
                println!("FAIL {name}: forced {kind:?} output disagrees");
                failures += 1;
            }
            let out = forced.output.len() as u64;
            rows.push(vec![
                Cell::Text(name.clone()),
                Cell::Text(format!("{kind:?}")),
                Cell::Text(if kind == chosen.plan { "chosen" } else { "" }.into()),
                Cell::Int(forced.cost.load),
                Cell::Float(predict_bound(kind, &q, &sizes, out, p as u64)),
            ]);
        }
    }
    let table = Table {
        title: format!("Cost-based selection vs forced alternatives (p = {p})"),
        header: ["workload", "plan", "", "load", "predicted bound"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    emit(&table, "selector_check");
    if failures > 0 {
        println!("selector check FAILED: {failures} violations");
        return ExitCode::FAILURE;
    }
    println!("selector check OK: cost-based choice never lost to the heuristic dispatch");
    ExitCode::SUCCESS
}

//! Serving-layer bench artifacts (schema [`SERVER_SCHEMA`]) and their
//! regression differ.
//!
//! `loadgen` (in `crates/server`) replays a mixed workload against a
//! running `mpcjoin-serve` and writes one of these artifacts; CI commits
//! a baseline (`results/BENCH_baseline_server.json`) and diffs fresh
//! runs against it with `bench_check`, which dispatches on the
//! baseline's `schema` tag.
//!
//! The diffable fields are the *deterministic* ones: per-workload query
//! counts, the zero-loss/zero-duplication invariants, and `load_sum` —
//! the sum of simulated MPC loads across the workload's responses, which
//! is exactly reproducible on any machine because instances are
//! seed-generated and the simulator's ledger is exact. Latency,
//! throughput, retry counts, and cache hit counts are recorded for the
//! human but never diffed: they depend on the machine and on scheduling
//! races (how often a burst overflows the admission queue is real
//! nondeterminism, by design).

use mpcjoin::mpc::json::Json;

/// Schema tag of serving-bench artifacts.
pub const SERVER_SCHEMA: &str = "mpcjoin-bench-server-v1";

/// One workload class's aggregate outcome across all sessions.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerRecord {
    /// Workload class, e.g. `"mm"`, `"line"`, `"star"`.
    pub workload: String,
    /// Queries sent (excluding rejected attempts that were retried).
    pub sent: u64,
    /// Result frames received for distinct ids.
    pub responses: u64,
    /// Ids that never received a response (must be 0).
    pub lost: u64,
    /// Ids that received more than one response (must be 0).
    pub duplicated: u64,
    /// Backpressure rejections that were retried (informational).
    pub retries: u64,
    /// Responses served from the result cache (informational).
    pub cache_hits: u64,
    /// Sum of simulated MPC loads over the responses (deterministic).
    pub load_sum: u64,
    /// Latency percentiles in nanoseconds (informational).
    pub p50_ns: u64,
    /// 95th-percentile latency (informational).
    pub p95_ns: u64,
    /// Worst latency (informational).
    pub max_ns: u64,
}

impl ServerRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::Str(self.workload.clone())),
            ("sent".into(), Json::Num(self.sent as f64)),
            ("responses".into(), Json::Num(self.responses as f64)),
            ("lost".into(), Json::Num(self.lost as f64)),
            ("duplicated".into(), Json::Num(self.duplicated as f64)),
            ("retries".into(), Json::Num(self.retries as f64)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("load_sum".into(), Json::Num(self.load_sum as f64)),
            ("p50_ns".into(), Json::Num(self.p50_ns as f64)),
            ("p95_ns".into(), Json::Num(self.p95_ns as f64)),
            ("max_ns".into(), Json::Num(self.max_ns as f64)),
        ])
    }

    fn from_json(j: &Json) -> Result<ServerRecord, String> {
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("server record missing integer `{k}`"))
        };
        Ok(ServerRecord {
            workload: j
                .get("workload")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("server record missing string `workload`")?,
            sent: u("sent")?,
            responses: u("responses")?,
            lost: u("lost")?,
            duplicated: u("duplicated")?,
            retries: u("retries")?,
            cache_hits: u("cache_hits")?,
            load_sum: u("load_sum")?,
            p50_ns: u("p50_ns")?,
            p95_ns: u("p95_ns")?,
            max_ns: u("max_ns")?,
        })
    }
}

/// A full loadgen run: configuration echo + per-workload records +
/// run-level wall-clock summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerArtifact {
    /// Concurrent client sessions the run drove.
    pub sessions: u64,
    /// Queries per session per workload class.
    pub per_session: u64,
    /// Instance-generator seed.
    pub seed: u64,
    /// Per-workload aggregates.
    pub records: Vec<ServerRecord>,
    /// Whole-run wall-clock in nanoseconds (informational).
    pub wall_ns: u64,
    /// Whole-run throughput in queries/second (informational).
    pub throughput_qps: f64,
    /// *Server-side* p50 total latency in nanoseconds, scraped from the
    /// final `stats` frame's `mpcjoin-serverstats-v1` payload
    /// (informational, bucket-estimated; 0 when the server predates the
    /// stats plane or the scrape was skipped).
    pub server_p50_ns: u64,
    /// Server-side p95 total latency (informational, bucket-estimated).
    pub server_p95_ns: u64,
}

impl ServerArtifact {
    /// Serialize (schema [`SERVER_SCHEMA`]).
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SERVER_SCHEMA.into())),
            ("sessions".into(), Json::Num(self.sessions as f64)),
            ("per_session".into(), Json::Num(self.per_session as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(ServerRecord::to_json).collect()),
            ),
            ("wall_ns".into(), Json::Num(self.wall_ns as f64)),
            ("throughput_qps".into(), Json::Num(self.throughput_qps)),
            ("server_p50_ns".into(), Json::Num(self.server_p50_ns as f64)),
            ("server_p95_ns".into(), Json::Num(self.server_p95_ns as f64)),
        ])
        .to_string_sanitized()
    }

    /// Parse a document produced by [`ServerArtifact::to_json_string`].
    pub fn parse(text: &str) -> Result<ServerArtifact, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SERVER_SCHEMA) => {}
            Some(other) => return Err(format!("unknown schema `{other}`")),
            None => return Err("missing `schema`".into()),
        }
        let u = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("artifact missing integer `{k}`"))
        };
        Ok(ServerArtifact {
            sessions: u("sessions")?,
            per_session: u("per_session")?,
            seed: u("seed")?,
            records: doc
                .get("records")
                .and_then(Json::as_arr)
                .ok_or("missing `records` array")?
                .iter()
                .map(ServerRecord::from_json)
                .collect::<Result<_, _>>()?,
            wall_ns: u("wall_ns")?,
            throughput_qps: doc
                .get("throughput_qps")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            // Absent in baselines that predate the observability plane
            // (informational, never diffed).
            server_p50_ns: doc.get("server_p50_ns").and_then(Json::as_u64).unwrap_or(0),
            server_p95_ns: doc.get("server_p95_ns").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// Compare a fresh serving run against the committed baseline.
///
/// Deterministic fields must match exactly: run configuration (sessions,
/// per-session count, seed), per-workload `sent`/`responses`, and
/// `load_sum`. Both sides must uphold the protocol invariants
/// `lost == 0` and `duplicated == 0`. Latency, throughput, retries, and
/// cache-hit counts are never compared.
pub fn diff_server(
    baseline: &ServerArtifact,
    fresh: &ServerArtifact,
) -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    for (name, old, new) in [
        ("sessions", baseline.sessions, fresh.sessions),
        ("per_session", baseline.per_session, fresh.per_session),
        ("seed", baseline.seed, fresh.seed),
    ] {
        if old != new {
            errors.push(format!(
                "run configuration drifted: `{name}` {old} -> {new} (regenerate the baseline?)"
            ));
        }
    }
    let fresh_by_name: std::collections::BTreeMap<_, _> = fresh
        .records
        .iter()
        .map(|r| (r.workload.as_str(), r))
        .collect();
    for old in &baseline.records {
        let Some(new) = fresh_by_name.get(old.workload.as_str()) else {
            errors.push(format!(
                "workload `{}`: present in baseline but missing from the fresh run",
                old.workload
            ));
            continue;
        };
        for (field, o, n) in [
            ("sent", old.sent, new.sent),
            ("responses", old.responses, new.responses),
            ("load_sum", old.load_sum, new.load_sum),
        ] {
            if o != n {
                errors.push(format!(
                    "workload `{}`: {field} changed {o} -> {n} (deterministic field)",
                    old.workload
                ));
            }
        }
        if new.lost != 0 || new.duplicated != 0 {
            errors.push(format!(
                "workload `{}`: protocol invariant broken ({} lost, {} duplicated)",
                old.workload, new.lost, new.duplicated
            ));
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    Ok(format!(
        "server bench OK: {} workloads, {} sessions, deterministic fields identical",
        baseline.records.len(),
        baseline.sessions
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, load_sum: u64) -> ServerRecord {
        ServerRecord {
            workload: workload.into(),
            sent: 128,
            responses: 128,
            lost: 0,
            duplicated: 0,
            retries: 3,
            cache_hits: 32,
            load_sum,
            p50_ns: 1_000_000,
            p95_ns: 5_000_000,
            max_ns: 9_000_000,
        }
    }

    fn artifact(load_sum: u64) -> ServerArtifact {
        ServerArtifact {
            sessions: 32,
            per_session: 4,
            seed: 7,
            records: vec![record("mm", load_sum), record("line", 500)],
            wall_ns: 123,
            throughput_qps: 400.0,
            server_p50_ns: 900_000,
            server_p95_ns: 4_000_000,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let art = artifact(1000);
        let text = art.to_json_string();
        assert!(text.contains("\"schema\":\"mpcjoin-bench-server-v1\""));
        assert_eq!(ServerArtifact::parse(&text).unwrap(), art);
    }

    #[test]
    fn rejects_foreign_schemas() {
        assert!(ServerArtifact::parse("{\"schema\":\"mpcjoin-bench-v1\"}").is_err());
        assert!(ServerArtifact::parse("nope").is_err());
    }

    #[test]
    fn diff_ignores_machine_dependent_fields() {
        let base = artifact(1000);
        let mut fresh = artifact(1000);
        fresh.records[0].retries = 99;
        fresh.records[0].cache_hits = 0;
        fresh.records[0].p95_ns = u64::MAX;
        fresh.wall_ns = 1;
        fresh.throughput_qps = 2.0;
        fresh.server_p50_ns = 1;
        fresh.server_p95_ns = u64::MAX;
        assert!(diff_server(&base, &fresh).is_ok());
    }

    #[test]
    fn artifacts_without_server_latency_still_parse() {
        // Committed baselines predate the server-side scrape; the new
        // members are optional on parse and default to 0.
        let mut art = artifact(1000);
        let text = art
            .to_json_string()
            .replace(",\"server_p50_ns\":900000", "")
            .replace(",\"server_p95_ns\":4000000", "");
        let parsed = ServerArtifact::parse(&text).unwrap();
        assert_eq!((parsed.server_p50_ns, parsed.server_p95_ns), (0, 0));
        art.server_p50_ns = 0;
        art.server_p95_ns = 0;
        assert_eq!(parsed, art);
    }

    #[test]
    fn diff_fails_on_deterministic_drift_and_invariants() {
        let base = artifact(1000);
        let drifted = artifact(1001);
        let errors = diff_server(&base, &drifted).unwrap_err();
        assert!(
            errors[0].contains("load_sum changed 1000 -> 1001"),
            "{errors:?}"
        );

        let mut lossy = artifact(1000);
        lossy.records[1].lost = 2;
        let errors = diff_server(&base, &lossy).unwrap_err();
        assert!(errors[0].contains("protocol invariant"), "{errors:?}");

        let mut cfg = artifact(1000);
        cfg.seed = 8;
        assert!(diff_server(&base, &cfg).is_err());

        let mut missing = artifact(1000);
        missing.records.pop();
        let errors = diff_server(&base, &missing).unwrap_err();
        assert!(
            errors[0].contains("missing from the fresh run"),
            "{errors:?}"
        );
    }
}

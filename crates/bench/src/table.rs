//! Minimal aligned-text table printing for the harness binaries.

/// One table cell.
#[derive(Clone, Debug)]
pub enum Cell {
    /// Plain text.
    Text(String),
    /// Integer, right-aligned.
    Int(u64),
    /// Float with 2 decimals, right-aligned.
    Float(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.2}"),
        }
    }

    fn right_aligned(&self) -> bool {
        !matches!(self, Cell::Text(_))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A titled table with a header row.
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

/// Render a [`Table`] to stdout with aligned columns.
pub fn print_table(table: &Table) {
    println!("\n== {} ==", table.title);
    let cols = table.header.len();
    let mut widths: Vec<usize> = table.header.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| {
            assert_eq!(row.len(), cols, "row arity mismatch");
            row.iter().map(Cell::render).collect()
        })
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let header_line: Vec<String> = table
        .header
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for (row, raw) in rendered.iter().zip(&table.rows) {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                if raw[i].right_aligned() {
                    format!("{:>w$}", cell, w = widths[i])
                } else {
                    format!("{:<w$}", cell, w = widths[i])
                }
            })
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Render a [`Table`] as CSV (header row + data rows; text cells are
/// quoted when they contain commas).
pub fn to_csv(table: &Table) -> String {
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &table
            .header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in &table.rows {
        out.push_str(
            &row.iter()
                .map(|c| quote(&c.render()))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrips_cells() {
        let csv = to_csv(&Table {
            title: "t".into(),
            header: vec!["a".into(), "b,c".into()],
            rows: vec![vec![Cell::Int(1), Cell::Text("x\"y".into())]],
        });
        assert_eq!(csv, "a,\"b,c\"\n1,\"x\"\"y\"\n");
    }

    #[test]
    fn renders_without_panicking() {
        print_table(&Table {
            title: "demo".into(),
            header: vec!["a".into(), "b".into()],
            rows: vec![vec![Cell::Int(1), Cell::Float(2.5)]],
        });
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_ragged_rows() {
        print_table(&Table {
            title: "bad".into(),
            header: vec!["a".into()],
            rows: vec![vec![Cell::Int(1), Cell::Int(2)]],
        });
    }
}

//! `explain()`: the compiler's user-facing artifact — chosen plan,
//! rejected alternatives, predicted bounds, and the lowered operator DAG
//! — with a stable JSON rendering (schema [`PLAN_SCHEMA`]).

use crate::enumerate::{enumerate_plans, Candidate};
use crate::ir::{lower, LogicalOp, LogicalPlan};
use crate::plan::PlanKind;
use crate::stats::Stats;
use mpcjoin_mpc::json::Json;
use mpcjoin_query::{AttrNames, TreeQuery};
use mpcjoin_relation::Attr;

/// Schema tag of the explain JSON document.
pub const PLAN_SCHEMA: &str = "mpcjoin-plan-v1";

/// The full compilation result for one query on one instance.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The selected physical strategy.
    pub chosen: PlanKind,
    /// Every applicable strategy with predicted bound and verdict
    /// (structural pick first; exactly one `selected`).
    pub candidates: Vec<Candidate>,
    /// The statistics the candidates were priced on.
    pub stats: Stats,
    /// Server count the plan was compiled for.
    pub p: u64,
    /// The chosen strategy lowered to the logical plan IR.
    pub plan: LogicalPlan,
}

/// Compile `q`: collect nothing (statistics come in via `stats`),
/// enumerate and price candidates, select, and lower the winner.
pub fn explain(q: &TreeQuery, stats: Stats, p: u64) -> Explain {
    let candidates = enumerate_plans(q, &stats, p);
    let chosen = candidates
        .iter()
        .find(|c| c.selected)
        .expect("exactly one candidate is selected")
        .kind;
    let plan = lower(q, chosen, &stats.sizes, stats.out, p);
    Explain {
        chosen,
        candidates,
        stats,
        p,
        plan,
    }
}

impl Explain {
    /// Serialize as a `mpcjoin-plan-v1` JSON document. `names` (from a
    /// parse) labels attributes; without it they print as `x<i>`.
    pub fn to_json(&self, names: Option<&AttrNames>) -> Json {
        let label = |a: Attr| -> String {
            match names {
                Some(n) if (a.0 as usize) < n.len() => n.name(a).to_string(),
                _ => format!("x{}", a.0),
            }
        };
        let attr_arr = |attrs: &[Attr]| -> Json {
            Json::Arr(attrs.iter().map(|&a| Json::Str(label(a))).collect())
        };
        let candidates: Vec<Json> = self
            .candidates
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("plan".into(), Json::Str(format!("{:?}", c.kind))),
                    ("bound".into(), Json::Num(c.bound)),
                    ("selected".into(), Json::Bool(c.selected)),
                    ("reason".into(), Json::Str(c.reason.clone())),
                ])
            })
            .collect();
        let operators: Vec<Json> = self
            .plan
            .nodes
            .iter()
            .map(|n| {
                let mut fields = vec![("op".into(), Json::Str(n.op.name().into()))];
                match &n.op {
                    LogicalOp::Scan { edge } => {
                        fields.push(("edge".into(), Json::Num(*edge as f64)));
                    }
                    LogicalOp::SemijoinReduce { on } => {
                        fields.push(("on".into(), attr_arr(on)));
                    }
                    LogicalOp::Exchange { by } => {
                        fields.push(("by".into(), attr_arr(by)));
                    }
                    LogicalOp::StarContract { center } => {
                        fields.push(("center".into(), Json::Str(label(*center))));
                    }
                    LogicalOp::TwigEval { shape } => {
                        fields.push(("shape".into(), Json::Str((*shape).into())));
                    }
                    LogicalOp::AggregateProject { output } => {
                        fields.push(("output".into(), attr_arr(output)));
                    }
                }
                fields.push((
                    "inputs".into(),
                    Json::Arr(n.inputs.iter().map(|&i| Json::Num(i as f64)).collect()),
                ));
                fields.push((
                    "bound".into(),
                    n.bound.map_or(Json::Null, |b| {
                        if b.is_finite() {
                            Json::Num(b)
                        } else {
                            Json::Null
                        }
                    }),
                ));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(PLAN_SCHEMA.into())),
            ("chosen".into(), Json::Str(format!("{:?}", self.chosen))),
            ("p".into(), Json::Num(self.p as f64)),
            (
                "sizes".into(),
                Json::Arr(
                    self.stats
                        .sizes
                        .iter()
                        .map(|&s| Json::Num(s as f64))
                        .collect(),
                ),
            ),
            ("estimated_out".into(), Json::Num(self.stats.out as f64)),
            ("candidates".into(), Json::Arr(candidates)),
            ("operators".into(), Json::Arr(operators)),
        ])
    }

    /// Render the chosen plan's operator DAG as Graphviz DOT (see
    /// [`LogicalPlan::to_dot`]).
    pub fn to_dot(&self, names: Option<&AttrNames>) -> String {
        self.plan.to_dot(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::{parse_query, Edge};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    #[test]
    fn explain_json_is_stable_and_schema_tagged() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let stats = Stats {
            sizes: vec![100, 120],
            out: 50,
        };
        let ex = explain(&q, stats, 8);
        assert_eq!(ex.chosen, PlanKind::MatMul);
        let doc = ex.to_json(None);
        let text = doc.to_string_compact().expect("finite");
        assert!(text.contains("\"schema\":\"mpcjoin-plan-v1\""));
        assert!(text.contains("\"chosen\":\"MatMul\""));
        // Round-trips through the parser and is byte-stable.
        let reparsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(reparsed.to_string_compact().expect("finite"), text);
    }

    #[test]
    fn explain_uses_parse_names() {
        let parsed = parse_query("Q(src, dst) :- R(src, mid), S(mid, dst).").unwrap();
        let stats = Stats {
            sizes: vec![10, 10],
            out: 5,
        };
        let ex = explain(&parsed.query, stats, 4);
        let text = ex
            .to_json(Some(&parsed.names))
            .to_string_compact()
            .expect("finite");
        assert!(text.contains("\"by\":[\"mid\"]"), "{text}");
        let dot = ex.to_dot(Some(&parsed.names));
        assert!(dot.contains("exchange by mid"), "{dot}");
    }
}

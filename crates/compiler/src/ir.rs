//! The logical plan IR: a typed operator DAG lowered from a [`TreeQuery`]
//! plus a chosen physical strategy.
//!
//! The IR generalizes the §7 machinery into explicit, reusable rewrite
//! passes: *scan* leaves, *semijoin-reduce* folds (one per
//! `plan_reduction` step), *star-contract* for §5/§6 hub shapes,
//! *twig-eval* for the §7 decomposition, *exchange* for the shuffle-based
//! residual evaluation, and a final *aggregate-project*. Each node
//! carries the predicted per-operator load (in units); the root carries
//! the full Table-1 bound of the plan, from the shared
//! [`crate::cost::predict_bound`].
//!
//! The module also hosts [`render_query`], the IR-level pretty-printer
//! back to the datalog surface syntax — `parse_query ∘ render_query` is
//! the identity on parsed queries, which the seeded round-trip tests
//! lean on.

use crate::cost::predict_bound;
use crate::plan::PlanKind;
use mpcjoin_query::{
    classify, decompose_twigs, dot_dag, plan_reduction, AttrNames, Shape, TreeQuery,
};
use mpcjoin_relation::Attr;
use std::fmt::Write as _;

/// One logical operator.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// Read edge `edge`'s base relation.
    Scan { edge: usize },
    /// Fold the second input into the first, grouping by `on`
    /// (a §7 reduce step: `w(t') ← w(t') ⊗ Σ w(t)`).
    SemijoinReduce { on: Vec<Attr> },
    /// Shuffle-based residual evaluation partitioned by `by`
    /// (the Yannakakis sweeps, or the matmul grid routing).
    Exchange { by: Vec<Attr> },
    /// Contract a star(-like) hub at `center` (§5/§6).
    StarContract { center: Attr },
    /// Evaluate one twig of the §7 decomposition by its most specific
    /// algorithm (`shape` names it).
    TwigEval { shape: &'static str },
    /// Project onto `output` and aggregate away the rest.
    AggregateProject { output: Vec<Attr> },
}

impl LogicalOp {
    /// Short operator name for diagrams and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Scan { .. } => "scan",
            LogicalOp::SemijoinReduce { .. } => "semijoin-reduce",
            LogicalOp::Exchange { .. } => "exchange",
            LogicalOp::StarContract { .. } => "star-contract",
            LogicalOp::TwigEval { .. } => "twig-eval",
            LogicalOp::AggregateProject { .. } => "aggregate-project",
        }
    }
}

/// One node of the operator DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// The operator.
    pub op: LogicalOp,
    /// Indices of input nodes (empty for scans).
    pub inputs: Vec<usize>,
    /// Predicted load of this operator in units (`None` when the cost
    /// model has no per-operator shape for it).
    pub bound: Option<f64>,
}

/// A lowered logical plan: nodes in topological order, the last node is
/// the root.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalPlan {
    /// The physical strategy this plan lowers.
    pub kind: PlanKind,
    /// Operator nodes, topologically ordered.
    pub nodes: Vec<Node>,
}

impl LogicalPlan {
    /// Index of the root (final) operator.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Render the operator DAG as Graphviz DOT, one node per operator
    /// with its predicted per-operator bound, via the query crate's
    /// [`dot_dag`] helper.
    pub fn to_dot(&self, names: Option<&AttrNames>) -> String {
        let label_attr = |a: Attr| -> String {
            match names {
                Some(n) if (a.0 as usize) < n.len() => n.name(a).to_string(),
                _ => format!("{a}"),
            }
        };
        let attr_list = |attrs: &[Attr]| -> String {
            attrs
                .iter()
                .map(|&a| label_attr(a))
                .collect::<Vec<_>>()
                .join(",")
        };
        let nodes: Vec<(String, Vec<usize>)> = self
            .nodes
            .iter()
            .map(|n| {
                let mut label = match &n.op {
                    LogicalOp::Scan { edge } => format!("scan R{edge}"),
                    LogicalOp::SemijoinReduce { on } => {
                        format!("semijoin-reduce on {}", attr_list(on))
                    }
                    LogicalOp::Exchange { by } => format!("exchange by {}", attr_list(by)),
                    LogicalOp::StarContract { center } => {
                        format!("star-contract at {}", label_attr(*center))
                    }
                    LogicalOp::TwigEval { shape } => format!("twig-eval [{shape}]"),
                    LogicalOp::AggregateProject { output } => {
                        format!("aggregate-project {}", attr_list(output))
                    }
                };
                if let Some(b) = n.bound {
                    let _ = write!(label, "\\nbound {b:.1}");
                }
                (label, n.inputs.clone())
            })
            .collect();
        dot_dag(&format!("plan_{:?}", self.kind), &nodes)
    }
}

/// Short name for a twig's shape.
fn shape_name(s: &Shape) -> &'static str {
    match s {
        Shape::FreeConnex => "free-connex",
        Shape::MatMul { .. } => "matmul",
        Shape::Line { .. } => "line",
        Shape::Star { .. } => "star",
        Shape::StarLike(_) => "star-like",
        Shape::Twig => "general-twig",
        Shape::General => "general",
    }
}

/// Lower `q` under physical strategy `kind` into the operator DAG, with
/// per-operator predicted bounds from `(sizes, out, p)`.
pub fn lower(q: &TreeQuery, kind: PlanKind, sizes: &[u64], out: u64, p: u64) -> LogicalPlan {
    let pf = p as f64;
    let n_total: u64 = sizes.iter().sum();
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let mut nodes: Vec<Node> = Vec::new();
    // One scan per edge; `current[e]` tracks the node currently carrying
    // edge `e`'s data through the rewrite passes.
    let mut current: Vec<usize> = Vec::with_capacity(q.edges().len());
    for (e, &sz) in sizes.iter().enumerate() {
        current.push(nodes.len());
        nodes.push(Node {
            op: LogicalOp::Scan { edge: e },
            inputs: vec![],
            bound: Some(sz as f64 / pf),
        });
    }

    let shape = classify(q);
    match (kind, &shape) {
        (PlanKind::MatMul, Shape::MatMul { r1, r2, b, .. }) => {
            let ex = nodes.len();
            nodes.push(Node {
                op: LogicalOp::Exchange { by: vec![*b] },
                inputs: vec![current[*r1], current[*r2]],
                bound: Some(n_total as f64 / pf),
            });
            current = vec![ex];
        }
        (PlanKind::Star, Shape::Star { center, arms }) => {
            let sc = nodes.len();
            nodes.push(Node {
                op: LogicalOp::StarContract { center: *center },
                inputs: arms.iter().map(|&e| current[e]).collect(),
                bound: Some(n_total as f64 / pf),
            });
            current = vec![sc];
        }
        (PlanKind::StarLike, Shape::StarLike(sl)) => {
            let sc = nodes.len();
            nodes.push(Node {
                op: LogicalOp::StarContract { center: sl.center },
                inputs: current.clone(),
                bound: Some(n_total as f64 / pf),
            });
            current = vec![sc];
        }
        (PlanKind::Tree | PlanKind::CanonicalEdgeCover, _) if q.edges().len() > 1 => {
            let red = plan_reduction(q);
            for step in &red.steps {
                let node = nodes.len();
                nodes.push(Node {
                    op: LogicalOp::SemijoinReduce {
                        on: step.on.clone(),
                    },
                    inputs: vec![current[step.absorber], current[step.removed]],
                    bound: Some((sizes[step.absorber] + sizes[step.removed]) as f64 / pf),
                });
                current[step.absorber] = node;
            }
            let kept_nodes: Vec<usize> = red.kept.iter().map(|&e| current[e]).collect();
            if kind == PlanKind::CanonicalEdgeCover || red.reduced.edges().len() == 1 {
                // Residual Yannakakis over the surviving cover relations.
                let ex = nodes.len();
                nodes.push(Node {
                    op: LogicalOp::Exchange {
                        by: red.reduced.output().iter().copied().collect(),
                    },
                    inputs: kept_nodes,
                    bound: Some(red.kept.iter().map(|&e| sizes[e]).sum::<u64>() as f64 / pf),
                });
                current = vec![ex];
            } else {
                let twigs = decompose_twigs(&red.reduced);
                let mut twig_nodes = Vec::with_capacity(twigs.len());
                for twig in &twigs {
                    let node = nodes.len();
                    nodes.push(Node {
                        op: LogicalOp::TwigEval {
                            shape: shape_name(&classify(&twig.query)),
                        },
                        inputs: twig.parent_edges.iter().map(|&e| kept_nodes[e]).collect(),
                        bound: Some(
                            twig.parent_edges
                                .iter()
                                .map(|&e| sizes[red.kept[e]])
                                .sum::<u64>() as f64
                                / pf,
                        ),
                    });
                    twig_nodes.push(node);
                }
                current = twig_nodes;
            }
        }
        // Free-connex, Line, and every fallback pairing: one exchange
        // pass over all relations (the Yannakakis sweeps / the chain
        // shuffles), partitioned by the output attributes.
        _ => {
            let ex = nodes.len();
            nodes.push(Node {
                op: LogicalOp::Exchange { by: output.clone() },
                inputs: current.clone(),
                bound: Some(n_total as f64 / pf),
            });
            current = vec![ex];
        }
    }

    nodes.push(Node {
        op: LogicalOp::AggregateProject { output },
        inputs: current,
        bound: Some(predict_bound(kind, q, sizes, out, p)),
    });
    LogicalPlan { kind, nodes }
}

/// Print `q` back to the datalog surface syntax accepted by
/// `mpcjoin_query::parse_query`.
///
/// With `names` (and, optionally, the original `relation_names`) from a
/// prior parse, the rendering re-parses to an identical [`TreeQuery`]
/// and name table: head outputs appear in sorted-`Attr` order — the
/// interning order of the original parse — and body atoms in edge order.
/// Without `names`, attributes print as `x<i>` and relations as `R<i>`.
pub fn render_query(
    q: &TreeQuery,
    names: Option<&AttrNames>,
    relation_names: Option<&[String]>,
) -> String {
    let label = |a: Attr| -> String {
        match names {
            Some(n) if (a.0 as usize) < n.len() => n.name(a).to_string(),
            _ => format!("x{}", a.0),
        }
    };
    let mut out = String::from("Q(");
    let head: Vec<String> = q.output().iter().map(|&a| label(a)).collect();
    out.push_str(&head.join(", "));
    out.push_str(") :- ");
    let atoms: Vec<String> = q
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let name = relation_names
                .and_then(|ns| ns.get(i).cloned())
                .unwrap_or_else(|| format!("R{i}"));
            let attrs: Vec<String> = e.attrs().iter().map(|&a| label(a)).collect();
            format!("{name}({})", attrs.join(", "))
        })
        .collect();
    out.push_str(&atoms.join(", "));
    out.push('.');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::{parse_query, Edge};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn matmul_lowering_has_exchange_on_the_join_attr() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let plan = lower(&q, PlanKind::MatMul, &[100, 100], 50, 8);
        assert_eq!(plan.nodes.len(), 4); // 2 scans, exchange, aggregate
        assert!(matches!(
            &plan.nodes[2].op,
            LogicalOp::Exchange { by } if by == &vec![B]
        ));
        let root = &plan.nodes[plan.root()];
        assert!(
            matches!(&root.op, LogicalOp::AggregateProject { output } if output == &vec![A, C])
        );
        let expect = predict_bound(PlanKind::MatMul, &q, &[100, 100], 50, 8);
        assert_eq!(root.bound, Some(expect));
    }

    #[test]
    fn tree_lowering_emits_folds_and_twigs() {
        // A–B–C–D–E with y = {A, C, E}: one fold is impossible (already
        // reduced), two twigs.
        let e4 = Attr(4);
        let q = TreeQuery::new(
            vec![
                Edge::binary(A, B),
                Edge::binary(B, C),
                Edge::binary(C, D),
                Edge::binary(D, e4),
            ],
            [A, C, e4],
        );
        let plan = lower(&q, PlanKind::Tree, &[10, 10, 10, 10], 5, 4);
        let twig_count = plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, LogicalOp::TwigEval { .. }))
            .count();
        assert_eq!(twig_count, 2);
        // Both twigs are matmuls.
        for n in &plan.nodes {
            if let LogicalOp::TwigEval { shape } = &n.op {
                assert_eq!(*shape, "matmul");
            }
        }
    }

    #[test]
    fn folds_show_up_as_semijoin_reduce() {
        // Non-output tail D: one fold, then a single matmul twig.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, C],
        );
        let plan = lower(&q, PlanKind::Tree, &[10, 10, 10], 5, 4);
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(&n.op, LogicalOp::SemijoinReduce { on } if on == &vec![C])));
    }

    #[test]
    fn cec_lowering_folds_then_exchanges() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, C],
        );
        let plan = lower(&q, PlanKind::CanonicalEdgeCover, &[10, 10, 10], 5, 4);
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(n.op, LogicalOp::SemijoinReduce { .. })));
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(n.op, LogicalOp::Exchange { .. })));
    }

    #[test]
    fn dot_rendering_lists_operators_and_bounds() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let plan = lower(&q, PlanKind::MatMul, &[100, 100], 50, 8);
        let dot = plan.to_dot(None);
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("scan R0"), "{dot}");
        assert!(dot.contains("exchange by x1"), "{dot}");
        assert!(dot.contains("bound"), "{dot}");
    }

    #[test]
    fn render_round_trips_through_parse() {
        let text = "Q(a, c) :- R(a, b), S(b, c).";
        let p1 = parse_query(text).expect("valid");
        let rendered = render_query(&p1.query, Some(&p1.names), Some(&p1.relation_names));
        let p2 = parse_query(&rendered).expect("re-parses");
        assert_eq!(p1.query, p2.query);
        assert_eq!(p1.relation_names, p2.relation_names);
    }

    #[test]
    fn render_without_names_is_a_fixpoint() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let r1 = render_query(&q, None, None);
        let p1 = parse_query(&r1).expect("valid");
        let r2 = render_query(&p1.query, Some(&p1.names), Some(&p1.relation_names));
        let p2 = parse_query(&r2).expect("valid");
        assert_eq!(p1.query, p2.query);
        assert_eq!(
            r2,
            render_query(&p2.query, Some(&p2.names), Some(&p2.relation_names))
        );
    }
}

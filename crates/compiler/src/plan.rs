//! The physical plan vocabulary: every algorithm the engine can run.
//!
//! [`PlanKind`] used to live in the core planner; it moved here so the
//! compiler's enumerator, cost model, and the core engine's dispatcher
//! all speak one type (core re-exports it unchanged).

/// Which top-level plan the engine chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// Free-connex query: the distributed Yannakakis algorithm is already
    /// output-optimal (§1.2).
    FreeConnexYannakakis,
    /// Sparse matrix multiplication (§3, Theorem 1).
    MatMul,
    /// Line query (§4, Theorem 4).
    Line,
    /// Star query (§5, Theorem 5).
    Star,
    /// Star-like query (§6, Lemma 7).
    StarLike,
    /// General tree pipeline: reduce → twigs → combine (§7, Theorem 6).
    Tree,
    /// Canonical-edge-cover Yannakakis (Tao, "Parallel Acyclic Joins with
    /// Canonical Edge Covers", 2201.03832): fold every non-cover relation
    /// into its cover neighbour (the §7 reduction computes exactly the
    /// complement of a canonical edge cover on binary trees), then run
    /// the Yannakakis baseline on the covered residual.
    CanonicalEdgeCover,
}

impl PlanKind {
    /// All plan kinds, in enumeration order.
    pub const ALL: [PlanKind; 7] = [
        PlanKind::FreeConnexYannakakis,
        PlanKind::MatMul,
        PlanKind::Line,
        PlanKind::Star,
        PlanKind::StarLike,
        PlanKind::Tree,
        PlanKind::CanonicalEdgeCover,
    ];

    /// The stable lower-case wire name (`auto|…` lists in the CLI and
    /// server accept these).
    pub fn wire_name(self) -> &'static str {
        match self {
            PlanKind::FreeConnexYannakakis => "yannakakis",
            PlanKind::MatMul => "matmul",
            PlanKind::Line => "line",
            PlanKind::Star => "star",
            PlanKind::StarLike => "starlike",
            PlanKind::Tree => "tree",
            PlanKind::CanonicalEdgeCover => "cec",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_are_distinct() {
        let names: Vec<&str> = PlanKind::ALL.iter().map(|k| k.wire_name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}

//! Plan-time statistics: relation sizes plus *local* KMV output-size
//! estimates.
//!
//! The distributed §2.2 estimator (`mpcjoin_sketch::estimate_out_chain`)
//! charges its passes to the cluster's cost ledger — correct when an
//! algorithm pays for its own statistics, wrong for an optimizer that
//! must price candidates *before* execution without perturbing measured
//! loads. So the compiler runs the same KMV propagation locally on the
//! unplaced instance: zero simulated load, same sketches, same estimates.

use mpcjoin_mpc::hash::seeded_hash;
use mpcjoin_query::{classify, Shape, TreeQuery};
use mpcjoin_relation::{Attr, Relation, Value};
use mpcjoin_semiring::Semiring;
use mpcjoin_sketch::{Kmv, DEFAULT_INSTANCES, DEFAULT_K};
use std::collections::HashMap;

/// Statistics the enumerator prices candidates with.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Per-edge relation sizes, in edge order.
    pub sizes: Vec<u64>,
    /// Estimated output size (KMV-based for chain and star shapes,
    /// `max |R_i|` fallback otherwise).
    pub out: u64,
}

impl Stats {
    /// Collect sizes and a local output estimate for `q` on `instance`
    /// (`instance[e]` is edge `e`'s relation, as everywhere else).
    pub fn collect<S: Semiring>(q: &TreeQuery, instance: &[Relation<S>]) -> Stats {
        let sizes: Vec<u64> = instance.iter().map(|r| r.len() as u64).collect();
        let out =
            estimate_out(q, instance).unwrap_or_else(|| sizes.iter().copied().max().unwrap_or(0));
        Stats { sizes, out }
    }
}

/// Estimate `OUT` locally, or `None` when the shape has no linear-load
/// estimator (the paper's chicken-and-egg: free-connex needs none, trees
/// have none).
fn estimate_out<S: Semiring>(q: &TreeQuery, instance: &[Relation<S>]) -> Option<u64> {
    match classify(q) {
        Shape::MatMul { r1, r2, a, b, c } => {
            let chain = [&instance[r1], &instance[r2]];
            Some(chain_estimate(&chain, &[a, b, c]))
        }
        Shape::Line { edges, attrs } => {
            let chain: Vec<&Relation<S>> = edges.iter().map(|&e| &instance[e]).collect();
            Some(chain_estimate(&chain, &attrs))
        }
        Shape::Star { center, arms } => Some(star_estimate(q, instance, center, &arms)),
        _ => None,
    }
}

/// Local mirror of the §2.2 chain estimator: per-group KMV sketches of
/// reachable far-end values, propagated down the chain,
/// median-of-instances per group, summed.
fn chain_estimate<S: Semiring>(chain: &[&Relation<S>], attrs: &[Attr]) -> u64 {
    let n = chain.len();
    debug_assert_eq!(attrs.len(), n + 1);

    let last = chain[n - 1];
    let from = last.schema().positions_of(&[attrs[n - 1]])[0];
    let to = last.schema().positions_of(&[attrs[n]])[0];
    let mut stats: HashMap<Value, Vec<Kmv>> = HashMap::new();
    for (row, _) in last.entries() {
        let sketches = stats
            .entry(row[from])
            .or_insert_with(|| vec![Kmv::new(DEFAULT_K); DEFAULT_INSTANCES]);
        for (j, s) in sketches.iter_mut().enumerate() {
            s.insert(seeded_hash(j as u64, &row[to]));
        }
    }

    for i in (0..n - 1).rev() {
        let rel = chain[i];
        let from = rel.schema().positions_of(&[attrs[i]])[0];
        let to = rel.schema().positions_of(&[attrs[i + 1]])[0];
        let mut next: HashMap<Value, Vec<Kmv>> = HashMap::new();
        for (row, _) in rel.entries() {
            let Some(reached) = stats.get(&row[to]) else {
                continue;
            };
            match next.entry(row[from]) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(reached) {
                        a.merge(b);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(reached.clone());
                }
            }
        }
        stats = next;
    }

    let mut total = 0u64;
    for sketches in stats.values() {
        let mut ests: Vec<u64> = sketches.iter().map(Kmv::estimate).collect();
        ests.sort_unstable();
        total = total.saturating_add(ests[ests.len() / 2]);
    }
    total
}

/// Star estimate: `OUT = Σ_c ∏_arm |endpoints_arm(c)|`, each per-center
/// distinct count sketched with a KMV (exact below `k` distinct).
fn star_estimate<S: Semiring>(
    q: &TreeQuery,
    instance: &[Relation<S>],
    center: Attr,
    arms: &[usize],
) -> u64 {
    let mut per_arm: Vec<HashMap<Value, Vec<Kmv>>> = Vec::with_capacity(arms.len());
    for &e in arms {
        let rel = &instance[e];
        let c_pos = rel.schema().positions_of(&[center])[0];
        let endpoint = q.edges()[e].other(center);
        let e_pos = rel.schema().positions_of(&[endpoint])[0];
        let mut groups: HashMap<Value, Vec<Kmv>> = HashMap::new();
        for (row, _) in rel.entries() {
            let sketches = groups
                .entry(row[c_pos])
                .or_insert_with(|| vec![Kmv::new(DEFAULT_K); DEFAULT_INSTANCES]);
            for (j, s) in sketches.iter_mut().enumerate() {
                s.insert(seeded_hash(j as u64, &row[e_pos]));
            }
        }
        per_arm.push(groups);
    }
    let Some(first) = per_arm.first() else {
        return 0;
    };
    let mut total = 0u64;
    'center: for c in first.keys() {
        let mut product = 1u64;
        for groups in &per_arm {
            let Some(sketches) = groups.get(c) else {
                continue 'center;
            };
            let mut ests: Vec<u64> = sketches.iter().map(Kmv::estimate).collect();
            ests.sort_unstable();
            product = product.saturating_mul(ests[ests.len() / 2]);
        }
        total = total.saturating_add(product);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn small_chain_is_exact() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, [(1, 10), (2, 10)]),
            Relation::<Count>::binary_ones(B, C, [(10, 100), (10, 101)]),
        ];
        // Below k distinct the sketch is exact: OUT = 2 + 2.
        assert_eq!(Stats::collect(&q, &rels).out, 4);
    }

    #[test]
    fn large_chain_is_within_constant_factor() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        for a in 0..50u64 {
            for b in 0..(1 + a % 5) {
                p1.push((a, b));
            }
        }
        for b in 0..5u64 {
            for c in 0..(20 * (b + 1)) {
                p2.push((b, c));
            }
        }
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, p1),
            Relation::<Count>::binary_ones(B, C, p2),
        ];
        let exact = oracle::exact_out(&q, &rels);
        let est = Stats::collect(&q, &rels).out;
        assert!(
            est >= exact / 3 && est <= exact * 3,
            "estimate {est} vs exact {exact}"
        );
    }

    // A tiny local oracle for the test above, kept inside the test module
    // so the crate has no dependency on the execution stack.
    mod oracle {
        use super::*;
        use std::collections::HashSet;

        pub fn exact_out(q: &TreeQuery, rels: &[Relation<Count>]) -> u64 {
            // Only used on the A–B–C chain above.
            let _ = q;
            let mut by_b: HashMap<u64, HashSet<u64>> = HashMap::new();
            for (row, _) in rels[1].entries() {
                by_b.entry(row[0]).or_default().insert(row[1]);
            }
            let mut per_a: HashMap<u64, HashSet<u64>> = HashMap::new();
            for (row, _) in rels[0].entries() {
                if let Some(cs) = by_b.get(&row[1]) {
                    per_a.entry(row[0]).or_default().extend(cs.iter().copied());
                }
            }
            per_a.values().map(|s| s.len() as u64).sum()
        }
    }

    #[test]
    fn star_product_is_exact_on_small_domains() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(A, D, [(1, 0), (2, 0), (1, 1)]),
            Relation::<Count>::binary_ones(B, D, [(5, 0), (6, 0)]),
            Relation::<Count>::binary_ones(C, D, [(7, 0), (8, 1)]),
        ];
        // center 0: 2·2·1 = 4; center 1: arm C has {8} but arm B has no
        // group → contributes 0.
        assert_eq!(Stats::collect(&q, &rels).out, 4);
    }

    #[test]
    fn unsupported_shapes_fall_back_to_n_max() {
        // Free-connex: no estimator needed, fallback applies.
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..30u64).map(|i| (i, i % 3))),
            Relation::<Count>::binary_ones(B, C, (0..10u64).map(|i| (i % 3, i))),
        ];
        assert_eq!(Stats::collect(&q, &rels).out, 30);
    }
}

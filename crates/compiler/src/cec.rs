//! Canonical edge covers (Tao, 2201.03832, §3).
//!
//! An *edge cover* of the query hypergraph picks a subset of relations
//! touching every attribute; the *canonical* one is the deterministic
//! greedy cover that (1) takes every leaf attribute's unique edge —
//! forced, a cover has no choice there — and then (2) sweeps the
//! remaining attributes in order, adding the lowest-index incident edge
//! for any attribute still uncovered. On trees this is minimum, and the
//! non-cover edges are exactly the relations the §7 reduction can fold
//! into a cover neighbour — which is why [`crate::PlanKind::CanonicalEdgeCover`]
//! executes as "fold the complement, Yannakakis the cover".

use mpcjoin_query::TreeQuery;

/// The canonical edge cover of `q`: sorted edge indices.
pub fn canonical_edge_cover(q: &TreeQuery) -> Vec<usize> {
    let attrs = q.attrs();
    let mut in_cover = vec![false; q.edges().len()];

    // Forced picks: every degree-1 attribute's unique edge.
    for &a in &attrs {
        if q.degree(a) == 1 {
            let e = (0..q.edges().len())
                .find(|&i| q.edges()[i].contains(a))
                .expect("degree-1 attribute has an incident edge");
            in_cover[e] = true;
        }
    }
    // Greedy sweep for anything still uncovered.
    for &a in &attrs {
        let is_covered = (0..q.edges().len()).any(|i| in_cover[i] && q.edges()[i].contains(a));
        if !is_covered {
            let e = (0..q.edges().len())
                .find(|&i| q.edges()[i].contains(a))
                .expect("every attribute is in some relation");
            in_cover[e] = true;
        }
    }

    (0..q.edges().len()).filter(|&i| in_cover[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Attr;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn chain_cover_takes_the_end_edges() {
        // A–B–C–D: leaves A and D force edges 0 and 2; B and C are then
        // covered, so the middle edge stays out.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        assert_eq!(canonical_edge_cover(&q), vec![0, 2]);
    }

    #[test]
    fn star_cover_is_every_arm() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        assert_eq!(canonical_edge_cover(&q), vec![0, 1, 2]);
    }

    #[test]
    fn cover_touches_every_attribute() {
        let q = TreeQuery::new(
            vec![
                Edge::binary(A, B),
                Edge::binary(B, C),
                Edge::binary(C, D),
                Edge::binary(D, Attr(4)),
            ],
            [A, Attr(4)],
        );
        let cover = canonical_edge_cover(&q);
        for a in q.attrs() {
            assert!(
                cover.iter().any(|&e| q.edges()[e].contains(a)),
                "attribute {a:?} uncovered"
            );
        }
    }
}

//! The query compiler: logical plan IR, plan enumeration, and cost-based
//! physical plan selection driven by the Table-1 bounds.
//!
//! Pipeline (all structural / statistical — no cluster, no simulated
//! load):
//!
//! 1. **Statistics** ([`Stats`]) — per-edge relation sizes plus a *local*
//!    KMV output-size estimate (the §2.2 sketches run in-process, so
//!    planning never perturbs the cost ledger).
//! 2. **Enumeration** ([`enumerate_plans`]) — every applicable
//!    [`PlanKind`]: the shape's structural algorithm, the §7 tree
//!    pipeline, the Yannakakis baseline, and the canonical-edge-cover
//!    variant (Tao, 2201.03832).
//! 3. **Costing** ([`predict_bound`]) — the Table-1 bound formulas. This
//!    is the *same* function the core `BoundAuditor` audits finished runs
//!    with: optimizer and auditor provably share one formula.
//! 4. **Selection** — hysteretic: the structural pick wins unless an
//!    alternative's predicted bound is better by more than
//!    [`PREFERENCE_MARGIN`].
//! 5. **Lowering** ([`lower`]) — the winner becomes a typed operator DAG
//!    ([`LogicalPlan`]) with per-operator predicted bounds, renderable as
//!    DOT or as the stable `mpcjoin-plan-v1` JSON ([`Explain::to_json`]).

mod cec;
mod cost;
mod enumerate;
mod explain;
mod ir;
mod plan;
mod stats;

pub use cec::canonical_edge_cover;
pub use cost::predict_bound;
pub use enumerate::{
    applicable, enumerate_plans, heuristic_kind, select_plan, Candidate, PREFERENCE_MARGIN,
};
pub use explain::{explain, Explain, PLAN_SCHEMA};
pub use ir::{lower, render_query, LogicalOp, LogicalPlan, Node};
pub use plan::PlanKind;
pub use stats::Stats;

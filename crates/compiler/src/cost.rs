//! The shared cost model: Table-1 bound formulas keyed by [`PlanKind`].
//!
//! This is the *single* implementation of "what load should plan `k` incur
//! on instance `(sizes, OUT, p)`": the core `BoundAuditor` calls
//! [`predict_bound`] to audit finished runs, and the compiler's enumerator
//! calls it (with estimated `OUT`) to price candidates. One code path, so
//! a cost-model bug is caught by the existing zero-violation audit tests.

use crate::plan::PlanKind;
use mpcjoin_matmul::theory;
use mpcjoin_query::{classify, plan_reduction, Shape, TreeQuery};

/// The closed-form bound (in load units, constants stripped) for `plan`
/// executed on an instance with the given per-edge relation sizes, output
/// size, and server count.
///
/// `Line`/`Star`/`StarLike` share the paper's star/line bound and `Tree`
/// uses Theorem 6, both parameterized by `N = max |R_i|` (the convention
/// of Table 1 and the bench harness). The Yannakakis baseline is audited
/// against *its own* Table-1 column, which depends on the query shape it
/// ran on. `CanonicalEdgeCover` is priced as its fold passes (one
/// linear pass over the instance per fold) plus the Yannakakis column of
/// the residual query left after folding.
pub fn predict_bound(plan: PlanKind, q: &TreeQuery, sizes: &[u64], out: u64, p: u64) -> f64 {
    let n_max = sizes.iter().copied().max().unwrap_or(0);
    let n_total: u64 = sizes.iter().sum();
    match plan {
        PlanKind::MatMul => {
            let (n1, n2) = match classify(q) {
                Shape::MatMul { r1, r2, .. } => (sizes[r1], sizes[r2]),
                _ => (n_max, n_max),
            };
            theory::new_mm_bound(n1, n2, out, p)
        }
        PlanKind::Line | PlanKind::Star | PlanKind::StarLike => {
            theory::new_star_line_bound(n_max, out, p)
        }
        PlanKind::Tree => theory::new_tree_bound(n_max, out, p),
        PlanKind::FreeConnexYannakakis => match classify(q) {
            Shape::FreeConnex => theory::yannakakis_free_connex_bound(n_total, out, p),
            Shape::MatMul { r1, r2, .. } => {
                theory::yannakakis_mm_bound(sizes[r1] + sizes[r2], out, p)
            }
            Shape::Star { arms, .. } => {
                theory::yannakakis_star_bound(n_max, out, p, arms.len() as u32)
            }
            _ => theory::yannakakis_line_bound(n_max, out, p),
        },
        PlanKind::CanonicalEdgeCover => {
            let red = plan_reduction(q);
            let fold_cost = red.steps.len() as f64 * n_total as f64 / p as f64;
            let kept_sizes: Vec<u64> = red.kept.iter().map(|&i| sizes[i]).collect();
            let kept_max = kept_sizes.iter().copied().max().unwrap_or(0);
            let kept_total: u64 = kept_sizes.iter().sum();
            let core = if red.reduced.edges().len() <= 1 {
                theory::yannakakis_free_connex_bound(kept_total, out, p)
            } else {
                match classify(&red.reduced) {
                    Shape::FreeConnex => theory::yannakakis_free_connex_bound(kept_total, out, p),
                    Shape::MatMul { r1, r2, .. } => {
                        theory::yannakakis_mm_bound(kept_sizes[r1] + kept_sizes[r2], out, p)
                    }
                    Shape::Star { arms, .. } => {
                        theory::yannakakis_star_bound(kept_max, out, p, arms.len() as u32)
                    }
                    _ => theory::yannakakis_line_bound(kept_max, out, p),
                }
            };
            fold_cost + core
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Attr;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn mm_query() -> TreeQuery {
        TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
    }

    #[test]
    fn matmul_bound_uses_both_relation_sizes() {
        let b = predict_bound(
            PlanKind::MatMul,
            &mm_query(),
            &[1 << 10, 1 << 14],
            1 << 12,
            64,
        );
        assert!((b - theory::new_mm_bound(1 << 10, 1 << 14, 1 << 12, 64)).abs() < 1e-9);
    }

    #[test]
    fn baseline_bound_follows_query_shape() {
        let b = predict_bound(
            PlanKind::FreeConnexYannakakis,
            &mm_query(),
            &[100, 100],
            50,
            8,
        );
        assert!((b - theory::yannakakis_mm_bound(200, 50, 8)).abs() < 1e-9);
    }

    #[test]
    fn cec_on_irreducible_query_is_the_yannakakis_column() {
        // MatMul is irreducible: no folds, the CEC bound is exactly the
        // baseline's matmul column.
        let b = predict_bound(
            PlanKind::CanonicalEdgeCover,
            &mm_query(),
            &[100, 120],
            50,
            8,
        );
        assert!((b - theory::yannakakis_mm_bound(220, 50, 8)).abs() < 1e-9);
    }

    #[test]
    fn cec_charges_one_linear_pass_per_fold() {
        // A — B — C — D with y = {A}: two folds, one surviving relation.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A],
        );
        let sizes = [100u64, 100, 100];
        let b = predict_bound(PlanKind::CanonicalEdgeCover, &q, &sizes, 10, 8);
        let folds = 2.0 * 300.0 / 8.0;
        let core = theory::yannakakis_free_connex_bound(100, 10, 8);
        assert!((b - folds - core).abs() < 1e-9);
    }
}

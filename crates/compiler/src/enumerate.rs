//! Physical plan enumeration and cost-based selection.
//!
//! For any query the applicable strategies are: the shape's structural
//! (heuristic) algorithm — what the old `Auto` dispatch ran — plus the
//! always-applicable [`PlanKind::Tree`] pipeline,
//! [`PlanKind::FreeConnexYannakakis`] baseline, and
//! [`PlanKind::CanonicalEdgeCover`] variant. Every candidate is priced by
//! the shared cost model ([`crate::cost::predict_bound`]) on the
//! collected [`Stats`].
//!
//! Selection is *hysteretic*: the structural pick wins unless an
//! alternative's predicted bound is smaller by more than
//! [`PREFERENCE_MARGIN`]. The bounds are `O(·)` shapes with constants
//! stripped, so a small predicted edge is noise — switching plans on it
//! would trade a provably-matching bound for a coin flip. The margin
//! also makes the cost-based engine's choices a conservative extension
//! of the old structural dispatch: on every Table-1 workload the two
//! agree, so measured loads are identical by construction.

use crate::cost::predict_bound;
use crate::plan::PlanKind;
use crate::stats::Stats;
use mpcjoin_query::{classify, Shape, TreeQuery};

/// How much smaller (multiplicatively) an alternative's predicted bound
/// must be to displace the structural pick.
pub const PREFERENCE_MARGIN: f64 = 2.0;

/// One enumerated physical strategy with its predicted bound.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The strategy.
    pub kind: PlanKind,
    /// Predicted Table-1 bound on the collected statistics (load units).
    pub bound: f64,
    /// Whether the selector chose this candidate.
    pub selected: bool,
    /// Why it was chosen or rejected.
    pub reason: String,
}

/// The algorithm the structural (pre-cost-based) dispatch runs for `q`'s
/// shape.
pub fn heuristic_kind(q: &TreeQuery) -> PlanKind {
    match classify(q) {
        Shape::FreeConnex => PlanKind::FreeConnexYannakakis,
        Shape::MatMul { .. } => PlanKind::MatMul,
        Shape::Line { .. } => PlanKind::Line,
        Shape::Star { .. } => PlanKind::Star,
        Shape::StarLike(_) => PlanKind::StarLike,
        Shape::Twig | Shape::General => PlanKind::Tree,
    }
}

/// Every physical strategy applicable to `q`, structural pick first.
pub fn applicable(q: &TreeQuery) -> Vec<PlanKind> {
    let mut kinds = vec![heuristic_kind(q)];
    for k in [
        PlanKind::Tree,
        PlanKind::FreeConnexYannakakis,
        PlanKind::CanonicalEdgeCover,
    ] {
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    }
    kinds
}

/// Enumerate and price every applicable strategy, then select one. The
/// returned candidates are in enumeration order (structural pick first);
/// exactly one has `selected == true`.
pub fn enumerate_plans(q: &TreeQuery, stats: &Stats, p: u64) -> Vec<Candidate> {
    let kinds = applicable(q);
    let bounds: Vec<f64> = kinds
        .iter()
        .map(|&k| predict_bound(k, q, &stats.sizes, stats.out, p))
        .collect();
    let heuristic_bound = bounds[0];

    // Best alternative strictly beating the margin (ties keep the
    // earlier, i.e. enumeration-order, candidate).
    let mut winner = 0usize;
    for i in 1..kinds.len() {
        let beats_heuristic = bounds[i] * PREFERENCE_MARGIN < heuristic_bound;
        let beats_current = winner == 0 || bounds[i] < bounds[winner];
        if beats_heuristic && beats_current {
            winner = i;
        }
    }

    kinds
        .iter()
        .zip(&bounds)
        .enumerate()
        .map(|(i, (&kind, &bound))| {
            let (selected, reason) = if i == winner {
                if i == 0 {
                    (
                        true,
                        format!(
                            "structural pick for the query shape; no alternative beats it \
                             by the {PREFERENCE_MARGIN}x margin"
                        ),
                    )
                } else {
                    (
                        true,
                        format!(
                            "predicted bound {bound:.1} beats the structural pick \
                             {:?} ({heuristic_bound:.1}) by more than {PREFERENCE_MARGIN}x",
                            kinds[0]
                        ),
                    )
                }
            } else if i == 0 {
                (
                    false,
                    format!(
                        "structural pick displaced: {:?} predicts {:.1} vs {heuristic_bound:.1}",
                        kinds[winner], bounds[winner]
                    ),
                )
            } else {
                (
                    false,
                    format!(
                        "predicted bound {bound:.1} does not beat {:?} ({:.1}) \
                         by the {PREFERENCE_MARGIN}x margin",
                        kinds[winner], bounds[winner]
                    ),
                )
            };
            Candidate {
                kind,
                bound,
                selected,
                reason,
            }
        })
        .collect()
}

/// The selected strategy for `q` under the collected statistics.
pub fn select_plan(q: &TreeQuery, stats: &Stats, p: u64) -> PlanKind {
    enumerate_plans(q, stats, p)
        .into_iter()
        .find(|c| c.selected)
        .expect("exactly one candidate is selected")
        .kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Attr;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn structural_pick_leads_and_exactly_one_selected() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let stats = Stats {
            sizes: vec![100, 100],
            out: 50,
        };
        let cands = enumerate_plans(&q, &stats, 8);
        assert_eq!(cands[0].kind, PlanKind::MatMul);
        assert_eq!(cands.iter().filter(|c| c.selected).count(), 1);
        // The four always-applicable strategies, deduped.
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn hysteresis_keeps_the_structural_pick_on_close_calls() {
        // A star with modest OUT: the FCY bound can undercut the star
        // bound, but not by 2x — the structural pick must hold.
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let stats = Stats {
            sizes: vec![20, 20, 20],
            out: 40,
        };
        assert_eq!(select_plan(&q, &stats, 8), PlanKind::Star);
    }

    #[test]
    fn free_connex_queries_enumerate_without_duplicates() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
        let stats = Stats {
            sizes: vec![10, 10],
            out: 10,
        };
        let cands = enumerate_plans(&q, &stats, 4);
        // FCY is both the structural pick and an always-applicable
        // alternative: it appears once.
        assert_eq!(
            cands
                .iter()
                .filter(|c| c.kind == PlanKind::FreeConnexYannakakis)
                .count(),
            1
        );
        assert_eq!(cands.len(), 3);
        assert_eq!(select_plan(&q, &stats, 4), PlanKind::FreeConnexYannakakis);
    }

    #[test]
    fn a_decisive_gap_displaces_the_structural_pick() {
        // A–B–C–D with y = {A, C}: General shape (heuristic Tree), but
        // one fold leaves a matmul residual, so CEC prices at
        // fold + N·√OUT/p while Tree prices at N·OUT^{2/3}/p. With a
        // huge OUT statistic the gap exceeds the 2x margin and the
        // selector must switch.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, C],
        );
        assert_eq!(heuristic_kind(&q), PlanKind::Tree);
        let stats = Stats {
            sizes: vec![1000, 1000, 1000],
            out: 1_000_000,
        };
        let cands = enumerate_plans(&q, &stats, 8);
        assert_eq!(select_plan(&q, &stats, 8), PlanKind::CanonicalEdgeCover);
        let tree = cands.iter().find(|c| c.kind == PlanKind::Tree).unwrap();
        let cec = cands
            .iter()
            .find(|c| c.kind == PlanKind::CanonicalEdgeCover)
            .unwrap();
        assert!(cec.bound * PREFERENCE_MARGIN < tree.bound);
        assert!(!tree.selected && cec.selected);
        assert!(cands.iter().all(|c| c.bound.is_finite()));
    }
}

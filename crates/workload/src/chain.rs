//! Line-query workloads for the §4 experiments.

use crate::DetRng;
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_relation::{Attr, Relation};
use mpcjoin_semiring::Semiring;
use std::collections::HashSet;

/// A generated line-query instance with its query and exact output size.
pub struct ChainInstance<S: Semiring> {
    /// The line query over `attrs`.
    pub query: TreeQuery,
    /// `A1, …, A_{n+1}`.
    pub attrs: Vec<Attr>,
    /// One relation per hop.
    pub rels: Vec<Relation<S>>,
    /// Exact `|π_{A1, An+1}|` of the join.
    pub out: u64,
}

/// Uniform random chain: `hops` relations of `n` distinct tuples each over
/// per-level domains of size `dom`.
pub fn uniform<S: Semiring>(rng: &mut DetRng, hops: usize, n: usize, dom: u64) -> ChainInstance<S> {
    let attrs: Vec<Attr> = (0..=hops as u32).map(Attr).collect();
    let mut rels = Vec::with_capacity(hops);
    for h in 0..hops {
        let mut set = HashSet::with_capacity(n);
        while set.len() < n.min((dom * dom) as usize) {
            set.insert((rng.gen_range(0..dom), rng.gen_range(0..dom)));
        }
        let mut v: Vec<(u64, u64)> = set.into_iter().collect();
        v.sort_unstable();
        rels.push(Relation::binary_ones(attrs[h], attrs[h + 1], v));
    }
    finish(attrs, rels)
}

/// Layered chain with a *target fan-out* per hop: every level value `v`
/// connects to `fanout` consecutive values of the next level (domains of
/// size `dom`), giving smoothly tunable OUT at fixed N.
pub fn layered<S: Semiring>(hops: usize, dom: u64, fanout: u64) -> ChainInstance<S> {
    let attrs: Vec<Attr> = (0..=hops as u32).map(Attr).collect();
    let mut rels = Vec::with_capacity(hops);
    for h in 0..hops {
        let mut v = Vec::new();
        for x in 0..dom {
            for f in 0..fanout {
                v.push((x, (x + f) % dom));
            }
        }
        rels.push(Relation::binary_ones(attrs[h], attrs[h + 1], v));
    }
    finish(attrs, rels)
}

/// The *funnel* chain: the workload family on which the Yannakakis
/// baseline pays its `N·OUT/p` worst case while §4's algorithm collapses
/// early.
///
/// Per group: one `A1` value fans out to `k` private `A2` values, which
/// form a complete bipartite `k × k` block to the group's `A3` values,
/// which all fan in to the same `m` `A4` values. The baseline's
/// leaf-to-root merge materializes the `k²·m` intermediate per group; the
/// paper's algorithm joins `R1 ⋈ R2` first, where the `k²` witnesses
/// collapse to `k` `(A1, A3)` pairs. `OUT = groups·m` exactly.
pub fn funnel<S: Semiring>(groups: u64, k: u64, m: u64) -> ChainInstance<S> {
    let attrs: Vec<Attr> = (0..=3).map(Attr).collect();
    let mut r1 = Vec::new();
    let mut r2 = Vec::new();
    let mut r3 = Vec::new();
    for g in 0..groups {
        let a2_base = g * k;
        let a3_base = g * k;
        let a4_base = g * m;
        for i in 0..k {
            r1.push((g, a2_base + i));
            for j in 0..k {
                r2.push((a2_base + i, a3_base + j));
            }
            for j in 0..m {
                r3.push((a3_base + i, a4_base + j));
            }
        }
    }
    finish(
        attrs.clone(),
        vec![
            Relation::binary_ones(attrs[0], attrs[1], r1),
            Relation::binary_ones(attrs[1], attrs[2], r2),
            Relation::binary_ones(attrs[2], attrs[3], r3),
        ],
    )
}

fn finish<S: Semiring>(attrs: Vec<Attr>, rels: Vec<Relation<S>>) -> ChainInstance<S> {
    let hops = rels.len();
    let query = TreeQuery::new(
        (0..hops)
            .map(|i| Edge::binary(attrs[i], attrs[i + 1]))
            .collect(),
        [attrs[0], attrs[hops]],
    );
    let out = exact_out(&rels);
    ChainInstance {
        query,
        attrs,
        rels,
        out,
    }
}

/// Exact `|π_{A1,An+1}|` by forward reachable-set propagation.
fn exact_out<S: Semiring>(rels: &[Relation<S>]) -> u64 {
    use std::collections::HashMap;
    // reach[v] = set of A1 values reaching v at the current level.
    let mut reach: HashMap<u64, HashSet<u64>> = HashMap::new();
    for (row, _) in rels[0].entries() {
        reach.entry(row[1]).or_default().insert(row[0]);
    }
    for rel in &rels[1..] {
        let mut next: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (row, _) in rel.entries() {
            if let Some(srcs) = reach.get(&row[0]) {
                next.entry(row[1]).or_default().extend(srcs.iter().copied());
            }
        }
        reach = next;
    }
    reach.values().map(|s| s.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::Count;
    use mpcjoin_yannakakis::sequential_join_aggregate;

    #[test]
    fn layered_out_matches_oracle() {
        let inst = layered::<Count>(3, 10, 3);
        let oracle = sequential_join_aggregate(&inst.query, &inst.rels);
        assert_eq!(oracle.len() as u64, inst.out);
    }

    #[test]
    fn uniform_out_matches_oracle() {
        let mut rng = crate::rng(3);
        let inst = uniform::<Count>(&mut rng, 3, 60, 12);
        let oracle = sequential_join_aggregate(&inst.query, &inst.rels);
        assert_eq!(oracle.len() as u64, inst.out);
    }

    #[test]
    fn fanout_controls_out() {
        let narrow = layered::<Count>(3, 20, 1);
        let wide = layered::<Count>(3, 20, 5);
        assert!(wide.out > narrow.out);
    }
}

//! Loading relations from delimited text files.
//!
//! Real inputs have string keys; the engine computes over dictionary-
//! encoded `u64` values. [`StringDict`] interns strings to dense codes
//! (shared across all relations of a query so join keys line up), and
//! [`read_relation`] parses a TSV/CSV file into an annotated relation:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! alice   movies
//! bob     movies    3      ← optional third column: integer weight
//! ```
//!
//! The optional weight column feeds whichever semiring the caller maps
//! it into (`Count`, `TropicalMin` edge costs, …); without it every
//! tuple is annotated `1`.

use mpcjoin_relation::{Attr, Relation, Schema, Value};
use mpcjoin_semiring::Semiring;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// A shared string-interning dictionary for input values.
#[derive(Debug, Default)]
pub struct StringDict {
    forward: HashMap<String, Value>,
    backward: Vec<String>,
}

impl StringDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, allocating a dense code on first sight.
    pub fn encode(&mut self, s: &str) -> Value {
        if let Some(&v) = self.forward.get(s) {
            return v;
        }
        let v = self.backward.len() as Value;
        self.forward.insert(s.to_string(), v);
        self.backward.push(s.to_string());
        v
    }

    /// The string behind `code`, if allocated.
    pub fn decode(&self, code: Value) -> Option<&str> {
        self.backward.get(code as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.backward.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.backward.is_empty()
    }
}

/// A data-loading error with file/line context.
#[derive(Debug)]
pub struct LoadError(String);

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load error: {}", self.0)
    }
}

impl std::error::Error for LoadError {}

/// Parse delimited text (tabs, commas or runs of spaces) into a binary
/// relation over `(x, y)`; the optional third column is passed to
/// `weight` to produce the annotation (`None` for two-column rows).
pub fn parse_relation<S: Semiring>(
    text: &str,
    origin: &str,
    x: Attr,
    y: Attr,
    dict: &mut StringDict,
    mut weight: impl FnMut(Option<i64>) -> S,
) -> Result<Relation<S>, LoadError> {
    let mut rel = Relation::empty(Schema::binary(x, y));
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line
            .split(['\t', ',', ' '])
            .filter(|f| !f.is_empty())
            .collect();
        let (a, b, w) = match fields.as_slice() {
            [a, b] => (*a, *b, None),
            [a, b, w] => {
                let parsed = w.parse::<i64>().map_err(|_| {
                    LoadError(format!(
                        "{origin}:{}: weight `{w}` is not an integer",
                        lineno + 1
                    ))
                })?;
                (*a, *b, Some(parsed))
            }
            _ => {
                return Err(LoadError(format!(
                    "{origin}:{}: expected 2 or 3 columns, got {}",
                    lineno + 1,
                    fields.len()
                )))
            }
        };
        rel.push(vec![dict.encode(a), dict.encode(b)], weight(w));
    }
    Ok(rel)
}

/// [`parse_relation`] reading from a file path.
pub fn read_relation<S: Semiring>(
    path: &Path,
    x: Attr,
    y: Attr,
    dict: &mut StringDict,
    weight: impl FnMut(Option<i64>) -> S,
) -> Result<Relation<S>, LoadError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| LoadError(format!("{}: {e}", path.display())))?;
    parse_relation(&text, &path.display().to_string(), x, y, dict, weight)
}

/// Render an output relation back to strings via the dictionary (codes
/// the dictionary never issued — e.g. synthetic values — print as
/// `#<code>`), one row per line, sorted.
pub fn render_output<S: Semiring + fmt::Debug>(
    rel: &Relation<S>,
    dict: &StringDict,
    limit: usize,
) -> String {
    let mut out = String::new();
    let rows = rel.canonical();
    for (row, annot) in rows.iter().take(limit) {
        let cols: Vec<String> = row
            .iter()
            .map(|&v| {
                dict.decode(v)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("#{v}"))
            })
            .collect();
        out.push_str(&format!("{}\t{annot:?}\n", cols.join("\t")));
    }
    if rows.len() > limit {
        out.push_str(&format!("… and {} more rows\n", rows.len() - limit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::{Count, TropicalMin};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);

    #[test]
    fn parses_two_and_three_column_rows() {
        let mut dict = StringDict::new();
        let rel: Relation<Count> = parse_relation(
            "# header comment\nalice\tmovies\nbob\tmovies\t3\n\ncarol books 2\n",
            "test",
            A,
            B,
            &mut dict,
            |w| Count(w.unwrap_or(1) as u64),
        )
        .expect("valid");
        assert_eq!(rel.len(), 3);
        assert_eq!(dict.len(), 5);
        let alice = dict.encode("alice");
        let movies = dict.encode("movies");
        assert!(rel.canonical().contains(&(vec![alice, movies], Count(1))));
    }

    #[test]
    fn weights_feed_semirings() {
        let mut dict = StringDict::new();
        let rel: Relation<TropicalMin> =
            parse_relation("x y 4\ny z 7\n", "test", A, B, &mut dict, |w| {
                TropicalMin::finite(w.unwrap_or(0))
            })
            .expect("valid");
        assert_eq!(rel.entries()[0].1, TropicalMin::finite(4));
    }

    #[test]
    fn reports_bad_rows_with_position() {
        let mut dict = StringDict::new();
        let e = parse_relation::<Count>("a b\nc\n", "input.tsv", A, B, &mut dict, |_| Count(1))
            .unwrap_err();
        assert!(e.to_string().contains("input.tsv:2"), "{e}");
        let e2 =
            parse_relation::<Count>("a b x\n", "f", A, B, &mut dict, |_| Count(1)).unwrap_err();
        assert!(e2.to_string().contains("not an integer"), "{e2}");
    }

    #[test]
    fn dictionary_is_shared_and_stable() {
        let mut dict = StringDict::new();
        let _: Relation<Count> =
            parse_relation("a b\n", "f1", A, B, &mut dict, |_| Count(1)).unwrap();
        let r2: Relation<Count> =
            parse_relation("b c\n", "f2", A, B, &mut dict, |_| Count(1)).unwrap();
        // "b" got the same code in both files — join keys line up.
        assert_eq!(r2.entries()[0].0[0], 1);
        assert_eq!(dict.decode(1), Some("b"));
    }

    #[test]
    fn render_decodes_and_limits() {
        let mut dict = StringDict::new();
        let rel: Relation<Count> =
            parse_relation("a b\nc d\ne f\n", "f", A, B, &mut dict, |_| Count(1)).unwrap();
        let text = render_output(&rel, &dict, 2);
        assert!(text.contains("a\tb"));
        assert!(text.contains("and 1 more rows"));
    }
}

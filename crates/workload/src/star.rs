//! Star and star-like workloads for the §5–§6 experiments.

use crate::DetRng;
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_relation::{Attr, Relation};
use mpcjoin_semiring::Semiring;
use std::collections::{HashMap, HashSet};

/// A generated star instance with its query and exact output size.
pub struct StarInstance<S: Semiring> {
    /// The star query.
    pub query: TreeQuery,
    /// The shared attribute `B`.
    pub center: Attr,
    /// The arm endpoints `A1..An`.
    pub endpoints: Vec<Attr>,
    /// One relation per arm, `R_i(A_i, B)` layout.
    pub rels: Vec<Relation<S>>,
    /// Exact output size.
    pub out: u64,
}

/// Uniform random star: `arms` relations of `n` tuples over endpoint
/// domains `dom_a` and center domain `dom_b`.
pub fn uniform<S: Semiring>(
    rng: &mut DetRng,
    arms: usize,
    n: usize,
    dom_a: u64,
    dom_b: u64,
) -> StarInstance<S> {
    let endpoints: Vec<Attr> = (0..arms as u32).map(Attr).collect();
    let center = Attr(100);
    let mut rels = Vec::with_capacity(arms);
    for &ep in &endpoints {
        let mut set = HashSet::with_capacity(n);
        while set.len() < n.min((dom_a * dom_b) as usize) {
            set.insert((rng.gen_range(0..dom_a), rng.gen_range(0..dom_b)));
        }
        let mut v: Vec<(u64, u64)> = set.into_iter().collect();
        v.sort_unstable();
        rels.push(Relation::binary_ones(ep, center, v));
    }
    finish(center, endpoints, rels)
}

/// Star with per-center-value controlled arm degrees: center value `b`
/// has degree `deg[i](b mod deg[i].len())` in arm `i` — used to force
/// specific permutation classes in §5's decomposition.
pub fn degree_profile<S: Semiring>(
    arms: usize,
    centers: u64,
    profile: &[Vec<u64>],
) -> StarInstance<S> {
    assert_eq!(profile.len(), arms);
    let endpoints: Vec<Attr> = (0..arms as u32).map(Attr).collect();
    let center = Attr(100);
    let mut rels = Vec::with_capacity(arms);
    for (i, &ep) in endpoints.iter().enumerate() {
        let mut v = Vec::new();
        for b in 0..centers {
            let deg = profile[i][(b % profile[i].len() as u64) as usize];
            for d in 0..deg {
                // Endpoint values unique per (b, d) to make OUT exactly
                // the product of degrees summed over b.
                v.push((b * 1000 + d, b));
            }
        }
        rels.push(Relation::binary_ones(ep, center, v));
    }
    finish(center, endpoints, rels)
}

/// The *overlapping* star: every one of `centers` `B`-values connects to
/// the **same** `d` endpoint values per arm, so the full join has
/// `centers · d^arms` witnesses but only `OUT = d^arms` distinct outputs.
/// Sweeping `centers` at fixed OUT grows the baseline's intermediate-join
/// cost linearly while the §5 algorithm's matrix-multiplication reduction
/// aggregates the duplicate witnesses early.
pub fn overlapping<S: Semiring>(arms: usize, centers: u64, d: u64) -> StarInstance<S> {
    let endpoints: Vec<Attr> = (0..arms as u32).map(Attr).collect();
    let center = Attr(100);
    let rels = endpoints
        .iter()
        .map(|&ep| {
            let mut v = Vec::new();
            for b in 0..centers {
                for a in 0..d {
                    v.push((a, b));
                }
            }
            Relation::binary_ones(ep, center, v)
        })
        .collect();
    finish(center, endpoints, rels)
}

fn finish<S: Semiring>(
    center: Attr,
    endpoints: Vec<Attr>,
    rels: Vec<Relation<S>>,
) -> StarInstance<S> {
    let query = TreeQuery::new(
        endpoints.iter().map(|&a| Edge::binary(a, center)).collect(),
        endpoints.iter().copied(),
    );
    let out = exact_out(&rels);
    StarInstance {
        query,
        center,
        endpoints,
        rels,
        out,
    }
}

/// Exact star output size: the number of *distinct* endpoint combinations
/// witnessed by some shared `b` (combinations arising from several `b`s
/// count once).
fn exact_out<S: Semiring>(rels: &[Relation<S>]) -> u64 {
    let mut adj: Vec<HashMap<u64, Vec<u64>>> = Vec::new();
    for rel in rels {
        let mut m: HashMap<u64, Vec<u64>> = HashMap::new();
        for (row, _) in rel.entries() {
            m.entry(row[1]).or_default().push(row[0]);
        }
        adj.push(m);
    }
    let mut combos: HashSet<Vec<u64>> = HashSet::new();
    for &b in adj[0].keys() {
        if !adj.iter().all(|m| m.contains_key(&b)) {
            continue;
        }
        let mut partial: Vec<Vec<u64>> = vec![Vec::new()];
        for m in &adj {
            let mut next = Vec::new();
            for prefix in &partial {
                for &a in &m[&b] {
                    let mut ext = prefix.clone();
                    ext.push(a);
                    next.push(ext);
                }
            }
            partial = next;
        }
        combos.extend(partial);
    }
    combos.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::Count;
    use mpcjoin_yannakakis::sequential_join_aggregate;

    #[test]
    fn uniform_star_out_matches_oracle() {
        let mut rng = crate::rng(5);
        let inst = uniform::<Count>(&mut rng, 3, 40, 25, 6);
        let oracle = sequential_join_aggregate(&inst.query, &inst.rels);
        assert_eq!(oracle.len() as u64, inst.out);
    }

    #[test]
    fn degree_profile_out_is_product_sum() {
        // Two center values: degrees (2,3) and (1,1) per arm → OUT = 2·3·? …
        let inst = degree_profile::<Count>(3, 2, &[vec![2, 1], vec![3, 1], vec![1, 2]]);
        // b=0: 2·3·1 = 6; b=1: 1·1·2 = 2.
        assert_eq!(inst.out, 8);
        let oracle = sequential_join_aggregate(&inst.query, &inst.rels);
        assert_eq!(oracle.len() as u64, 8);
    }
}

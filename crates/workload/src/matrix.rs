//! Sparse matrix workloads for the §3 experiments.

use crate::DetRng;
use mpcjoin_relation::{Attr, Relation};
use mpcjoin_semiring::Semiring;
use std::collections::HashSet;

/// A generated matrix multiplication instance `R1(A,B), R2(B,C)` with its
/// exact output size.
pub struct MmInstance<S: Semiring> {
    /// `R1(A, B)`.
    pub r1: Relation<S>,
    /// `R2(B, C)`.
    pub r2: Relation<S>,
    /// Exact `|π_{A,C}(R1 ⋈ R2)|`.
    pub out: u64,
}

/// Uniform random sparse matrices: `n1`/`n2` distinct nonzeros drawn over
/// `dom_a × dom_b` and `dom_b × dom_c`.
pub fn uniform<S: Semiring>(
    rng: &mut DetRng,
    attrs: (Attr, Attr, Attr),
    n1: usize,
    n2: usize,
    (dom_a, dom_b, dom_c): (u64, u64, u64),
) -> MmInstance<S> {
    let (a, b, c) = attrs;
    assert!(n1 as u64 <= dom_a * dom_b, "R1 denser than its domain");
    assert!(n2 as u64 <= dom_b * dom_c, "R2 denser than its domain");
    let mut s1 = HashSet::with_capacity(n1);
    while s1.len() < n1 {
        s1.insert((rng.gen_range(0..dom_a), rng.gen_range(0..dom_b)));
    }
    let mut s2 = HashSet::with_capacity(n2);
    while s2.len() < n2 {
        s2.insert((rng.gen_range(0..dom_b), rng.gen_range(0..dom_c)));
    }
    let mut v1: Vec<(u64, u64)> = s1.into_iter().collect();
    let mut v2: Vec<(u64, u64)> = s2.into_iter().collect();
    v1.sort_unstable();
    v2.sort_unstable();
    let r1 = Relation::binary_ones(a, b, v1);
    let r2 = Relation::binary_ones(b, c, v2);
    let out = crate::exact_mm_out(&r1, &r2);
    MmInstance { r1, r2, out }
}

/// Block instance with a *target output size*: `k` complete bipartite
/// blocks `A_i × B_i` and `B_i × C_i` with `|A_i| = |C_i| = side` and a
/// thin `B` column, so `OUT = k · side²` exactly while `N ≈ 2·k·side·b_th`.
///
/// Sweeping `side` at fixed `N` traces the OUT-axis of the Table-1
/// experiments.
pub fn blocks<S: Semiring>(
    attrs: (Attr, Attr, Attr),
    k: u64,
    side: u64,
    b_thickness: u64,
) -> MmInstance<S> {
    let (a, b, c) = attrs;
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for blk in 0..k {
        let a_base = blk * side;
        let b_base = blk * b_thickness;
        let c_base = blk * side;
        for i in 0..side {
            for j in 0..b_thickness {
                t1.push((a_base + i, b_base + j));
                t2.push((b_base + j, c_base + i));
            }
        }
    }
    let r1 = Relation::binary_ones(a, b, t1);
    let r2 = Relation::binary_ones(b, c, t2);
    let out = k * side * side;
    MmInstance { r1, r2, out }
}

/// Zipf-skewed instance: `B`-values drawn with probability `∝ 1/rank^θ`,
/// creating the heavy/light mix that exercises the §3.1 and §3.2
/// classification machinery.
pub fn zipf<S: Semiring>(
    rng: &mut DetRng,
    attrs: (Attr, Attr, Attr),
    n1: usize,
    n2: usize,
    dom_b: u64,
    theta: f64,
) -> MmInstance<S> {
    let (a, b, c) = attrs;
    // Precompute the Zipf CDF over dom_b ranks.
    let weights: Vec<f64> = (1..=dom_b).map(|r| 1.0 / (r as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let draw = |rng: &mut DetRng| -> u64 {
        let x = rng.gen_f64();
        cdf.partition_point(|&v| v < x) as u64
    };
    let mut s1 = HashSet::with_capacity(n1);
    let mut guard = 0;
    while s1.len() < n1 && guard < n1 * 100 {
        s1.insert((rng.gen_range(0..n1 as u64 * 2), draw(rng)));
        guard += 1;
    }
    let mut s2 = HashSet::with_capacity(n2);
    guard = 0;
    while s2.len() < n2 && guard < n2 * 100 {
        s2.insert((draw(rng), rng.gen_range(0..n2 as u64 * 2)));
        guard += 1;
    }
    let mut v1: Vec<(u64, u64)> = s1.into_iter().collect();
    let mut v2: Vec<(u64, u64)> = s2.into_iter().collect();
    v1.sort_unstable();
    v2.sort_unstable();
    let r1 = Relation::binary_ones(a, b, v1);
    let r2 = Relation::binary_ones(b, c, v2);
    let out = crate::exact_mm_out(&r1, &r2);
    MmInstance { r1, r2, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);

    #[test]
    fn uniform_sizes_and_determinism() {
        let mut rng = crate::rng(7);
        let inst = uniform::<Count>(&mut rng, (A, B, C), 200, 300, (100, 40, 100));
        assert_eq!(inst.r1.len(), 200);
        assert_eq!(inst.r2.len(), 300);
        let mut rng2 = crate::rng(7);
        let inst2 = uniform::<Count>(&mut rng2, (A, B, C), 200, 300, (100, 40, 100));
        assert!(inst.r1.semantically_eq(&inst2.r1));
        assert_eq!(inst.out, inst2.out);
    }

    #[test]
    fn blocks_have_exact_out() {
        let inst = blocks::<Count>((A, B, C), 4, 8, 2);
        assert_eq!(inst.out, 4 * 64);
        assert_eq!(inst.out, crate::exact_mm_out(&inst.r1, &inst.r2));
        assert_eq!(inst.r1.len(), (4 * 8 * 2) as usize);
    }

    #[test]
    fn zipf_produces_skew() {
        let mut rng = crate::rng(11);
        let inst = zipf::<Count>(&mut rng, (A, B, C), 400, 400, 50, 1.2);
        let degs = inst.r1.degrees(B);
        let max = degs.values().copied().max().unwrap_or(0);
        let min = degs.values().copied().min().unwrap_or(0);
        assert!(max >= 4 * min.max(1), "expected skew, got {min}..{max}");
    }
}

//! Tree-query workloads: the Figure-2 and Figure-3 queries of the paper,
//! with data generators, for the §7 experiments.

use crate::DetRng;
use mpcjoin_query::{Edge, TreeQuery};
use mpcjoin_relation::{Attr, Relation};
use mpcjoin_semiring::Semiring;
use mpcjoin_yannakakis::sequential_join_aggregate;
use std::collections::HashSet;

/// A generated tree-query instance.
pub struct TreeInstance<S: Semiring> {
    /// The query.
    pub query: TreeQuery,
    /// One relation per edge.
    pub rels: Vec<Relation<S>>,
    /// Exact output size (computed by the sequential oracle).
    pub out: u64,
}

/// The Figure-3 twig: two star-like parts rooted at `B1`, `B2` joined
/// through a two-hop skeleton path carrying hanging output leaves.
pub fn figure3_query() -> TreeQuery {
    let (b1, b2) = (Attr(10), Attr(11));
    let (m1, m2) = (Attr(20), Attr(21));
    TreeQuery::new(
        vec![
            Edge::binary(b1, Attr(0)),
            Edge::binary(b1, Attr(1)),
            Edge::binary(b1, m1),
            Edge::binary(m1, Attr(2)), // hanging output leaf A1
            Edge::binary(m1, m2),
            Edge::binary(m2, Attr(3)), // hanging output leaf A2
            Edge::binary(m2, b2),
            Edge::binary(b2, Attr(4)),
            Edge::binary(b2, Attr(5)),
        ],
        [Attr(0), Attr(1), Attr(2), Attr(3), Attr(4), Attr(5)],
    )
}

/// The Figure-2 tree: a mix of all twig kinds hanging off a path of
/// output attributes (single all-output relation, matrix multiplication,
/// star-like part, general twig, plus a reducible non-output tail).
pub fn figure2_query() -> TreeQuery {
    let o: Vec<Attr> = (0..9).map(Attr).collect();
    let (b1, b2, b3) = (Attr(20), Attr(21), Attr(22));
    let m1 = Attr(23);
    let c1 = Attr(25);
    TreeQuery::new(
        vec![
            Edge::binary(o[1], o[2]), // twig: single all-output relation
            Edge::binary(o[2], m1),   // twig: matmul o2 –m1– o3
            Edge::binary(m1, o[3]),
            Edge::binary(o[3], b1), // twig: star-like at b1
            Edge::binary(b1, c1),
            Edge::binary(c1, o[4]),
            Edge::binary(b1, o[5]),
            Edge::binary(o[5], b2), // twig: general (centers b2, b3)
            Edge::binary(b2, o[6]),
            Edge::binary(b2, b3),
            Edge::binary(b3, o[7]),
            Edge::binary(b3, o[8]),
            Edge::binary(o[8], Attr(30)), // reducible non-output tail
        ],
        [o[1], o[2], o[3], o[4], o[5], o[6], o[7], o[8]],
    )
}

/// Random data for any tree query: each relation gets `n` distinct tuples
/// with both columns drawn from `0..dom`.
pub fn random_instance<S: Semiring>(
    rng: &mut DetRng,
    query: &TreeQuery,
    n: usize,
    dom: u64,
) -> TreeInstance<S> {
    let rels: Vec<Relation<S>> = query
        .edges()
        .iter()
        .map(|e| {
            assert!(e.is_binary(), "generator expects binary relations");
            let mut set = HashSet::with_capacity(n);
            while set.len() < n.min((dom * dom) as usize) {
                set.insert((rng.gen_range(0..dom), rng.gen_range(0..dom)));
            }
            let mut v: Vec<(u64, u64)> = set.into_iter().collect();
            v.sort_unstable();
            Relation::binary_ones(e.attrs()[0], e.attrs()[1], v)
        })
        .collect();
    let out = sequential_join_aggregate(query, &rels).len() as u64;
    TreeInstance {
        query: query.clone(),
        rels,
        out,
    }
}

/// Fan-out-controlled data for any tree query: every value connects to
/// `fanout` consecutive values of the neighbouring attribute over domains
/// of size `dom` — OUT grows smoothly with `fanout` at fixed N.
pub fn layered_instance<S: Semiring>(query: &TreeQuery, dom: u64, fanout: u64) -> TreeInstance<S> {
    let rels: Vec<Relation<S>> = query
        .edges()
        .iter()
        .map(|e| {
            let mut v = Vec::new();
            for x in 0..dom {
                for f in 0..fanout {
                    v.push((x, (x + f) % dom));
                }
            }
            Relation::binary_ones(e.attrs()[0], e.attrs()[1], v)
        })
        .collect();
    let out = sequential_join_aggregate(query, &rels).len() as u64;
    TreeInstance {
        query: query.clone(),
        rels,
        out,
    }
}

/// The *overlapping* tree workload: non-output attributes get a domain of
/// `centers` values, output attributes a domain of `d` values, and every
/// relation is the complete bipartite graph between its endpoints'
/// domains. All `centers`-way witness paths collapse onto the same
/// `d^{|y|}` outputs, so sweeping `centers` at fixed OUT grows the
/// baseline's intermediates while the §7 pipeline aggregates early.
pub fn overlapping_instance<S: Semiring>(
    query: &TreeQuery,
    centers: u64,
    d: u64,
) -> TreeInstance<S> {
    let dom = |a: Attr| -> u64 {
        if query.is_output(a) {
            d
        } else {
            centers
        }
    };
    let rels: Vec<Relation<S>> = query
        .edges()
        .iter()
        .map(|e| {
            let (x, y) = (e.attrs()[0], e.attrs()[1]);
            let mut v = Vec::new();
            for i in 0..dom(x) {
                for j in 0..dom(y) {
                    v.push((i, j));
                }
            }
            Relation::binary_ones(x, y, v)
        })
        .collect();
    let out = sequential_join_aggregate(query, &rels).len() as u64;
    TreeInstance {
        query: query.clone(),
        rels,
        out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::{classify, decompose_twigs, plan_reduction, Shape};
    use mpcjoin_semiring::Count;

    #[test]
    fn figure2_reduces_then_decomposes_into_expected_twigs() {
        let q = figure2_query();
        let plan = plan_reduction(&q);
        assert_eq!(plan.steps.len(), 1, "the non-output tail folds away");
        let twigs = decompose_twigs(&plan.reduced);
        let shapes: Vec<Shape> = twigs.iter().map(|t| classify(&t.query)).collect();
        let count = |pred: &dyn Fn(&Shape) -> bool| shapes.iter().filter(|s| pred(s)).count();
        assert_eq!(count(&|s| matches!(s, Shape::FreeConnex)), 1);
        assert_eq!(count(&|s| matches!(s, Shape::MatMul { .. })), 1);
        assert_eq!(count(&|s| matches!(s, Shape::StarLike(_))), 1);
        assert_eq!(count(&|s| matches!(s, Shape::Twig)), 1);
    }

    #[test]
    fn figure3_is_a_general_twig() {
        let q = figure3_query();
        assert_eq!(classify(&q), Shape::Twig);
        assert!(mpcjoin_query::skeleton(&q).is_some());
    }

    #[test]
    fn layered_instance_out_scales_with_fanout() {
        let q = figure3_query();
        let thin = layered_instance::<Count>(&q, 8, 1);
        let wide = layered_instance::<Count>(&q, 8, 3);
        assert!(wide.out > thin.out);
    }

    #[test]
    fn random_instance_deterministic() {
        let q = figure2_query();
        let i1 = random_instance::<Count>(&mut crate::rng(9), &q, 20, 6);
        let i2 = random_instance::<Count>(&mut crate::rng(9), &q, 20, 6);
        assert_eq!(i1.out, i2.out);
    }
}

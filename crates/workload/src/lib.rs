//! Workload generators for the experiments.
//!
//! The paper is parameterized entirely by `(N, OUT, p)` (and the query
//! shape); these generators let the benchmark harness place instances
//! anywhere in that parameter space:
//!
//! * [`matrix`] — sparse matrix pairs: uniform random, Zipf-skewed, and
//!   block-structured instances with *controlled output size*,
//! * [`chain`] — line-query instances with tunable fan-out (and therefore
//!   tunable OUT),
//! * [`star`] — star and star-like instances,
//! * [`trees`] — instances for the Figure-2/3 tree queries.
//!
//! All generators take an explicitly seeded [`DetRng`] (the in-tree
//! deterministic PRNG — the build is offline, no `rand` crate) and are
//! fully reproducible from the seed.

pub mod chain;
pub mod io;
pub mod matrix;
pub mod star;
pub mod trees;

pub use mpcjoin_mpc::rng::DetRng;
use mpcjoin_relation::Relation;
use mpcjoin_semiring::Semiring;

/// A seeded RNG for deterministic workloads.
pub fn rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

/// Exact output size of `∑_B R1 ⋈ R2` grouped on the outer attributes —
/// ground truth for experiments (computed locally).
pub fn exact_mm_out<S: Semiring>(r1: &Relation<S>, r2: &Relation<S>) -> u64 {
    use std::collections::{HashMap, HashSet};
    let b1 = 1; // (A, B) column layout from the generators
    let b2 = 0; // (B, C)
    let mut right: HashMap<u64, HashSet<u64>> = HashMap::new();
    for (row, _) in r2.entries() {
        right.entry(row[b2]).or_default().insert(row[1]);
    }
    let mut pairs: HashSet<(u64, u64)> = HashSet::new();
    for (row, _) in r1.entries() {
        if let Some(cs) = right.get(&row[b1]) {
            for &c in cs {
                pairs.insert((row[0], c));
            }
        }
    }
    pairs.len() as u64
}

//! The Yannakakis algorithm, sequential and distributed (§1.2, §1.4 of
//! Hu & Yi, PODS 2020).
//!
//! * [`JoinTree`] — the rooted relation tree both variants traverse,
//! * [`sequential_join_aggregate`] — the exact RAM-model algorithm, used
//!   throughout the workspace as the correctness oracle,
//! * [`remove_dangling`] — the distributed full reducer (§2.1),
//! * [`distributed_yannakakis`] — the MPC baseline: semijoin reduction
//!   followed by bottom-up worst-case-optimal two-way joins with eager
//!   aggregation. Its load, `O(N/p + J/p)` for maximum intermediate join
//!   size `J`, is the left column of the paper's Table 1; every algorithm
//!   in `mpcjoin-matmul` and `mpcjoin-joinagg` is designed to beat it.

mod dangling;
mod distributed;
mod jointree;
mod sequential;

pub use dangling::{is_output_empty, remove_dangling};
pub use distributed::{distributed_yannakakis, yannakakis_merge};
pub use jointree::JoinTree;
pub use sequential::{sequential_join_aggregate, validate_instance};

//! Join trees for tree queries.
//!
//! A *join tree* arranges the relations (edges of the attribute tree) as
//! nodes of a tree such that, for every attribute, the relations containing
//! it form a connected subtree — the structure both the sequential and the
//! distributed Yannakakis algorithms traverse.
//!
//! For a query whose hypergraph is an attribute tree the construction is
//! canonical: root the attribute tree anywhere; each edge's parent in the
//! join tree is the unique edge leading from its shallower endpoint toward
//! the root (for the root attribute, one designated root edge). Unary
//! relations attach to any binary edge on their attribute.

use mpcjoin_query::TreeQuery;
use mpcjoin_relation::Attr;
use std::collections::HashMap;

/// A rooted join tree over the relations of a [`TreeQuery`].
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// `parent[i]` is the join-tree parent of relation `i`; `None` for the
    /// root relation.
    pub parent: Vec<Option<usize>>,
    /// Relation indices in post-order (children before parents; the root
    /// relation is last). Merging in this order is a valid Yannakakis
    /// schedule.
    pub postorder: Vec<usize>,
}

impl JoinTree {
    /// Build a join tree for `q`, rooted so that the last-merged relation
    /// contains `root_attr` (defaults to the smallest attribute when
    /// `None`). Panics on malformed queries ([`TreeQuery`] already
    /// guarantees tree shape).
    pub fn build(q: &TreeQuery, root_attr: Option<Attr>) -> Self {
        let attrs = q.attrs();
        let root = root_attr.unwrap_or_else(|| *attrs.iter().next().expect("non-empty query"));
        assert!(attrs.contains(&root), "root attribute {root} not in query");

        // BFS the attribute tree from the root to get depths and the
        // upward edge of every attribute.
        let adj = q.adjacency();
        let mut depth: HashMap<Attr, usize> = HashMap::from([(root, 0)]);
        let mut upward_edge: HashMap<Attr, usize> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &ei in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                let e = &q.edges()[ei];
                if !e.is_binary() {
                    continue;
                }
                let u = e.other(v);
                if !depth.contains_key(&u) {
                    depth.insert(u, depth[&v] + 1);
                    upward_edge.insert(u, ei);
                    queue.push_back(u);
                }
            }
        }

        // The designated root relation: the upward edge of any depth-1
        // attribute (i.e. an edge containing the root), or relation 0 for
        // single-relation queries.
        let root_edge = q
            .edges()
            .iter()
            .position(|e| e.is_binary() && e.contains(root))
            .unwrap_or(0);

        let mut parent: Vec<Option<usize>> = vec![None; q.edges().len()];
        for (ei, e) in q.edges().iter().enumerate() {
            if ei == root_edge {
                continue;
            }
            // The shallower endpoint of the edge (its attachment point).
            let anchor = *e
                .attrs()
                .iter()
                .min_by_key(|a| depth[a])
                .expect("edge has attributes");
            // Attach to the anchor's upward edge; edges containing the
            // root attach to the designated root edge.
            let p = upward_edge.get(&anchor).copied().unwrap_or(root_edge);
            // A unary relation on the anchor of the root edge must not
            // self-attach.
            parent[ei] = Some(if p == ei { root_edge } else { p });
        }

        // Post-order via repeated leaf removal (children count bookkeeping).
        let mut child_count = vec![0usize; q.edges().len()];
        for p in parent.iter().flatten() {
            child_count[*p] += 1;
        }
        let mut ready: Vec<usize> = (0..q.edges().len())
            .filter(|&i| child_count[i] == 0)
            .collect();
        let mut postorder = Vec::with_capacity(q.edges().len());
        while let Some(i) = ready.pop() {
            postorder.push(i);
            if let Some(p) = parent[i] {
                child_count[p] -= 1;
                if child_count[p] == 0 {
                    ready.push(p);
                }
            }
        }
        assert_eq!(
            postorder.len(),
            q.edges().len(),
            "join tree must cover all relations"
        );
        assert_eq!(*postorder.last().expect("non-empty"), root_edge);

        JoinTree { parent, postorder }
    }

    /// The root relation index.
    pub fn root(&self) -> usize {
        *self.postorder.last().expect("non-empty join tree")
    }

    /// Verify the running-intersection property: for every attribute, the
    /// relations containing it form a connected subtree (test helper).
    pub fn satisfies_running_intersection(&self, q: &TreeQuery) -> bool {
        for a in q.attrs() {
            let holders: Vec<usize> = (0..q.edges().len())
                .filter(|&i| q.edges()[i].contains(a))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // All holders must connect through holder-only paths: walk up
            // from each holder; the union of holders must form a subtree,
            // i.e. every holder except one has its parent inside the set.
            let inside = |i: usize| holders.contains(&i);
            let roots = holders
                .iter()
                .filter(|&&i| self.parent[i].is_none_or(|p| !inside(p)))
                .count();
            if roots != 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn chain_join_tree() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        let jt = JoinTree::build(&q, Some(A));
        assert_eq!(jt.root(), 0);
        assert_eq!(jt.parent, vec![None, Some(0), Some(1)]);
        assert!(jt.satisfies_running_intersection(&q));
    }

    #[test]
    fn star_join_tree_connects_center() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        for root in [A, B, C, D] {
            let jt = JoinTree::build(&q, Some(root));
            assert!(
                jt.satisfies_running_intersection(&q),
                "running intersection violated rooting at {root}"
            );
        }
    }

    #[test]
    fn unary_relation_attaches() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::unary(B)], [A]);
        let jt = JoinTree::build(&q, Some(A));
        assert_eq!(jt.parent[1], Some(0));
        assert!(jt.satisfies_running_intersection(&q));
    }

    #[test]
    fn postorder_is_children_first() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let jt = JoinTree::build(&q, Some(D));
        let pos: HashMap<usize, usize> = jt
            .postorder
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i))
            .collect();
        for (e, p) in jt.parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(pos[&e] < pos[p], "child {e} after parent {p}");
            }
        }
    }

    #[test]
    fn single_relation_query() {
        let q = TreeQuery::new(vec![Edge::binary(A, B)], [A, B]);
        let jt = JoinTree::build(&q, None);
        assert_eq!(jt.postorder, vec![0]);
        assert_eq!(jt.parent, vec![None]);
    }
}

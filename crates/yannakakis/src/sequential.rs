//! The sequential (RAM-model) Yannakakis algorithm (§1.2) — the
//! correctness oracle for every distributed algorithm in this workspace.
//!
//! Processing the join tree in post-order, each relation is joined into
//! its parent and all attributes that are neither output attributes nor
//! needed higher up are aggregated away immediately; the final relation is
//! projected-and-aggregated onto `y`. This is the aggregation-aware
//! variant of Yannakakis noted in [15] (AJAR) and §1.2 of the paper.

use crate::jointree::JoinTree;
use mpcjoin_mpc::MpcError;
use mpcjoin_query::TreeQuery;
use mpcjoin_relation::{Attr, Relation};
use mpcjoin_semiring::Semiring;

/// Check that `instance` matches the query: one relation per edge with
/// exactly the edge's attributes (in edge order). Returns
/// [`MpcError::InvalidInstance`] on a mismatch so engine entry points can
/// surface the problem instead of aborting.
pub fn validate_instance<S: Semiring>(
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> Result<(), MpcError> {
    if q.edges().len() != instance.len() {
        return Err(MpcError::InvalidInstance(format!(
            "{} relations for {} edges — need exactly one relation per edge",
            instance.len(),
            q.edges().len()
        )));
    }
    for (e, r) in q.edges().iter().zip(instance) {
        if r.schema().attrs() != e.attrs() {
            return Err(MpcError::InvalidInstance(format!(
                "relation schema {} does not match edge {:?}",
                r.schema(),
                e.attrs()
            )));
        }
    }
    Ok(())
}

/// Evaluate the join-aggregate query sequentially and exactly.
///
/// Intended as a test oracle and for small driver-side computations: it
/// materializes intermediate joins whose size can reach the full-join
/// bound, exactly as §1.2 describes.
pub fn sequential_join_aggregate<S: Semiring>(
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> Relation<S> {
    if let Err(e) = validate_instance(q, instance) {
        panic!("{e}");
    }
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let jt = JoinTree::build(q, None);

    let mut rels: Vec<Option<Relation<S>>> = instance.iter().cloned().map(Some).collect();
    for &i in &jt.postorder {
        let Some(p) = jt.parent[i] else { continue };
        let child = rels[i].take().expect("child not yet merged");
        let parent = rels[p].take().expect("parent still alive");
        // Keep the parent's columns plus any output columns the child
        // carries; everything else in the child is private to this subtree
        // (running intersection) and is aggregated out now.
        let mut keep: Vec<Attr> = parent.schema().attrs().to_vec();
        for &a in child.schema().attrs() {
            if q.is_output(a) && !keep.contains(&a) {
                keep.push(a);
            }
        }
        rels[p] = Some(parent.natural_join(&child).project_aggregate(&keep));
    }

    let root = rels[jt.root()].take().expect("root survives");
    root.project_aggregate(&output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Schema;
    use mpcjoin_semiring::{Count, TropicalMin};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    #[test]
    fn matrix_multiplication_counts_paths() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10), (1, 11), (2, 10)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 5), (11, 5), (10, 6)]);
        let out = sequential_join_aggregate(&q, &[r1, r2]);
        // (1,5) via 10 and 11 → 2; (1,6) via 10 → 1; (2,5), (2,6) via 10.
        assert_eq!(
            out.canonical(),
            vec![
                (vec![1, 5], Count(2)),
                (vec![1, 6], Count(1)),
                (vec![2, 5], Count(1)),
                (vec![2, 6], Count(1)),
            ]
        );
    }

    #[test]
    fn full_aggregation_counts_join_size() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], []);
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10), (2, 10)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 5), (10, 6)]);
        let out = sequential_join_aggregate(&q, &[r1, r2]);
        assert_eq!(out.canonical(), vec![(vec![], Count(4))]);
    }

    #[test]
    fn line_query_tropical_shortest_path() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        let w = |v: i64| TropicalMin::finite(v);
        let r1 = Relation::from_entries(
            Schema::binary(A, B),
            vec![(vec![0, 1], w(1)), (vec![0, 2], w(5))],
        );
        let r2 = Relation::from_entries(
            Schema::binary(B, C),
            vec![(vec![1, 3], w(10)), (vec![2, 3], w(1))],
        );
        let r3 = Relation::from_entries(Schema::binary(C, D), vec![(vec![3, 9], w(2))]);
        let out = sequential_join_aggregate(&q, &[r1, r2, r3]);
        // Paths 0→1→3→9 (13) and 0→2→3→9 (8): min is 8.
        assert_eq!(out.canonical(), vec![(vec![0, 9], w(8))]);
    }

    #[test]
    fn star_query_grouping() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let r1: Relation<Count> = Relation::binary_ones(A, D, [(1, 0), (2, 0)]);
        let r2: Relation<Count> = Relation::binary_ones(B, D, [(7, 0)]);
        let r3: Relation<Count> = Relation::binary_ones(C, D, [(8, 0), (9, 0)]);
        let out = sequential_join_aggregate(&q, &[r1, r2, r3]);
        assert_eq!(out.len(), 4); // {1,2} × {7} × {8,9}
    }

    #[test]
    fn internal_output_attribute_is_kept() {
        // y = {A, B, D}: B is internal and output.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, B, D],
        );
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10), (2, 11)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 20), (11, 20)]);
        let r3: Relation<Count> = Relation::binary_ones(C, D, [(20, 30)]);
        let out = sequential_join_aggregate(&q, &[r1, r2, r3]);
        assert_eq!(
            out.canonical(),
            vec![(vec![1, 10, 30], Count(1)), (vec![2, 11, 30], Count(1)),]
        );
    }

    #[test]
    fn dangling_tuples_contribute_nothing() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10), (9, 99)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 5)]);
        let out = sequential_join_aggregate(&q, &[r1, r2]);
        assert_eq!(out.canonical(), vec![(vec![1, 5], Count(1))]);
    }

    #[test]
    fn empty_relation_gives_empty_output() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r1: Relation<Count> = Relation::binary_ones(A, B, [(1, 10)]);
        let r2: Relation<Count> = Relation::empty(Schema::binary(B, C));
        let out = sequential_join_aggregate(&q, &[r1, r2]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match edge")]
    fn schema_mismatch_rejected() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r1: Relation<Count> = Relation::binary_ones(A, C, [(1, 10)]);
        let r2: Relation<Count> = Relation::binary_ones(B, C, [(10, 5)]);
        let _ = sequential_join_aggregate(&q, &[r1, r2]);
    }
}

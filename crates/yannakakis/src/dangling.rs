//! Distributed dangling-tuple removal (§2.1, the full reducer).
//!
//! Two semijoin sweeps over the join tree — leaves-to-root then
//! root-to-leaves — delete every tuple that cannot participate in a full
//! join result. Each sweep performs one distributed semijoin per relation
//! (`O(1)` rounds, linear load each), so the whole pass is `O(1)` rounds
//! and linear load for a constant-size query, exactly as the paper's
//! preprocessing assumes.

use crate::jointree::JoinTree;
use mpcjoin_mpc::{Cluster, DistRelation};
use mpcjoin_query::TreeQuery;
use mpcjoin_semiring::Semiring;

/// Remove all dangling tuples from `instance` (one distributed relation
/// per query edge, aligned with `q.edges()`).
///
/// After this pass, every remaining tuple participates in at least one
/// full join result — in particular the output is empty iff any relation
/// has become empty, which callers use as the §2.1 emptiness test.
pub fn remove_dangling<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    instance: &[DistRelation<S>],
) -> Vec<DistRelation<S>> {
    assert_eq!(q.edges().len(), instance.len());
    let _op = cluster.op("remove-dangling");
    let jt = JoinTree::build(q, None);
    let mut rels: Vec<DistRelation<S>> = instance.to_vec();

    // Upward sweep: parent ⋉ child, children first.
    for &i in &jt.postorder {
        if let Some(p) = jt.parent[i] {
            rels[p] = rels[p].semijoin(cluster, &rels[i]);
        }
    }
    // Downward sweep: child ⋉ parent, parents first.
    for &i in jt.postorder.iter().rev() {
        if let Some(p) = jt.parent[i] {
            rels[i] = rels[i].semijoin(cluster, &rels[p]);
        }
    }
    rels
}

/// Whether the full join is empty, decided after [`remove_dangling`]:
/// the reduced instance joins to nothing iff some relation is empty.
pub fn is_output_empty<S: Semiring>(reduced: &[DistRelation<S>]) -> bool {
    reduced.iter().any(DistRelation::is_empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::{Attr, Relation};
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn run(q: &TreeQuery, rels: Vec<Relation<Count>>) -> (Cluster, Vec<DistRelation<Count>>) {
        let mut cluster = Cluster::new(4);
        let dist: Vec<DistRelation<Count>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let reduced = remove_dangling(&mut cluster, q, &dist);
        (cluster, reduced)
    }

    #[test]
    fn chain_full_reduction() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        // (2, 11) dangles in R1 (no B=11 in R2); (21, 99) dangles in R3
        // (no C=21 in R2); and the R2 tuple (12, 21) dangles transitively
        // once (21, 99) looks fine — check the sweep handles both ways.
        let r1 = Relation::binary_ones(A, B, [(1, 10), (2, 11)]);
        let r2 = Relation::binary_ones(B, C, [(10, 20), (12, 21)]);
        let r3 = Relation::binary_ones(C, D, [(20, 30), (21, 99)]);
        let (_, reduced) = run(&q, vec![r1, r2, r3]);
        assert_eq!(
            reduced[0].gather().canonical(),
            vec![(vec![1, 10], Count(1))]
        );
        assert_eq!(
            reduced[1].gather().canonical(),
            vec![(vec![10, 20], Count(1))]
        );
        assert_eq!(
            reduced[2].gather().canonical(),
            vec![(vec![20, 30], Count(1))]
        );
    }

    #[test]
    fn downward_sweep_needed() {
        // R1's (1,10) survives upward, but R3 rules out C=21, which rules
        // out R2's (10,21), which must then rule out R1's (1,10) — only
        // visible with the downward sweep re-filtering children.
        let q = TreeQuery::new(
            vec![Edge::binary(C, D), Edge::binary(B, C), Edge::binary(A, B)],
            [A, D],
        );
        let r_cd = Relation::binary_ones(C, D, [(20, 30)]);
        let r_bc = Relation::binary_ones(B, C, [(10, 21), (11, 20)]);
        let r_ab = Relation::binary_ones(A, B, [(1, 10), (2, 11)]);
        let (_, reduced) = run(&q, vec![r_cd, r_bc, r_ab]);
        assert_eq!(
            reduced[2].gather().canonical(),
            vec![(vec![2, 11], Count(1))]
        );
    }

    #[test]
    fn empty_output_detected() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let r1 = Relation::binary_ones(A, B, [(1, 10)]);
        let r2 = Relation::binary_ones(B, C, [(11, 5)]);
        let (_, reduced) = run(&q, vec![r1, r2]);
        assert!(is_output_empty(&reduced));
    }

    #[test]
    fn star_reduction_intersects_center_values() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let r1 = Relation::binary_ones(A, D, [(1, 0), (2, 1)]);
        let r2 = Relation::binary_ones(B, D, [(7, 0), (8, 2)]);
        let r3 = Relation::binary_ones(C, D, [(9, 0)]);
        let (_, reduced) = run(&q, vec![r1, r2, r3]);
        for r in &reduced {
            let vals = r.gather().distinct_values(D);
            assert_eq!(vals, vec![0], "only D=0 appears in all three");
        }
    }

    #[test]
    fn rounds_constant_in_input_size() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let mut rounds = Vec::new();
        for n in [64u64, 512] {
            let r1 = Relation::binary_ones(A, B, (0..n).map(|i| (i, i % 37)));
            let r2 = Relation::binary_ones(B, C, (0..n).map(|i| (i % 41, i)));
            let (cluster, _) = run(&q, vec![r1, r2]);
            rounds.push(cluster.report().rounds);
        }
        assert_eq!(rounds[0], rounds[1]);
    }
}

//! The distributed Yannakakis algorithm (§1.4) — the baseline every new
//! algorithm in the paper is measured against.
//!
//! Dangling tuples are removed with the §2.1 primitives, then the join
//! tree is merged bottom-up, each step using the worst-case optimal
//! two-way join of [5, 13] followed by an immediate aggregation of the
//! attributes that are no longer needed. The resulting load is
//! `O(N/p + J/p)` where `J` is the maximum intermediate join size — which
//! for free-connex queries is `O(OUT)`, for matrix multiplication
//! `O(N·√OUT)`, and for general tree queries `O(N·OUT)` (§1.2's bounds) —
//! exactly the baseline column of Table 1.

use crate::dangling::remove_dangling;
use crate::jointree::JoinTree;
use mpcjoin_mpc::join::full_join;
use mpcjoin_mpc::{Cluster, DistRelation};
use mpcjoin_query::TreeQuery;
use mpcjoin_relation::Attr;
use mpcjoin_semiring::Semiring;

/// Evaluate a tree join-aggregate query with the distributed Yannakakis
/// algorithm. Returns the output relation over `q.output()`, distributed.
pub fn distributed_yannakakis<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    instance: &[DistRelation<S>],
) -> DistRelation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    cluster.mark_phase("yannakakis: dangling removal");
    let reduced = remove_dangling(cluster, q, instance);
    cluster.mark_phase("yannakakis: bottom-up merge");
    yannakakis_merge(cluster, q, &reduced, &output)
}

/// The bottom-up merge phase, reusable by algorithms that have already
/// removed dangling tuples (or operate on filtered sub-instances).
///
/// `keep_always` lists attributes to preserve through every merge (the
/// query's output attributes).
pub fn yannakakis_merge<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    instance: &[DistRelation<S>],
    keep_always: &[Attr],
) -> DistRelation<S> {
    assert_eq!(q.edges().len(), instance.len());
    let _op = cluster.op("yannakakis-merge");
    let jt = JoinTree::build(q, None);
    let mut rels: Vec<Option<DistRelation<S>>> = instance.iter().cloned().map(Some).collect();

    for &i in &jt.postorder {
        let Some(p) = jt.parent[i] else { continue };
        let child = rels[i].take().expect("child not yet merged");
        let parent = rels[p].take().expect("parent still alive");
        if child.is_empty() || parent.is_empty() {
            // Empty side: the whole query is empty. Keep schemas honest by
            // producing the empty relation over the output attributes.
            return DistRelation::empty(
                cluster,
                mpcjoin_relation::Schema::new(keep_always.to_vec()),
            );
        }
        let mut keep: Vec<Attr> = parent.schema().attrs().to_vec();
        for &a in child.schema().attrs() {
            if keep_always.contains(&a) && !keep.contains(&a) {
                keep.push(a);
            }
        }
        let joined = full_join(cluster, &parent, &child);
        rels[p] = Some(joined.project_aggregate(cluster, &keep));
    }

    let root = rels[jt.root()].take().expect("root survives");
    root.project_aggregate(cluster, keep_always)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_join_aggregate;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Relation;
    use mpcjoin_semiring::{Count, XorRing};

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn check_against_oracle(q: &TreeQuery, rels: Vec<Relation<Count>>, p: usize) -> Cluster {
        let mut cluster = Cluster::new(p);
        let dist: Vec<DistRelation<Count>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = distributed_yannakakis(&mut cluster, q, &dist);
        let expect = sequential_join_aggregate(q, &rels);
        assert!(
            got.gather().semantically_eq(&expect),
            "distributed Yannakakis diverged from the sequential oracle"
        );
        cluster
    }

    #[test]
    fn matmul_small() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        check_against_oracle(
            &q,
            vec![
                Relation::binary_ones(A, B, [(1, 10), (1, 11), (2, 10), (3, 12)]),
                Relation::binary_ones(B, C, [(10, 5), (11, 5), (10, 6)]),
            ],
            4,
        );
    }

    #[test]
    fn line_query_with_dangling() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        check_against_oracle(
            &q,
            vec![
                Relation::binary_ones(A, B, (0..40).map(|i| (i, i % 7))),
                Relation::binary_ones(B, C, (0..30).map(|i| (i % 5, i % 11))),
                Relation::binary_ones(C, D, (0..50).map(|i| (i % 9, i))),
            ],
            8,
        );
    }

    #[test]
    fn star_query_random() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        check_against_oracle(
            &q,
            vec![
                Relation::binary_ones(A, D, (0..25).map(|i| (i, i % 6))),
                Relation::binary_ones(B, D, (0..25).map(|i| (i, (i * 3) % 6))),
                Relation::binary_ones(C, D, (0..25).map(|i| (i, (i * 5) % 6))),
            ],
            8,
        );
    }

    #[test]
    fn internal_output_attributes() {
        // y = {A, B, D}: general tree query; baseline must keep B through.
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, B, D],
        );
        check_against_oracle(
            &q,
            vec![
                Relation::binary_ones(A, B, (0..20).map(|i| (i, i % 4))),
                Relation::binary_ones(B, C, (0..12).map(|i| (i % 4, i % 3))),
                Relation::binary_ones(C, D, (0..15).map(|i| (i % 3, i))),
            ],
            4,
        );
    }

    #[test]
    fn xor_semiring_catches_double_counting() {
        // XorRing has torsion: any duplicated aggregation path would zero
        // out annotations and diverge from the oracle.
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let rels = vec![
            Relation::<XorRing>::binary_ones(A, B, (0..30).map(|i| (i % 10, i % 7))),
            Relation::<XorRing>::binary_ones(B, C, (0..30).map(|i| (i % 7, i % 9))),
        ];
        let mut cluster = Cluster::new(4);
        let dist: Vec<DistRelation<XorRing>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = distributed_yannakakis(&mut cluster, &q, &dist);
        let expect = sequential_join_aggregate(&q, &rels);
        assert!(got.gather().semantically_eq(&expect));
    }

    #[test]
    fn empty_instance_yields_empty_output() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C]);
        let rels = [
            Relation::<Count>::binary_ones(A, B, [(1, 10)]),
            Relation::<Count>::binary_ones(B, C, [(99, 5)]),
        ];
        let mut cluster = Cluster::new(4);
        let dist: Vec<DistRelation<Count>> = rels
            .iter()
            .map(|r| DistRelation::scatter(&cluster, r))
            .collect();
        let got = distributed_yannakakis(&mut cluster, &q, &dist);
        assert!(got.is_empty());
    }
}

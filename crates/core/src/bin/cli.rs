//! `mpcjoin-cli` — run a join-aggregate query over TSV files on the
//! simulated MPC cluster.
//!
//! ```text
//! mpcjoin-cli \
//!   --query 'Q(user, topic) :- Follows(user, community), About(community, topic)' \
//!   --input Follows=follows.tsv --input About=about.tsv \
//!   --servers 16 --semiring count --baseline --limit 20
//! ```
//!
//! Input files are 2- or 3-column delimited text (tab/comma/space); the
//! optional third column is an integer weight whose meaning depends on
//! `--semiring`:
//!
//! * `count` (default) — multiplicity; weights multiply along joins and
//!   add across groups,
//! * `bool` — existence (weights ignored),
//! * `minplus` — edge costs; outputs carry shortest combined cost,
//! * `mincount` — shortest cost plus the number of ways to achieve it.
//!
//! Prints the decoded output rows, the chosen plan, the measured MPC
//! cost (load / rounds / traffic), and the bound-audit verdict;
//! `--baseline` also runs the distributed Yannakakis algorithm for
//! comparison. `--format json` emits a machine-readable run summary
//! (schema `mpcjoin-result-v1`, including the audit verdict) instead of
//! the human-readable report; when the run fails, it emits a structured
//! error frame instead (`{"schema":"mpcjoin-wire-v1","type":"error",
//! "code":…,"detail":…}`, the same shape `mpcjoin-serve` sends on the
//! wire) and exits nonzero, so clients can branch on the failure mode. `--trace FILE` records a round-level
//! execution trace and writes it to `FILE` as JSON with the audit
//! verdict and any recovery report embedded (schema `mpcjoin-trace-v3`,
//! see `mpcjoin_mpc::trace`), and `--metrics FILE` writes the run's
//! metrics snapshot (schema `mpcjoin-metrics-v1`, see
//! `mpcjoin_mpc::metrics`).
//!
//! `--plan NAME` selects the planning mode: `auto` (the default) runs
//! cost-based selection over every applicable algorithm, `heuristic` the
//! pre-compiler structural dispatch, `baseline` the distributed
//! Yannakakis comparison point, and a concrete algorithm name
//! (`matmul|line|star|starlike|tree|yannakakis|cec`) forces it.
//! `--explain [FILE]` compiles the query without executing it and emits
//! the `mpcjoin-plan-v1` JSON document — chosen plan, every priced
//! alternative with its Table-1 bound, and the lowered operator DAG — to
//! `FILE`, or to stdout when no file is given.
//!
//! `--fault-plan FILE` loads a deterministic fault schedule (schema
//! `mpcjoin-faultplan-v1`, see `mpcjoin_mpc::fault`) and injects it into
//! the run; the engine recovers transparently — output and measured
//! costs stay bit-identical to the fault-free run — and the recovery
//! summary is printed (and embedded in the `--trace` / `--format json`
//! artifacts). `--fault-seed N` overrides the plan's RNG seed, for
//! sweeping schedules. Faults apply to the main run only, never to the
//! `--baseline` comparison run.

use mpcjoin::mpc::json::Json;
use mpcjoin::prelude::*;
use mpcjoin::query::{parse_query, ParsedQuery};
use mpcjoin::workload::io::{read_relation, render_output, StringDict};
use std::path::PathBuf;
use std::process::ExitCode;

/// What a CLI run can fail with: a structured engine error, a query
/// syntax error, or an environment problem (I/O, bindings, flags). In
/// `--format json` mode every variant is emitted as a schema-tagged
/// error frame (the same shape the `mpcjoin-serve` wire protocol uses —
/// see `mpcjoin::mpc::ERROR_FRAME_SCHEMA`) with a machine-readable
/// `code`, so scripts can branch on the failure mode; the exit code is
/// nonzero either way.
enum CliError {
    /// An engine boundary error; carries its own `MpcError::code()`.
    Mpc(MpcError),
    /// The query text did not parse.
    Query(String),
    /// Anything else: missing files, bad bindings, serialization.
    Other(String),
}

impl CliError {
    fn code(&self) -> &'static str {
        match self {
            CliError::Mpc(e) => e.code(),
            CliError::Query(_) => "bad_query",
            CliError::Other(_) => "cli",
        }
    }

    fn detail(&self) -> String {
        match self {
            CliError::Mpc(e) => e.to_string(),
            CliError::Query(msg) | CliError::Other(msg) => msg.clone(),
        }
    }

    /// The structured error frame for `--format json` mode.
    fn to_frame(&self) -> Json {
        match self {
            CliError::Mpc(e) => e.to_error_frame(),
            _ => Json::Obj(vec![
                (
                    "schema".into(),
                    Json::Str(mpcjoin::mpc::ERROR_FRAME_SCHEMA.into()),
                ),
                ("type".into(), Json::Str("error".into())),
                ("code".into(), Json::Str(self.code().into())),
                ("detail".into(), Json::Str(self.detail())),
            ]),
        }
    }
}

impl From<MpcError> for CliError {
    fn from(e: MpcError) -> CliError {
        CliError::Mpc(e)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Other(msg)
    }
}

struct Args {
    query: String,
    inputs: Vec<(String, PathBuf)>,
    servers: usize,
    threads: usize,
    semiring: String,
    plan: PlanChoice,
    baseline: bool,
    limit: usize,
    dot: bool,
    /// `Some(None)` = explain to stdout, `Some(Some(path))` = to a file.
    explain: Option<Option<PathBuf>>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    json: bool,
    fault_plan: Option<PathBuf>,
    fault_seed: Option<u64>,
}

fn usage() -> &'static str {
    "usage: mpcjoin-cli --query '<head> :- <body>' --input NAME=FILE [--input NAME=FILE …]\n\
     \x20      [--servers P] [--threads N] [--semiring count|bool|minplus|mincount]\n\
     \x20      [--plan auto|costbased|heuristic|baseline|yannakakis|matmul|line|star|starlike|tree|cec]\n\
     \x20      [--baseline] [--limit N] [--dot] [--explain [FILE]] [--format text|json]\n\
     \x20      [--trace FILE] [--metrics FILE] [--fault-plan FILE] [--fault-seed N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        query: String::new(),
        inputs: Vec::new(),
        servers: 16,
        threads: mpcjoin::mpc::exec::available_threads(),
        semiring: "count".to_string(),
        plan: PlanChoice::Auto,
        baseline: false,
        limit: 20,
        dot: false,
        explain: None,
        trace: None,
        metrics: None,
        json: false,
        fault_plan: None,
        fault_seed: None,
    };
    // Indexed rather than iterator-driven so `--explain` can take an
    // *optional* FILE operand (present iff the next word is not a flag).
    fn take(argv: &[String], i: &mut usize, name: &str) -> Result<String, String> {
        let v = argv
            .get(*i)
            .cloned()
            .ok_or_else(|| format!("{name} needs a value\n{}", usage()))?;
        *i += 1;
        Ok(v)
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        let mut value = |name: &str| take(&argv, &mut i, name);
        match flag.as_str() {
            "--explain" => {
                args.explain = Some(match argv.get(i) {
                    Some(next) if !next.starts_with("--") => {
                        let path = PathBuf::from(next);
                        i += 1;
                        Some(path)
                    }
                    _ => None,
                });
            }
            "--plan" => {
                args.plan =
                    mpcjoin::parse_plan_choice(&value("--plan")?).map_err(|e| e.to_string())?
            }
            "--query" => args.query = value("--query")?,
            "--input" => {
                let v = value("--input")?;
                let Some((name, path)) = v.split_once('=') else {
                    return Err(format!("--input expects NAME=FILE, got `{v}`"));
                };
                args.inputs.push((name.to_string(), PathBuf::from(path)));
            }
            "--servers" => {
                args.servers = value("--servers")?
                    .parse()
                    .map_err(|_| "--servers expects a positive integer".to_string())?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?
            }
            "--semiring" => args.semiring = value("--semiring")?,
            "--baseline" => args.baseline = true,
            "--limit" => {
                args.limit = value("--limit")?
                    .parse()
                    .map_err(|_| "--limit expects an integer".to_string())?
            }
            "--dot" => args.dot = true,
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--fault-plan" => args.fault_plan = Some(PathBuf::from(value("--fault-plan")?)),
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|_| "--fault-seed expects a non-negative integer".to_string())?,
                )
            }
            "--format" => {
                args.json = match value("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("--format expects text|json, got `{other}`")),
                }
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.query.is_empty() {
        return Err(format!("--query is required\n{}", usage()));
    }
    if args.servers == 0 {
        return Err("--servers must be at least 1".to_string());
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if args.fault_seed.is_some() && args.fault_plan.is_none() {
        return Err("--fault-seed needs a --fault-plan to override".to_string());
    }
    Ok(args)
}

/// Load `--fault-plan` (applying any `--fault-seed` override), or `None`
/// when no plan was requested.
fn load_fault_plan(args: &Args) -> Result<Option<FaultPlan>, CliError> {
    let Some(path) = &args.fault_plan else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    // Keep the path in the message but preserve the structured error (and
    // therefore its `invalid_fault_plan` code) for `--format json`.
    let mut plan = FaultPlan::from_json(&text).map_err(|e| {
        CliError::Mpc(match e {
            MpcError::InvalidFaultPlan(m) => {
                MpcError::InvalidFaultPlan(format!("{}: {m}", path.display()))
            }
            other => other,
        })
    })?;
    if let Some(seed) = args.fault_seed {
        plan = plan.with_seed(seed);
    }
    Ok(Some(plan))
}

fn run_semiring<S: Semiring + std::fmt::Debug>(
    args: &Args,
    parsed: &ParsedQuery,
    weight: impl FnMut(Option<i64>) -> S + Copy,
) -> Result<(), CliError> {
    // Bind input files to the body atoms by relation name.
    let mut dict = StringDict::new();
    let mut rels: Vec<Relation<S>> = Vec::new();
    for (i, name) in parsed.relation_names.iter().enumerate() {
        let path = args
            .inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
            .ok_or_else(|| format!("no --input binding for relation `{name}`"))?;
        let edge = &parsed.query.edges()[i];
        let (x, y) = match edge.attrs() {
            [x, y] => (*x, *y),
            [x] => (*x, *x), // unary handled below
            _ => unreachable!(),
        };
        let rel = if edge.is_binary() {
            read_relation(path, x, y, &mut dict, weight).map_err(|e| e.to_string())?
        } else {
            // Unary relation: single-column file.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut rel = Relation::empty(Schema::unary(x));
            let mut w = weight;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut fields = line.split_whitespace();
                let v = fields.next().expect("non-empty line");
                let weight_field = fields
                    .next()
                    .map(|f| {
                        f.parse::<i64>()
                            .map_err(|_| format!("{}: bad weight `{f}`", path.display()))
                    })
                    .transpose()?;
                rel.push(vec![dict.encode(v)], w(weight_field));
            }
            rel
        };
        rels.push(rel);
    }

    let mut engine = QueryEngine::new(args.servers)
        .threads(args.threads)
        .plan(args.plan)
        .trace(args.trace.is_some())
        .metrics(args.metrics.is_some());
    if let Some(plan) = load_fault_plan(args)? {
        engine = engine.faults(plan);
    }

    // `--explain`: compile only — emit the mpcjoin-plan-v1 document
    // (chosen plan, priced alternatives, lowered operator DAG) and skip
    // execution.
    if let Some(target) = &args.explain {
        let ex = engine.explain(&parsed.query, &rels)?;
        let text = ex
            .to_json(Some(&parsed.names))
            .to_string_compact()
            .map_err(|e| format!("explain document: {e}"))?;
        match target {
            Some(path) => {
                std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
                if !args.json {
                    println!(
                        "explain: chose {:?} among {} candidates, written to {}",
                        ex.chosen,
                        ex.candidates.len(),
                        path.display()
                    );
                }
            }
            None => println!("{text}"),
        }
        return Ok(());
    }

    let result = engine.run(&parsed.query, &rels)?;
    if args.json {
        let text = result
            .to_json()
            .to_string_compact()
            .map_err(|e| format!("result summary: {e}"))?;
        println!("{text}");
    } else {
        println!(
            "servers: {}   threads: {}   {result}",
            args.servers, args.threads
        );
        println!("output ({} rows):", result.output.len());
        print!("{}", render_output(&result.output, &dict, args.limit));
        if let Some(report) = &result.recovery {
            println!("fault plane: {report}");
        }
    }

    if let Some(path) = &args.trace {
        let trace = result.trace.as_ref().expect("tracing was enabled");
        std::fs::write(
            path,
            trace.to_json_with(Some(&result.audit.to_json()), result.recovery.as_ref()),
        )
        .map_err(|e| format!("{}: {e}", path.display()))?;
        if !args.json {
            let report = trace.report();
            println!(
                "trace: {} events, {} phases, written to {}",
                trace.events.len(),
                report.per_phase.len(),
                path.display()
            );
            if let Some(critical) = &report.critical {
                println!(
                    "critical cell: server {} in round {} received {} units during `{}`",
                    critical.server, critical.round, critical.units, critical.label
                );
            }
        }
    }

    if let Some(path) = &args.metrics {
        let snap = result.metrics.as_ref().expect("metrics were enabled");
        std::fs::write(path, snap.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        if !args.json {
            println!(
                "metrics: received p50 {} / p95 {} / max {} units (skew {:.2}), written to {}",
                snap.received.p50,
                snap.received.p95,
                snap.received.max,
                snap.received.skew,
                path.display()
            );
        }
    }

    if args.baseline {
        let base = QueryEngine::new(args.servers)
            .threads(args.threads)
            .plan(PlanChoice::Baseline)
            .run(&parsed.query, &rels)?;
        let agree = base.output.semantically_eq(&result.output);
        if args.json {
            // A second result document on its own line (JSON-lines style).
            let text = base
                .to_json()
                .to_string_compact()
                .map_err(|e| format!("baseline summary: {e}"))?;
            println!("{text}");
        } else {
            println!(
                "baseline (distributed Yannakakis): load: {}   rounds: {}   traffic: {}   outputs agree: {}",
                base.cost.load, base.cost.rounds, base.cost.total_units, agree
            );
        }
    }
    Ok(())
}

/// Report a failed run and pick the exit code: a structured JSONL error
/// frame on stdout in `--format json` mode (so clients always receive
/// exactly one machine-readable document per run, success or not), prose
/// on stderr otherwise. Nonzero exit either way.
fn fail(json: bool, e: &CliError) -> ExitCode {
    if json {
        println!("{}", e.to_frame().to_string_sanitized());
        eprintln!("{}", e.detail());
    } else {
        eprintln!("{}", e.detail());
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_query(&args.query) {
        Ok(p) => p,
        Err(e) => return fail(args.json, &CliError::Query(e.to_string())),
    };
    if args.dot {
        print!(
            "{}",
            mpcjoin::query::to_dot(&parsed.query, Some(&parsed.names))
        );
        return ExitCode::SUCCESS;
    }
    mpcjoin::mpc::exec::set_default_threads(args.threads);

    let outcome = match args.semiring.as_str() {
        "count" => run_semiring(&args, &parsed, |w| Count(w.unwrap_or(1).max(0) as u64)),
        "bool" => run_semiring(&args, &parsed, |_| BoolRing(true)),
        "minplus" => run_semiring(&args, &parsed, |w| TropicalMin::finite(w.unwrap_or(0))),
        "mincount" => run_semiring(&args, &parsed, |w| MinCount::path(w.unwrap_or(0))),
        other => Err(CliError::Other(format!(
            "unknown semiring `{other}` (expected count|bool|minplus|mincount)"
        ))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(args.json, &e),
    }
}

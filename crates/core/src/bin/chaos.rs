//! `chaos` — sweep seeded fault schedules over every plan the engine
//! can choose, checking that recovery is transparent: each faulted run
//! must produce the same output and the same measured cost ledger as
//! the fault-free run of the same workload, or fail with a structured
//! [`MpcError::Unrecoverable`] — never a panic, never a silent drift.
//!
//! ```text
//! chaos [--schedules N] [--scale S] [--seed BASE] [--servers P]
//! ```
//!
//! Schedule `i` runs workload `i mod 6` (one per [`PlanKind`]) under a
//! fault plan drawn from `DetRng::seed_from_u64(BASE + i)` — crashes,
//! drops, duplicates, reorders, stragglers, and compute faults in random
//! combination. The sweep exits nonzero if any run diverges from its
//! fault-free twin, errors outside the unrecoverable contract, or if no
//! schedule fired a single fault (a vacuous sweep means the generator
//! is broken, not that the engine is robust).

use mpcjoin::prelude::*;
use mpcjoin::workload::{chain, matrix, rng, star, trees};
use mpcjoin::{execute_sequential, PlanKind, QueryEngine};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    schedules: u64,
    scale: u64,
    seed: u64,
    servers: usize,
}

fn usage() -> &'static str {
    "usage: chaos [--schedules N] [--scale S] [--seed BASE] [--servers P]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 60,
        scale: 1,
        seed: 0xC4A05,
        servers: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        let parse = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} expects a non-negative integer"))
        };
        match flag.as_str() {
            "--schedules" => args.schedules = parse("--schedules", value("--schedules")?)?,
            "--scale" => args.scale = parse("--scale", value("--scale")?)?.max(1),
            "--seed" => args.seed = parse("--seed", value("--seed")?)?,
            "--servers" => args.servers = parse("--servers", value("--servers")?)?.max(2) as usize,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// One workload per [`PlanKind`], sized by `scale`.
fn workloads(scale: u64) -> Vec<(&'static str, PlanKind, TreeQuery, Vec<Relation<Count>>)> {
    let (a, b, c) = (Attr(0), Attr(1), Attr(2));
    let mm = matrix::blocks::<Count>((a, b, c), 4 * scale, 4, 2);
    let mm_q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
    let fc_q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, b, c]);
    let fc = trees::random_instance::<Count>(&mut rng(7), &fc_q, (40 * scale) as usize, 12);
    let line = chain::funnel::<Count>(8 * scale, 4, 4);
    let star = star::uniform::<Count>(&mut rng(11), 3, (30 * scale) as usize, 9, 5);
    let star_like = star_like_workload(scale);
    let tree = trees::layered_instance::<Count>(&trees::figure3_query(), 4 * scale, 2);
    vec![
        ("matmul", PlanKind::MatMul, mm_q, vec![mm.r1, mm.r2]),
        (
            "free-connex",
            PlanKind::FreeConnexYannakakis,
            fc.query,
            fc.rels,
        ),
        ("line", PlanKind::Line, line.query, line.rels),
        ("star", PlanKind::Star, star.query, star.rels),
        ("star-like", PlanKind::StarLike, star_like.0, star_like.1),
        ("tree", PlanKind::Tree, tree.query, tree.rels),
    ]
}

/// A center with one two-hop arm and two one-hop arms (§6's shape).
fn star_like_workload(scale: u64) -> (TreeQuery, Vec<Relation<Count>>) {
    let (b, mid) = (Attr(9), Attr(10));
    let q = TreeQuery::new(
        vec![
            Edge::binary(b, Attr(0)),
            Edge::binary(b, mid),
            Edge::binary(mid, Attr(1)),
            Edge::binary(b, Attr(2)),
        ],
        [Attr(0), Attr(1), Attr(2)],
    );
    let n = 24 * scale;
    let rels = vec![
        Relation::binary_ones(b, Attr(0), (0..n).map(|i| (i % 4, i % 7))),
        Relation::binary_ones(b, mid, (0..n).map(|i| (i % 4, i % 5))),
        Relation::binary_ones(mid, Attr(1), (0..n).map(|i| (i % 5, i % 6))),
        Relation::binary_ones(b, Attr(2), (0..n).map(|i| (i % 4, i % 3))),
    ];
    (q, rels)
}

/// Draw a random fault plan: one to three specs over the early rounds,
/// every fault kind reachable. Drop probabilities stay below certainty
/// so the default retry policy recovers almost every schedule; the rare
/// exhaustion exercises the structured-error path instead.
fn random_plan(seed: u64, servers: usize) -> FaultPlan {
    let mut r = rng(seed);
    let mut plan = FaultPlan::new(seed).retries(5);
    for _ in 0..r.gen_range(1..4u64) {
        let round = r.gen_range(0..10u64);
        plan = match r.gen_range(0..6u64) {
            0 => {
                let width = r.gen_range(1..4u64);
                plan.drop_window(round, round + width, 0.2 + 0.6 * r.gen_f64())
            }
            1 => plan.duplicate(round, 0.2 + 0.6 * r.gen_f64()),
            2 => plan.reorder(round),
            3 => plan.crash(round, r.gen_range(0..servers as u64) as usize),
            4 => plan.straggle(
                round,
                r.gen_range(0..servers as u64) as usize,
                Duration::from_micros(r.gen_range(10..200u64)),
            ),
            _ => plan.compute_fault(round, r.gen_range(1..3u64) as u32),
        };
    }
    plan
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cases = workloads(args.scale);

    // Fault-free twins, one per workload — and a plan-coverage check:
    // the sweep is only meaningful if it really spans every PlanKind.
    let mut clean = Vec::new();
    for (name, kind, q, rels) in &cases {
        let r = match QueryEngine::new(args.servers).run(q, rels) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaos: {name}: fault-free run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if r.plan != *kind {
            eprintln!(
                "chaos: {name}: expected plan {kind:?}, engine chose {:?}",
                r.plan
            );
            return ExitCode::FAILURE;
        }
        if !r.output.semantically_eq(&execute_sequential(q, rels)) {
            eprintln!("chaos: {name}: fault-free run disagrees with the oracle");
            return ExitCode::FAILURE;
        }
        clean.push(r);
    }

    let (mut fired, mut unrecoverable, mut failures) = (0u64, 0u64, 0u64);
    for i in 0..args.schedules {
        let case = (i % cases.len() as u64) as usize;
        let (name, _, q, rels) = &cases[case];
        let seed = args.seed + i;
        let plan = random_plan(seed, args.servers);
        match QueryEngine::new(args.servers).faults(plan).run(q, rels) {
            Ok(r) => {
                let report = r.recovery.as_ref().expect("fault plan was installed");
                if !report.is_clean() {
                    fired += 1;
                }
                let twin = &clean[case];
                if r.cost != twin.cost {
                    eprintln!(
                        "chaos: schedule {i} [{name}, seed {seed}]: ledger drift — faulted {:?} vs clean {:?}\n  {report}",
                        r.cost, twin.cost
                    );
                    failures += 1;
                } else if !r.output.semantically_eq(&twin.output) {
                    eprintln!(
                        "chaos: schedule {i} [{name}, seed {seed}]: output drift\n  {report}"
                    );
                    failures += 1;
                } else {
                    println!("schedule {i} [{name}, seed {seed}]: {report}");
                }
            }
            Err(MpcError::Unrecoverable { round, detail }) => {
                unrecoverable += 1;
                println!(
                    "schedule {i} [{name}, seed {seed}]: unrecoverable at round {round}: {detail}"
                );
            }
            Err(e) => {
                eprintln!("chaos: schedule {i} [{name}, seed {seed}]: unexpected error: {e}");
                failures += 1;
            }
        }
    }

    println!(
        "chaos: {} schedules over {} workloads — {fired} fired faults, {unrecoverable} unrecoverable, {failures} failures",
        args.schedules,
        cases.len()
    );
    if failures > 0 {
        return ExitCode::FAILURE;
    }
    if args.schedules >= cases.len() as u64 && fired == 0 {
        eprintln!("chaos: no schedule fired a single fault — the sweep is vacuous");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `trace_check` — validate a trace JSON document emitted by
//! `mpcjoin-cli --trace` (or `Trace::to_json`) without any third-party
//! JSON dependency. Used by CI to keep the exporter honest.
//!
//! ```text
//! trace_check out/trace.json
//! ```
//!
//! Checks, in order: the document parses, carries a known schema tag
//! (`mpcjoin-trace-v1`, `-v2`, or `-v3`), every event's traffic matrix
//! is `servers × servers` and re-sums to its received vector, the
//! events account for exactly `total_units` of traffic, the maximum
//! (server, round) cell equals `load`, and the embedded report
//! (per-server histogram, critical cell) agrees with the recomputation.
//! For v2+ documents carrying a non-null `audit` member, the verdict
//! must audit this very trace (`audit.measured == load`) and its
//! `within` flag must be consistent with `measured ≤ slack·bound +
//! additive`. v3 documents additionally carry the fault plane's story:
//! a `recovery` event array (every event well-formed, a known kind, in
//! round range) and a `recovery_report` whose counters must agree with
//! those events (retransmissions vs `retries`, crash replays vs
//! `servers_lost`, `recovered` vs `unrecoverable`).

use mpcjoin::mpc::json::Json;
use std::collections::HashMap;
use std::process::ExitCode;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    let str_field = |j: &Json, k: &str| -> Result<String, String> {
        j.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{k}`"))
    };
    let num_field = |j: &Json, k: &str| -> Result<u64, String> {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing numeric field `{k}`"))
    };

    let schema = str_field(&doc, "schema")?;
    if !matches!(
        schema.as_str(),
        "mpcjoin-trace-v1" | "mpcjoin-trace-v2" | "mpcjoin-trace-v3"
    ) {
        return Err(format!("unknown schema `{schema}`"));
    }
    let servers = num_field(&doc, "servers")? as usize;
    if servers == 0 {
        return Err("servers must be positive".into());
    }
    let load = num_field(&doc, "load")?;
    let rounds = num_field(&doc, "rounds")?;
    let total_units = num_field(&doc, "total_units")?;

    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing `events` array")?;
    let mut unit_sum = 0u64;
    let mut cells: HashMap<(usize, u64), u64> = HashMap::new();
    let mut per_server = vec![0u64; servers];
    for (i, event) in events.iter().enumerate() {
        let round = num_field(event, "round")?;
        if round >= rounds {
            return Err(format!(
                "event {i}: round {round} out of range (rounds = {rounds})"
            ));
        }
        let received: Vec<u64> = event
            .get("received")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("event {i}: missing `received`"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("event {i}: bad unit count"))
            })
            .collect::<Result<_, _>>()?;
        if received.len() != servers {
            return Err(format!(
                "event {i}: received vector has {} entries for {servers} servers",
                received.len()
            ));
        }
        let traffic = event
            .get("traffic")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("event {i}: missing `traffic`"))?;
        if traffic.len() != servers {
            return Err(format!(
                "event {i}: traffic matrix is not {servers}×{servers}"
            ));
        }
        for (dst, &got) in received.iter().enumerate() {
            let mut col_sum = 0u64;
            for row in traffic {
                let row = row
                    .as_arr()
                    .ok_or_else(|| format!("event {i}: traffic row is not an array"))?;
                if row.len() != servers {
                    return Err(format!(
                        "event {i}: traffic matrix is not {servers}×{servers}"
                    ));
                }
                col_sum += row[dst]
                    .as_u64()
                    .ok_or_else(|| format!("event {i}: bad traffic cell"))?;
            }
            if col_sum != got {
                return Err(format!(
                    "event {i}: traffic column {dst} sums to {col_sum}, received says {got}"
                ));
            }
            *cells.entry((dst, round)).or_default() += got;
            per_server[dst] += got;
            unit_sum += got;
        }
    }
    if unit_sum != total_units {
        return Err(format!(
            "events account for {unit_sum} units, header says {total_units}"
        ));
    }
    let max_cell = cells.values().copied().max().unwrap_or(0);
    if max_cell != load {
        return Err(format!(
            "max (server, round) cell is {max_cell}, header says load = {load}"
        ));
    }

    let report = doc.get("report").ok_or("missing `report`")?;
    let reported: Vec<u64> = report
        .get("per_server")
        .and_then(Json::as_arr)
        .ok_or("missing `report.per_server`")?
        .iter()
        .map(|v| v.as_u64().ok_or("bad per_server entry".to_string()))
        .collect::<Result<_, _>>()?;
    if reported != per_server {
        return Err("report.per_server disagrees with the events".into());
    }
    match report.get("critical") {
        Some(Json::Null) | None => {
            if load > 0 {
                return Err("load is positive but report.critical is null".into());
            }
        }
        Some(critical) => {
            let units = num_field(critical, "units")?;
            if units != load {
                return Err(format!("report.critical.units = {units} but load = {load}"));
            }
            let server = num_field(critical, "server")? as usize;
            let round = num_field(critical, "round")?;
            if cells.get(&(server, round)).copied().unwrap_or(0) != load {
                return Err("report.critical does not point at a maximal cell".into());
            }
        }
    }

    // v2+ documents may embed a bound-audit verdict; when present it
    // must audit this very trace and be internally consistent.
    let mut audit_note = String::new();
    match doc.get("audit") {
        None if schema != "mpcjoin-trace-v1" => {
            return Err(format!("{schema} document missing `audit`"))
        }
        None | Some(Json::Null) => {}
        Some(audit) => {
            let measured = num_field(audit, "measured")?;
            if measured != load {
                return Err(format!(
                    "audit.measured = {measured} but the trace's load is {load}"
                ));
            }
            let f64_field = |k: &str| -> Result<f64, String> {
                audit
                    .get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("missing numeric field `audit.{k}`"))
            };
            let bound = f64_field("bound")?;
            let slack = f64_field("slack")?;
            let additive = f64_field("additive")?;
            let within = match audit.get("within") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing boolean field `audit.within`".into()),
            };
            if within != (measured as f64 <= slack * bound + additive) {
                return Err(format!(
                    "audit.within = {within} contradicts {measured} vs {slack}·{bound} + {additive}"
                ));
            }
            audit_note = format!(", audit {}", if within { "ok" } else { "VIOLATION" });
        }
    }

    // v3 documents carry the fault plane's recovery story; the event
    // list and the embedded report must tell the same one.
    let mut recovery_note = String::new();
    if schema == "mpcjoin-trace-v3" {
        const KINDS: [&str; 7] = [
            "retransmit",
            "dedup",
            "resequence",
            "crash_replay",
            "straggler",
            "compute_retry",
            "unrecoverable",
        ];
        let recovery = doc
            .get("recovery")
            .and_then(Json::as_arr)
            .ok_or("v3 document missing `recovery` array")?;
        let mut by_kind: HashMap<&str, u64> = HashMap::new();
        for (i, event) in recovery.iter().enumerate() {
            let kind = str_field(event, "kind").map_err(|e| format!("recovery event {i}: {e}"))?;
            let Some(known) = KINDS.iter().find(|k| **k == kind) else {
                return Err(format!("recovery event {i}: unknown kind `{kind}`"));
            };
            *by_kind.entry(known).or_default() += 1;
            // Recovery fires at round *boundaries*: a compute retry can
            // sit at the boundary after the last credited round, so the
            // legal range is one wider than the events' strict `< rounds`.
            let round =
                num_field(event, "round").map_err(|e| format!("recovery event {i}: {e}"))?;
            if round > rounds {
                return Err(format!(
                    "recovery event {i}: round {round} out of range (rounds = {rounds})"
                ));
            }
            for k in ["attempt", "units", "delay_ns"] {
                num_field(event, k).map_err(|e| format!("recovery event {i}: {e}"))?;
            }
            for k in ["phase", "label"] {
                str_field(event, k).map_err(|e| format!("recovery event {i}: {e}"))?;
            }
        }
        match doc.get("recovery_report") {
            None => return Err("v3 document missing `recovery_report`".into()),
            Some(Json::Null) => {
                if !recovery.is_empty() {
                    return Err("recovery events present but `recovery_report` is null".into());
                }
            }
            Some(report) => {
                let rschema = str_field(report, "schema").map_err(|e| format!("recovery: {e}"))?;
                if rschema != "mpcjoin-recovery-v1" {
                    return Err(format!("unknown recovery report schema `{rschema}`"));
                }
                let rnum = |k: &str| num_field(report, k).map_err(|e| format!("recovery: {e}"));
                let retries = rnum("retries")?;
                if retries != by_kind.get("retransmit").copied().unwrap_or(0) {
                    return Err(format!(
                        "recovery_report.retries = {retries} but the trace carries {} retransmit events",
                        by_kind.get("retransmit").copied().unwrap_or(0)
                    ));
                }
                let lost = report
                    .get("servers_lost")
                    .and_then(Json::as_arr)
                    .ok_or("recovery: missing `servers_lost` array")?
                    .len() as u64;
                if lost != by_kind.get("crash_replay").copied().unwrap_or(0) {
                    return Err(format!(
                        "recovery_report.servers_lost has {lost} entries but the trace carries {} crash_replay events",
                        by_kind.get("crash_replay").copied().unwrap_or(0)
                    ));
                }
                let recovered = match report.get("recovered") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err("recovery: missing boolean field `recovered`".into()),
                };
                let poisoned = !matches!(report.get("unrecoverable"), Some(Json::Null) | None);
                if recovered == poisoned {
                    return Err(format!(
                        "recovery_report.recovered = {recovered} contradicts its `unrecoverable` member"
                    ));
                }
                let embedded = report
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("recovery: missing `events` array")?;
                if embedded.len() != recovery.len() {
                    return Err(format!(
                        "recovery_report.events has {} entries, trace `recovery` has {}",
                        embedded.len(),
                        recovery.len()
                    ));
                }
                recovery_note = format!(
                    ", recovery {} ({} events)",
                    if recovered { "ok" } else { "FAILED" },
                    recovery.len()
                );
            }
        }
    }

    Ok(format!(
        "trace OK ({schema}): {} servers, {} events, load {load}, {rounds} rounds, {total_units} units{audit_note}{recovery_note}",
        servers,
        events.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `trace_check` — validate a trace JSON document emitted by
//! `mpcjoin-cli --trace` (or `Trace::to_json`) without any third-party
//! JSON dependency. Used by CI to keep the exporter honest.
//!
//! ```text
//! trace_check out/trace.json
//! ```
//!
//! Checks, in order: the document parses, carries a known schema tag
//! (`mpcjoin-trace-v1` or `mpcjoin-trace-v2`), every event's traffic
//! matrix is `servers × servers` and re-sums to its received vector, the
//! events account for exactly `total_units` of traffic, the maximum
//! (server, round) cell equals `load`, and the embedded report
//! (per-server histogram, critical cell) agrees with the recomputation.
//! For v2 documents carrying a non-null `audit` member, the verdict must
//! audit this very trace (`audit.measured == load`) and its `within`
//! flag must be consistent with `measured ≤ slack·bound + additive`.

use mpcjoin::mpc::json::Json;
use std::collections::HashMap;
use std::process::ExitCode;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;

    let str_field = |j: &Json, k: &str| -> Result<String, String> {
        j.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{k}`"))
    };
    let num_field = |j: &Json, k: &str| -> Result<u64, String> {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing numeric field `{k}`"))
    };

    let schema = str_field(&doc, "schema")?;
    if schema != "mpcjoin-trace-v1" && schema != "mpcjoin-trace-v2" {
        return Err(format!("unknown schema `{schema}`"));
    }
    let servers = num_field(&doc, "servers")? as usize;
    if servers == 0 {
        return Err("servers must be positive".into());
    }
    let load = num_field(&doc, "load")?;
    let rounds = num_field(&doc, "rounds")?;
    let total_units = num_field(&doc, "total_units")?;

    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing `events` array")?;
    let mut unit_sum = 0u64;
    let mut cells: HashMap<(usize, u64), u64> = HashMap::new();
    let mut per_server = vec![0u64; servers];
    for (i, event) in events.iter().enumerate() {
        let round = num_field(event, "round")?;
        if round >= rounds {
            return Err(format!(
                "event {i}: round {round} out of range (rounds = {rounds})"
            ));
        }
        let received: Vec<u64> = event
            .get("received")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("event {i}: missing `received`"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("event {i}: bad unit count"))
            })
            .collect::<Result<_, _>>()?;
        if received.len() != servers {
            return Err(format!(
                "event {i}: received vector has {} entries for {servers} servers",
                received.len()
            ));
        }
        let traffic = event
            .get("traffic")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("event {i}: missing `traffic`"))?;
        if traffic.len() != servers {
            return Err(format!(
                "event {i}: traffic matrix is not {servers}×{servers}"
            ));
        }
        for (dst, &got) in received.iter().enumerate() {
            let mut col_sum = 0u64;
            for row in traffic {
                let row = row
                    .as_arr()
                    .ok_or_else(|| format!("event {i}: traffic row is not an array"))?;
                if row.len() != servers {
                    return Err(format!(
                        "event {i}: traffic matrix is not {servers}×{servers}"
                    ));
                }
                col_sum += row[dst]
                    .as_u64()
                    .ok_or_else(|| format!("event {i}: bad traffic cell"))?;
            }
            if col_sum != got {
                return Err(format!(
                    "event {i}: traffic column {dst} sums to {col_sum}, received says {got}"
                ));
            }
            *cells.entry((dst, round)).or_default() += got;
            per_server[dst] += got;
            unit_sum += got;
        }
    }
    if unit_sum != total_units {
        return Err(format!(
            "events account for {unit_sum} units, header says {total_units}"
        ));
    }
    let max_cell = cells.values().copied().max().unwrap_or(0);
    if max_cell != load {
        return Err(format!(
            "max (server, round) cell is {max_cell}, header says load = {load}"
        ));
    }

    let report = doc.get("report").ok_or("missing `report`")?;
    let reported: Vec<u64> = report
        .get("per_server")
        .and_then(Json::as_arr)
        .ok_or("missing `report.per_server`")?
        .iter()
        .map(|v| v.as_u64().ok_or("bad per_server entry".to_string()))
        .collect::<Result<_, _>>()?;
    if reported != per_server {
        return Err("report.per_server disagrees with the events".into());
    }
    match report.get("critical") {
        Some(Json::Null) | None => {
            if load > 0 {
                return Err("load is positive but report.critical is null".into());
            }
        }
        Some(critical) => {
            let units = num_field(critical, "units")?;
            if units != load {
                return Err(format!("report.critical.units = {units} but load = {load}"));
            }
            let server = num_field(critical, "server")? as usize;
            let round = num_field(critical, "round")?;
            if cells.get(&(server, round)).copied().unwrap_or(0) != load {
                return Err("report.critical does not point at a maximal cell".into());
            }
        }
    }

    // v2 documents may embed a bound-audit verdict; when present it must
    // audit this very trace and be internally consistent.
    let mut audit_note = String::new();
    match doc.get("audit") {
        None if schema == "mpcjoin-trace-v2" => return Err("v2 document missing `audit`".into()),
        None | Some(Json::Null) => {}
        Some(audit) => {
            let measured = num_field(audit, "measured")?;
            if measured != load {
                return Err(format!(
                    "audit.measured = {measured} but the trace's load is {load}"
                ));
            }
            let f64_field = |k: &str| -> Result<f64, String> {
                audit
                    .get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("missing numeric field `audit.{k}`"))
            };
            let bound = f64_field("bound")?;
            let slack = f64_field("slack")?;
            let additive = f64_field("additive")?;
            let within = match audit.get("within") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing boolean field `audit.within`".into()),
            };
            if within != (measured as f64 <= slack * bound + additive) {
                return Err(format!(
                    "audit.within = {within} contradicts {measured} vs {slack}·{bound} + {additive}"
                ));
            }
            audit_note = format!(", audit {}", if within { "ok" } else { "VIOLATION" });
        }
    }

    Ok(format!(
        "trace OK ({schema}): {} servers, {} events, load {load}, {rounds} rounds, {total_units} units{audit_note}",
        servers,
        events.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

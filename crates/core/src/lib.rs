//! # mpcjoin
//!
//! Massively parallel algorithms for sparse matrix multiplication and
//! join-aggregate queries — a from-scratch Rust reproduction of
//!
//! > Xiao Hu and Ke Yi. *Parallel Algorithms for Sparse Matrix
//! > Multiplication and Join-Aggregate Queries.* PODS 2020.
//!
//! The library evaluates join-aggregate queries over annotated relations
//! (any commutative semiring) whose hypergraph is a tree with arbitrary
//! output attributes, on an instrumented simulator of the MPC model that
//! measures the *load* — the paper's cost metric — exactly.
//!
//! ## Quick start
//!
//! ```
//! use mpcjoin::prelude::*;
//!
//! // ∑_B R1(A,B) ⋈ R2(B,C): sparse matrix multiplication, counting the
//! // two-hop paths between each (a, c) pair.
//! let (a, b, c) = (Attr(0), Attr(1), Attr(2));
//! let q = TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c]);
//! let r1: Relation<Count> = Relation::binary_ones(a, b, [(1, 10), (1, 11), (2, 10)]);
//! let r2: Relation<Count> = Relation::binary_ones(b, c, [(10, 7), (11, 7)]);
//!
//! let result = mpcjoin::QueryEngine::new(8).run(&q, &[r1, r2]).unwrap();
//! assert_eq!(result.plan, mpcjoin::PlanKind::MatMul);
//! // (1,7) is reachable via b=10 and b=11: count 2.
//! assert!(result
//!     .output
//!     .canonical()
//!     .contains(&(vec![1, 7], Count(2))));
//! println!("{result}"); // plan, load, rounds, traffic, elapsed, skew
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper |
//! |---|---|---|
//! | [`semiring`] | the [`Semiring`](semiring::Semiring) trait + instances | §1.1 |
//! | [`relation`] | annotated relations, local operators | §1.1 |
//! | [`mpc`] | the instrumented MPC simulator and §2.1 primitives | §1.3, §2.1 |
//! | [`sketch`] | KMV output-size estimation | §2.2 |
//! | [`query`] | tree queries, classification, twigs, skeletons | §1.1, §7 |
//! | [`compiler`] | logical plan IR, enumeration, cost-based selection | Table 1 |
//! | [`yannakakis`] | sequential oracle + distributed baseline | §1.2, §1.4 |
//! | [`matmul`] | Theorem 1 matrix multiplication + hard instances | §3 |
//! | [`joinagg`] | line / star / star-like / tree algorithms | §4–§7 |
//! | [`workload`] | deterministic instance generators | experiments |

pub use mpcjoin_compiler as compiler;
pub use mpcjoin_joinagg as joinagg;
pub use mpcjoin_matmul as matmul;
pub use mpcjoin_mpc as mpc;
pub use mpcjoin_query as query;
pub use mpcjoin_relation as relation;
pub use mpcjoin_semiring as semiring;
pub use mpcjoin_sketch as sketch;
pub use mpcjoin_workload as workload;
pub use mpcjoin_yannakakis as yannakakis;

pub mod audit;
mod planner;
mod verify;

/// The closed-form load bounds of Table 1 / Theorems 1–6 (re-exported
/// from `mpcjoin_matmul::theory` so bound consumers — the auditor, the
/// bench harness — share one set of formulas).
pub use mpcjoin_matmul::theory;

pub use audit::{AuditVerdict, BoundAuditor, DEFAULT_SLACK};
pub use planner::{
    execute_on, execute_sequential, parse_plan_choice, ExecutionResult, PlanChoice, PlanKind,
    QueryEngine, PLAN_NAMES,
};
pub use verify::{verify_instance, Verification};

/// The common imports for applications.
pub mod prelude {
    pub use crate::audit::{AuditVerdict, BoundAuditor};
    pub use crate::planner::{
        parse_plan_choice, ExecutionResult, PlanChoice, PlanKind, QueryEngine,
    };
    pub use mpcjoin_compiler::{Explain, Stats};
    pub use mpcjoin_mpc::{
        Cluster, CostReport, DistRelation, FaultKind, FaultPlan, MetricsSnapshot, MpcError,
        RecoveryReport, Trace,
    };
    pub use mpcjoin_query::{Edge, TreeQuery};
    pub use mpcjoin_relation::{Attr, Relation, Schema, Value};
    pub use mpcjoin_semiring::{
        BoolRing, Bottleneck, Count, MaxPlus, MinCount, Prod, Semiring, TropicalMin, Viterbi,
        WhyProv, XorRing,
    };
}

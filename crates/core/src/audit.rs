//! Theoretical-bound auditing: check every measured load against the
//! paper's bound for the plan that actually ran.
//!
//! Table 1 and Theorems 1–6 of Hu & Yi (PODS 2020) are `O(·)` statements;
//! the simulator measures loads in exact units. The [`BoundAuditor`]
//! closes the loop: after a [`crate::QueryEngine::run`], it evaluates the
//! closed-form bound of the executed [`PlanKind`] (the formulas of
//! [`mpcjoin_matmul::theory`], re-exported as [`crate::theory`]) on the
//! instance's `(N, OUT, p)` and compares. The resulting [`AuditVerdict`]
//! is attached to every [`crate::ExecutionResult`], surfaced in its
//! `Display`, and embeddable in trace JSON (schema `mpcjoin-trace-v3`)
//! and the bench artifacts.
//!
//! ## The slack constant
//!
//! `O(·)` hides constants, so the verdict's `within` flag tests
//! `measured ≤ slack·bound + p` rather than `measured ≤ bound`. The
//! default slack is [`DEFAULT_SLACK`] = 4: the §3.1 worst-case optimal
//! algorithm's light-light grid delivers one A-bundle plus one C-bundle
//! to each cell, each of size up to `2L` after parallel-packing, i.e.
//! exactly `4·√(N1N2/p)` units in its routing round (measured and
//! documented in EXPERIMENTS.md; observed ratios across the Table-1
//! sweeps top out near 2.8 once clear of the small-instance floor). The
//! additive `p·(1 + ⌈log₂p⌉²)` term covers the statistics exchanges —
//! global sizes, degree histograms, and above all the `Θ(p·log p)`
//! splitter samples each sample-sort pools at its coordinator, summed
//! over the constant number of relations sorted concurrently in one
//! round — that the theorems absorb under the `N ≥ p^{1+ε}` regime but
//! that dominate on deliberately tiny instances (measured floor ≈
//! `20·p`–`28·p` at scale 1, independent of `N`).

use crate::planner::PlanKind;
use mpcjoin_mpc::json::Json;
use mpcjoin_query::TreeQuery;
use mpcjoin_relation::Relation;
use mpcjoin_semiring::Semiring;
use std::fmt;

/// Default multiplicative slack applied to the paper's bounds: the
/// largest constant the reproduced algorithms provably incur (the §3.1
/// light-light grid's `4L` routing round).
pub const DEFAULT_SLACK: f64 = 4.0;

/// Outcome of checking one run's measured load against the theoretical
/// bound of the plan that ran.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditVerdict {
    /// The plan whose bound was evaluated.
    pub plan: PlanKind,
    /// The closed-form bound in load units (an `O(·)` *shape*, constants
    /// stripped).
    pub bound: f64,
    /// The measured load `L` of the run.
    pub measured: u64,
    /// `measured / bound`; [`f64::INFINITY`] when `bound` is zero but
    /// units moved (serialized as `null` in JSON).
    pub ratio: f64,
    /// Multiplicative slack the verdict allowed.
    pub slack: f64,
    /// Additive allowance (in units) the verdict allowed —
    /// [`BoundAuditor::additive_for`]`(p)`, covering the statistics
    /// exchanges outside the `N ≥ p^{1+ε}` regime.
    pub additive: f64,
    /// `measured ≤ slack·bound + additive`.
    pub within: bool,
}

impl AuditVerdict {
    /// True when the measured load exceeds `frac` of the allowed
    /// envelope `slack·bound + additive` — the serving layer's
    /// bound-regression watchdog calls this with `frac = 0.8` to count
    /// *near*-violations before they become violations. Uses the same
    /// envelope as `within`, so a verdict with `near_violation(1.0)`
    /// false is always `within`.
    pub fn near_violation(&self, frac: f64) -> bool {
        self.measured as f64 > frac * (self.slack * self.bound + self.additive)
    }

    /// Serialize as a JSON value (embedded into trace documents and
    /// bench artifacts). A non-finite `ratio` becomes `null` — the JSON
    /// writer refuses non-finite numbers by design.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("plan".into(), Json::Str(format!("{:?}", self.plan))),
            ("bound".into(), Json::Num(self.bound)),
            ("measured".into(), Json::Num(self.measured as f64)),
            (
                "ratio".into(),
                if self.ratio.is_finite() {
                    Json::Num(self.ratio)
                } else {
                    Json::Null
                },
            ),
            ("slack".into(), Json::Num(self.slack)),
            ("additive".into(), Json::Num(self.additive)),
            ("within".into(), Json::Bool(self.within)),
        ])
    }
}

impl fmt::Display for AuditVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ratio = if self.ratio.is_finite() {
            format!("{:.2}", self.ratio)
        } else {
            "inf".to_string()
        };
        if self.within {
            write!(
                f,
                "ratio {ratio} of bound {:.1} (ok, slack {:.1}x)",
                self.bound, self.slack
            )
        } else {
            write!(
                f,
                "ratio {ratio} of bound {:.1} (BOUND VIOLATION: {} > {:.1}x bound + {:.0})",
                self.bound, self.measured, self.slack, self.additive
            )
        }
    }
}

/// Audits measured loads against the paper's closed-form bounds.
#[derive(Clone, Copy, Debug)]
pub struct BoundAuditor {
    slack: f64,
}

impl Default for BoundAuditor {
    fn default() -> Self {
        BoundAuditor::new()
    }
}

impl BoundAuditor {
    /// An auditor with the default slack ([`DEFAULT_SLACK`]).
    pub fn new() -> Self {
        BoundAuditor {
            slack: DEFAULT_SLACK,
        }
    }

    /// An auditor with an explicit multiplicative slack (≥ 0).
    pub fn with_slack(slack: f64) -> Self {
        BoundAuditor { slack }
    }

    /// The additive allowance for a run on `p` servers:
    /// `p·(1 + ⌈log₂p⌉²)` units. Sample sort pools `Θ(p·log p)` splitter
    /// samples at its coordinator and a constant number of relations are
    /// sorted concurrently in one round, so tiny instances see a load
    /// floor proportional to `p·log p` that no `O(·)` bound reflects;
    /// the extra `log` is headroom for those stacked statistics rounds.
    /// Negligible against `slack·bound` once `N ≥ p^{1+ε}`.
    pub fn additive_for(p: usize) -> f64 {
        let lg = (p as f64).log2().ceil().max(1.0);
        p as f64 * (1.0 + lg * lg)
    }

    /// The closed-form bound (in load units, constants stripped) for
    /// `plan` executed on an instance with the given per-edge relation
    /// sizes, output size, and server count.
    ///
    /// `Line`/`Star`/`StarLike` share the paper's star/line bound and
    /// `Tree` uses Theorem 6, both parameterized by `N = max |R_i|` (the
    /// convention of Table 1 and the bench harness). The Yannakakis
    /// baseline is audited against *its own* Table-1 column, which
    /// depends on the query shape it ran on.
    ///
    /// This delegates to [`mpcjoin_compiler::predict_bound`] — the exact
    /// function the cost-based planner prices candidates with — so the
    /// optimizer's predictions and the auditor's verdicts provably come
    /// from one formula.
    pub fn bound_for(&self, plan: PlanKind, q: &TreeQuery, sizes: &[u64], out: u64, p: u64) -> f64 {
        mpcjoin_compiler::predict_bound(plan, q, sizes, out, p)
    }

    /// Audit one finished run: evaluate the bound for `plan` on the
    /// original `instance` (sizes taken before dangling removal, as in
    /// the theorems) and compare against the measured load.
    pub fn audit<S: Semiring>(
        &self,
        plan: PlanKind,
        q: &TreeQuery,
        instance: &[Relation<S>],
        p: usize,
        out: u64,
        measured: u64,
    ) -> AuditVerdict {
        let sizes: Vec<u64> = instance.iter().map(|r| r.len() as u64).collect();
        let bound = self.bound_for(plan, q, &sizes, out, p as u64);
        let additive = BoundAuditor::additive_for(p);
        let ratio = if bound > 0.0 {
            measured as f64 / bound
        } else if measured == 0 {
            0.0
        } else {
            f64::INFINITY
        };
        AuditVerdict {
            plan,
            bound,
            measured,
            ratio,
            slack: self.slack,
            additive,
            within: (measured as f64) <= self.slack * bound + additive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_matmul::theory;
    use mpcjoin_query::Edge;
    use mpcjoin_relation::Attr;
    use mpcjoin_semiring::Count;

    fn mm_query() -> TreeQuery {
        let (a, b, c) = (Attr(0), Attr(1), Attr(2));
        TreeQuery::new(vec![Edge::binary(a, b), Edge::binary(b, c)], [a, c])
    }

    #[test]
    fn matmul_bound_uses_both_relation_sizes() {
        let q = mm_query();
        let auditor = BoundAuditor::new();
        let b = auditor.bound_for(PlanKind::MatMul, &q, &[1 << 10, 1 << 14], 1 << 12, 64);
        assert!((b - theory::new_mm_bound(1 << 10, 1 << 14, 1 << 12, 64)).abs() < 1e-9);
    }

    #[test]
    fn baseline_bound_follows_query_shape() {
        let q = mm_query();
        let auditor = BoundAuditor::new();
        let b = auditor.bound_for(PlanKind::FreeConnexYannakakis, &q, &[100, 100], 50, 8);
        assert!((b - theory::yannakakis_mm_bound(200, 50, 8)).abs() < 1e-9);
    }

    #[test]
    fn verdict_flags_violations_beyond_slack() {
        let q = mm_query();
        let r1 = Relation::<Count>::binary_ones(Attr(0), Attr(1), (0..1000u64).map(|i| (i, i)));
        let r2 = Relation::<Count>::binary_ones(Attr(1), Attr(2), (0..1000u64).map(|i| (i, i)));
        let rels = [r1, r2];
        let auditor = BoundAuditor::new();
        let bound = auditor.bound_for(PlanKind::MatMul, &q, &[1000, 1000], 1000, 16);
        let ok = auditor.audit(PlanKind::MatMul, &q, &rels, 16, 1000, bound as u64);
        assert!(ok.within, "measured = bound is always within slack");
        assert!((ok.ratio - 1.0).abs() < 0.05);
        let violating = (DEFAULT_SLACK * bound + BoundAuditor::additive_for(16) + 10.0) as u64;
        let bad = auditor.audit(PlanKind::MatMul, &q, &rels, 16, 1000, violating);
        assert!(!bad.within, "past slack·bound + p must be flagged");
        assert!(bad.to_json().get("within") == Some(&Json::Bool(false)));
    }

    #[test]
    fn zero_bound_zero_measured_is_clean() {
        let q = mm_query();
        let rels: [Relation<Count>; 2] = [
            Relation::binary_ones(Attr(0), Attr(1), []),
            Relation::binary_ones(Attr(1), Attr(2), []),
        ];
        let v = BoundAuditor::new().audit(PlanKind::MatMul, &q, &rels, 4, 0, 0);
        assert!(v.within);
        assert_eq!(v.ratio, 0.0);
        // A non-finite ratio must serialize as null, never NaN.
        let v2 = AuditVerdict {
            ratio: f64::INFINITY,
            ..v
        };
        assert_eq!(v2.to_json().get("ratio"), Some(&Json::Null));
        let text = v2.to_json().to_string_compact().expect("serializable");
        assert!(text.contains("\"ratio\":null"));
    }

    #[test]
    fn near_violation_is_a_strict_subset_of_the_envelope() {
        let v = AuditVerdict {
            plan: PlanKind::MatMul,
            bound: 100.0,
            measured: 0,
            ratio: 0.0,
            slack: DEFAULT_SLACK,
            additive: 100.0, // envelope = 4·100 + 100 = 500
            within: true,
        };
        let at = |measured: u64| AuditVerdict {
            measured,
            ..v.clone()
        };
        assert!(!at(400).near_violation(0.8), "at the 0.8 edge: not over");
        assert!(at(401).near_violation(0.8));
        assert!(at(500).near_violation(0.8), "violations are also near");
        assert!(
            !at(500).near_violation(1.0),
            "exactly the envelope is within"
        );
        assert!(at(501).near_violation(1.0));
    }

    #[test]
    fn display_names_violations() {
        let v = AuditVerdict {
            plan: PlanKind::MatMul,
            bound: 867.81,
            measured: 1826,
            ratio: 2.104,
            slack: DEFAULT_SLACK,
            additive: 16.0,
            within: true,
        };
        let s = v.to_string();
        assert!(s.contains("2.10"), "{s}");
        assert!(s.contains("ok"), "{s}");
        let bad = AuditVerdict { within: false, ..v };
        assert!(bad.to_string().contains("VIOLATION"));
    }
}

//! The query planner: classify a tree join-aggregate query and dispatch
//! to the algorithm with the best known load bound.

use mpcjoin_joinagg::{line_query, star_like_query, star_query, tree_query};
use mpcjoin_matmul::matmul;
use mpcjoin_mpc::{Cluster, CostReport, DistRelation};
use mpcjoin_query::{classify, Shape, TreeQuery};
use mpcjoin_relation::{Attr, Relation, Row, Schema};
use mpcjoin_semiring::Semiring;
use mpcjoin_yannakakis::{distributed_yannakakis, sequential_join_aggregate, validate_instance};

/// Which top-level plan the engine chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// Free-connex query: the distributed Yannakakis algorithm is already
    /// output-optimal (§1.2).
    FreeConnexYannakakis,
    /// Sparse matrix multiplication (§3, Theorem 1).
    MatMul,
    /// Line query (§4, Theorem 4).
    Line,
    /// Star query (§5, Theorem 5).
    Star,
    /// Star-like query (§6, Lemma 7).
    StarLike,
    /// General tree pipeline: reduce → twigs → combine (§7, Theorem 6).
    Tree,
}

/// Result of executing a query on the simulated cluster.
pub struct ExecutionResult<S: Semiring> {
    /// The query output over `q.output()` (sorted attribute order).
    pub output: Relation<S>,
    /// Measured cost of the whole run: load, rounds, total traffic.
    pub cost: CostReport,
    /// The plan that was executed.
    pub plan: PlanKind,
    /// Placement skew of the distributed output before gathering
    /// (max / mean tuples per server; 1.0 is perfectly balanced).
    pub output_skew: f64,
}

/// Evaluate `q` on an already-populated cluster; returns the distributed
/// output and the chosen plan. The cluster's cost ledger accumulates the
/// run's load.
pub fn execute_on<S: Semiring>(
    cluster: &mut Cluster,
    q: &TreeQuery,
    rels: &[DistRelation<S>],
) -> (DistRelation<S>, PlanKind) {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let (result, plan) = match classify(q) {
        Shape::FreeConnex => (
            distributed_yannakakis(cluster, q, rels),
            PlanKind::FreeConnexYannakakis,
        ),
        Shape::MatMul { r1, r2, .. } => {
            let (out, _) = matmul(cluster, &rels[r1], &rels[r2]);
            (out, PlanKind::MatMul)
        }
        Shape::Line { edges, attrs } => {
            let chain: Vec<DistRelation<S>> = edges.iter().map(|&e| rels[e].clone()).collect();
            (line_query(cluster, &chain, &attrs), PlanKind::Line)
        }
        Shape::Star { center, arms } => {
            let ordered: Vec<DistRelation<S>> = arms.iter().map(|&e| rels[e].clone()).collect();
            let endpoints: Vec<Attr> = arms.iter().map(|&e| q.edges()[e].other(center)).collect();
            (
                star_query(cluster, &ordered, center, &endpoints),
                PlanKind::Star,
            )
        }
        Shape::StarLike(_) => (star_like_query(cluster, q, rels), PlanKind::StarLike),
        Shape::Twig | Shape::General => (tree_query(cluster, q, rels), PlanKind::Tree),
    };
    (normalize(result, &output), plan)
}

/// End-to-end convenience: place `instance` on a fresh `p`-server
/// cluster, execute `q` with the paper's algorithms, and gather the
/// output plus the measured cost.
pub fn execute<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> ExecutionResult<S> {
    execute_with(Cluster::new(p), q, instance)
}

/// [`execute`] with an explicit worker-thread count for per-server local
/// computation. Results and measured costs are identical to [`execute`]
/// for every thread count (see `mpcjoin_mpc::exec`); only the wall-clock
/// `elapsed` in the cost report changes.
pub fn execute_threaded<S: Semiring>(
    p: usize,
    threads: usize,
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> ExecutionResult<S> {
    execute_with(Cluster::with_threads(p, threads), q, instance)
}

fn execute_with<S: Semiring>(
    mut cluster: Cluster,
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> ExecutionResult<S> {
    validate_instance(q, instance);
    let dist: Vec<DistRelation<S>> = instance
        .iter()
        .map(|r| DistRelation::scatter(&cluster, r))
        .collect();
    let (result, plan) = execute_on(&mut cluster, q, &dist);
    let output_skew = result.data().skew();
    ExecutionResult {
        output: result.gather(),
        cost: cluster.report(),
        plan,
        output_skew,
    }
}

/// End-to-end baseline: the distributed Yannakakis algorithm (§1.4), for
/// comparison against [`execute`].
pub fn execute_baseline<S: Semiring>(
    p: usize,
    q: &TreeQuery,
    instance: &[Relation<S>],
) -> ExecutionResult<S> {
    validate_instance(q, instance);
    let mut cluster = Cluster::new(p);
    let dist: Vec<DistRelation<S>> = instance
        .iter()
        .map(|r| DistRelation::scatter(&cluster, r))
        .collect();
    let output: Vec<Attr> = q.output().iter().copied().collect();
    let result = normalize(distributed_yannakakis(&mut cluster, q, &dist), &output);
    let output_skew = result.data().skew();
    ExecutionResult {
        output: result.gather(),
        cost: cluster.report(),
        plan: PlanKind::FreeConnexYannakakis,
        output_skew,
    }
}

/// Sequential reference evaluation (the oracle), projected onto the
/// query's outputs in sorted order.
pub fn execute_sequential<S: Semiring>(q: &TreeQuery, instance: &[Relation<S>]) -> Relation<S> {
    let output: Vec<Attr> = q.output().iter().copied().collect();
    sequential_join_aggregate(q, instance).project_aggregate(&output)
}

/// Reorder a result's columns to the canonical output order.
fn normalize<S: Semiring>(rel: DistRelation<S>, output: &[Attr]) -> DistRelation<S> {
    let target = Schema::new(output.to_vec());
    if rel.schema() == &target {
        return rel;
    }
    let pos = rel.positions_of(output);
    let data = rel
        .data()
        .clone()
        .map(move |(row, s): (Row, S)| (pos.iter().map(|&i| row[i]).collect(), s));
    DistRelation::from_distributed(target, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcjoin_query::Edge;
    use mpcjoin_semiring::Count;

    const A: Attr = Attr(0);
    const B: Attr = Attr(1);
    const C: Attr = Attr(2);
    const D: Attr = Attr(3);

    fn mm_query() -> TreeQuery {
        TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, C])
    }

    #[test]
    fn execute_matches_sequential_and_reports_plan() {
        let q = mm_query();
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..50u64).map(|i| (i % 10, i % 7))),
            Relation::<Count>::binary_ones(B, C, (0..50u64).map(|i| (i % 7, i % 12))),
        ];
        let result = execute(8, &q, &rels);
        assert_eq!(result.plan, PlanKind::MatMul);
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
        assert!(result.cost.rounds > 0);
    }

    #[test]
    fn baseline_and_new_agree() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, B), Edge::binary(B, C), Edge::binary(C, D)],
            [A, D],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, (0..40u64).map(|i| (i % 8, i % 5))),
            Relation::<Count>::binary_ones(B, C, (0..40u64).map(|i| (i % 5, i % 6))),
            Relation::<Count>::binary_ones(C, D, (0..40u64).map(|i| (i % 6, i % 9))),
        ];
        let new = execute(8, &q, &rels);
        let base = execute_baseline(8, &q, &rels);
        assert_eq!(new.plan, PlanKind::Line);
        assert!(new.output.semantically_eq(&base.output));
    }

    #[test]
    fn free_connex_goes_to_yannakakis() {
        let q = TreeQuery::new(vec![Edge::binary(A, B), Edge::binary(B, C)], [A, B, C]);
        let rels = vec![
            Relation::<Count>::binary_ones(A, B, [(1, 2)]),
            Relation::<Count>::binary_ones(B, C, [(2, 3)]),
        ];
        let result = execute(4, &q, &rels);
        assert_eq!(result.plan, PlanKind::FreeConnexYannakakis);
        assert_eq!(result.output.len(), 1);
    }

    #[test]
    fn star_plan_selected() {
        let q = TreeQuery::new(
            vec![Edge::binary(A, D), Edge::binary(B, D), Edge::binary(C, D)],
            [A, B, C],
        );
        let rels = vec![
            Relation::<Count>::binary_ones(A, D, (0..20u64).map(|i| (i % 6, i % 3))),
            Relation::<Count>::binary_ones(B, D, (0..20u64).map(|i| (i % 5, i % 3))),
            Relation::<Count>::binary_ones(C, D, (0..20u64).map(|i| (i % 4, i % 3))),
        ];
        let result = execute(8, &q, &rels);
        assert_eq!(result.plan, PlanKind::Star);
        assert!(result
            .output
            .semantically_eq(&execute_sequential(&q, &rels)));
    }
}
